"""A small command-line interface for exploring the reproduction.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro.cli scenario                # print the Fig. 1 tables
    python -m repro.cli update                  # run the Fig. 5 update, print the trace
    python -m repro.cli cascade                 # run the steps-6-11 cascading update
    python -m repro.cli audit                   # run a few operations, print the audit trail
    python -m repro.cli throughput --interval 12 --updates 6
    python -m repro.cli exposure                # fine-grained vs full-record exposure
    python -m repro.cli gateway-loadtest --tenants 8 --duration 30
    python -m repro.cli chaos-soak              # fault plan vs fault-free oracle
    python -m repro.cli trace                   # per-stage self-time + critical path
    python -m repro.cli metrics                 # unified metrics-registry snapshot

Every command is deterministic; latencies are simulated seconds.  Every
command also accepts ``--json`` to emit a machine-readable result instead of
the pretty-printed report, so benches and scripts can consume the output
without parsing tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.baselines.full_record import FullRecordSharingBaseline
from repro.config import SystemConfig
from repro.core.scenario import (
    CARE_TABLE,
    DOCTOR_RESEARCHER_TABLE,
    PATIENT_DOCTOR_TABLE,
    STUDY_TABLE,
    build_extended_scenario,
    build_paper_scenario,
)
from repro.errors import ChaosError
from repro.metrics.collectors import exposure_report, measure_throughput
from repro.metrics.reporting import format_table
from repro.workloads.updates import UpdateStreamGenerator


def _emit_json(payload: Dict[str, Any]) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def _cmd_scenario(args: argparse.Namespace) -> int:
    system = build_paper_scenario()
    consistent = system.all_shared_tables_consistent()
    if args.json:
        _emit_json({
            "local_tables": {
                "D1": system.peer("patient").local_table("D1").to_dict(),
                "D2": system.peer("researcher").local_table("D2").to_dict(),
                "D3": system.peer("doctor").local_table("D3").to_dict(),
            },
            "shared_tables": {
                PATIENT_DOCTOR_TABLE:
                    system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE).to_dict(),
                DOCTOR_RESEARCHER_TABLE:
                    system.peer("doctor").shared_table(DOCTOR_RESEARCHER_TABLE).to_dict(),
            },
            "consistent": consistent,
        })
        return 0
    print(system.peer("patient").local_table("D1").pretty(), "\n")
    print(system.peer("researcher").local_table("D2").pretty(), "\n")
    print(system.peer("doctor").local_table("D3").pretty(), "\n")
    print(system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE).pretty(), "\n")
    print(system.peer("doctor").shared_table(DOCTOR_RESEARCHER_TABLE).pretty(), "\n")
    print("shared tables consistent:", consistent)
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    system = build_paper_scenario(SystemConfig.private_chain(args.interval))
    trace = system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"})
    if args.json:
        _emit_json({"trace": trace.to_dict(),
                    "doctor_D3": system.peer("doctor").local_table("D3").to_dict()})
    else:
        print(trace.pretty(), "\n")
        print(system.peer("doctor").local_table("D3").pretty())
    return 0 if trace.succeeded else 1


def _cmd_cascade(args: argparse.Namespace) -> int:
    system = build_extended_scenario(SystemConfig.private_chain(args.interval))
    trace = system.coordinator.update_shared_entry(
        "researcher", STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"})
    ok = trace.succeeded and CARE_TABLE in trace.cascaded_metadata_ids
    if args.json:
        _emit_json({"trace": trace.to_dict(),
                    "cascaded": list(trace.cascaded_metadata_ids),
                    "patient_care_table":
                        system.peer("patient").shared_table(CARE_TABLE).to_dict()})
    else:
        print(trace.pretty(), "\n")
        print(system.peer("patient").shared_table(CARE_TABLE).pretty())
    return 0 if ok else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    system = build_paper_scenario()
    system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"})
    system.coordinator.change_permission(
        "doctor", PATIENT_DOCTOR_TABLE, "dosage", ["Doctor", "Patient"])
    system.coordinator.update_shared_entry(
        "patient", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "one tablet every 8h"})
    trail = system.audit_trail(via_peer=args.via)
    check = system.check_contract_specification()
    integrity = trail.verify_integrity()
    if args.json:
        _emit_json({
            "records": [record.to_dict() for record in trail.records()],
            "permission_changes": trail.permission_changes(),
            "updates_by_peer": trail.updates_by_peer(),
            "integrity": integrity,
            "spec_check_passed": check.passed,
        })
    else:
        print(trail.pretty(), "\n")
        print("contract specification check:", "PASSED" if check.passed else "FAILED")
    return 0 if check.passed and integrity else 1


def _cmd_throughput(args: argparse.Namespace) -> int:
    system = build_paper_scenario(SystemConfig.private_chain(args.interval))
    events = UpdateStreamGenerator(system, seed=args.seed).stream(args.updates)
    result = measure_throughput(system, events)
    if args.json:
        payload = dict(result.to_dict())
        payload["block_interval"] = args.interval
        _emit_json(payload)
        return 0
    print(format_table(
        ("metric", "value"),
        [("block interval (s)", args.interval),
         ("updates accepted", result.updates_accepted),
         ("updates rejected", result.updates_rejected),
         ("simulated seconds", round(result.simulated_seconds, 2)),
         ("throughput (updates/s)", round(result.throughput, 4)),
         ("blocks created", result.blocks_created)],
        title="Shared-data update throughput"))
    return 0


def _cmd_exposure(args: argparse.Namespace) -> int:
    system = build_paper_scenario()
    baseline = FullRecordSharingBaseline()
    baseline.register_provider_table("doctor", system.peer("doctor").local_table("D3"))
    baseline.grant_access("doctor", "Patient", "D3")
    baseline.grant_access("doctor", "Researcher", "D3")
    report = exposure_report(
        fine_grained={
            "Patient": system.agreement(PATIENT_DOCTOR_TABLE).shared_columns,
            "Researcher": system.agreement(DOCTOR_RESEARCHER_TABLE).shared_columns,
        },
        full_record=baseline.exposure_matrix(),
    )
    counts = report.exposure_counts()
    if args.json:
        _emit_json({"exposure_counts": counts,
                    "unnecessary_attributes": {
                        role: list(columns)
                        for role, columns in report.unnecessary_attributes().items()
                    }})
        return 0
    print(format_table(
        ("role", "fine-grained attrs", "full-record attrs", "unnecessary"),
        [(role, counts[role]["fine_grained"], counts[role]["full_record"],
          counts[role]["unnecessary"]) for role in sorted(counts)],
        title="Attribute exposure: fine-grained views vs full-record sharing"))
    return 0


def run_gateway_loadtest(tenants: int = 8, duration: float = 30.0, rate: float = 1.0,
                         read_fraction: float = 0.5, interval: float = 2.0,
                         batch_size: int = 16, seed: int = 23,
                         rate_limit: float = 0.0, transport: str = "sync",
                         max_delay: float = 1.0,
                         max_queue_depth: Optional[int] = None,
                         state_dir: Optional[str] = None,
                         fsync_policy: Optional[str] = None,
                         max_responses: Optional[int] = None,
                         trace: bool = False,
                         trace_out: Optional[str] = None,
                         registry: bool = False,
                         latency_target: Optional[float] = None,
                         chaos: Optional[Any] = None,
                         chaos_events_out: Optional[str] = None,
                         replicas: int = 0,
                         replica_ship_interval: float = 0.0,
                         replica_max_lag: float = 30.0,
                         wire_codec: Optional[str] = None,
                         include_fingerprints: bool = False) -> Dict[str, Any]:
    """Drive open-loop multi-tenant traffic through the gateway; returns metrics.

    The engine behind the ``gateway-loadtest`` subcommand (also importable
    for scripting).  ``transport`` selects the synchronous front end (the
    driver commits when the queue is deep, draining between arrivals) or the
    asyncio one (arrivals admitted open-loop while the commit pump seals
    batches on queue-depth/deadline triggers).  ``max_queue_depth`` enables
    gateway-wide load shedding on either transport.  ``state_dir`` journals
    terminal responses to an on-disk WAL (``fsync_policy`` trades durability
    for latency; ``max_responses`` caps the in-memory response store, with
    journaled responses evicted, not lost).

    ``trace``/``trace_out`` attach a :class:`~repro.obs.Tracer` over the
    whole pipeline: the result gains a ``trace`` key (the
    :class:`~repro.obs.TraceAnalyzer` aggregation) and, with ``trace_out``,
    the raw spans are exported as WAL-envelope JSONL.  ``registry`` adds the
    gateway's unified :meth:`MetricsRegistry.snapshot` under ``registry``.

    ``latency_target`` enables commit-latency-driven admission shedding (the
    p99 bound in simulated seconds).  ``chaos`` attaches a seeded fault plan
    — a :class:`~repro.chaos.FaultPlan`, its dict form, or a path to its
    JSON — together with the configured retry policy, so injected drops,
    disk errors and slow rounds are survived; the result then gains a
    ``chaos`` section and ``chaos_events_out`` exports the fault-event
    JSONL.

    ``replicas`` attaches that many WAL-shipping read replicas behind the
    gateway's bounded-staleness router: view reads fan out across the fleet
    (``replica_ship_interval`` throttles shipments and so creates measurable
    staleness; ``replica_max_lag`` is the routing cutoff) while writes stay
    on the primary.  Replicas need durable peers, so without ``state_dir``
    a temporary one backs the run.

    ``wire_codec`` attaches a :mod:`repro.runtime` codec to the network
    transport's delivery boundary, round-tripping every gossiped payload
    through encode/decode (the in-process rehearsal of a real wire; adds
    ``wire_messages``/``wire_bytes`` to the transport stats).
    ``include_fingerprints`` adds the system's per-peer per-table state
    fingerprints to the result — the oracle the gateway-fleet bench uses
    to prove loopback placement is byte-identical to this single-process
    run.
    """
    import asyncio
    import dataclasses

    from repro.config import DurabilityConfig, ReplicationConfig
    from repro.gateway import AsyncSharingGateway, SharingGateway
    from repro.obs import Tracer, TraceAnalyzer, write_trace_jsonl
    from repro.workloads.topology import TopologySpec, build_topology_system
    from repro.workloads.traffic import (TrafficGenerator, default_tenant_profiles,
                                         replay_open_loop)

    if transport not in ("sync", "async"):
        raise ValueError(f"unknown transport {transport!r}: use 'sync' or 'async'")
    if replicas > 0 and state_dir is None:
        import tempfile
        with tempfile.TemporaryDirectory(prefix="repro-replicas-") as tmp:
            return run_gateway_loadtest(
                tenants=tenants, duration=duration, rate=rate,
                read_fraction=read_fraction, interval=interval,
                batch_size=batch_size, seed=seed, rate_limit=rate_limit,
                transport=transport, max_delay=max_delay,
                max_queue_depth=max_queue_depth, state_dir=tmp,
                fsync_policy=fsync_policy, max_responses=max_responses,
                trace=trace, trace_out=trace_out, registry=registry,
                latency_target=latency_target, chaos=chaos,
                chaos_events_out=chaos_events_out, replicas=replicas,
                replica_ship_interval=replica_ship_interval,
                replica_max_lag=replica_max_lag, wire_codec=wire_codec,
                include_fingerprints=include_fingerprints)
    config = SystemConfig.private_chain(interval)
    if replicas > 0:
        config = dataclasses.replace(
            config,
            durability=DurabilityConfig(state_dir=state_dir),
            replication=ReplicationConfig(replicas=replicas,
                                          ship_interval=replica_ship_interval,
                                          max_lag=replica_max_lag))
    system = build_topology_system(TopologySpec(patients=tenants, researchers=0, seed=seed),
                                   config)
    if wire_codec is not None:
        system.simulator.transport.configure_wire_codec(wire_codec)
    tracer = Tracer(system.simulator.clock) if (trace or trace_out) else None
    injector = None
    if chaos is not None:
        from repro.chaos import FaultInjector, RetryPolicy
        from repro.obs.tracer import NULL_TRACER
        injector = FaultInjector(_coerce_fault_plan(chaos), system.simulator.clock,
                                 tracer=tracer if tracer is not None else NULL_TRACER)
        system.attach_chaos(injector,
                            retry_policy=RetryPolicy.from_config(
                                system.config.resilience))
    gateway = SharingGateway(system, max_batch_size=batch_size, default_rate=rate_limit,
                             max_queue_depth=max_queue_depth, state_dir=state_dir,
                             fsync_policy=fsync_policy, max_responses=max_responses,
                             tracer=tracer, latency_target=latency_target)
    profiles = default_tenant_profiles(system, request_rate=rate,
                                       read_fraction=read_fraction)
    clock = system.simulator.clock
    arrivals = TrafficGenerator(system, seed=seed).open_loop(
        profiles, duration=duration, start_time=clock.now())
    sessions = {profile.peer: gateway.open_session(profile.peer) for profile in profiles}
    start = clock.now()
    async_stats: Optional[Dict[str, Any]] = None
    if transport == "async":
        async def drive() -> Dict[str, Any]:
            async with AsyncSharingGateway(gateway, seal_depth=batch_size,
                                           max_delay=max_delay) as front:
                futures = await replay_open_loop(
                    arrivals,
                    lambda timed: front.submit_nowait(sessions[timed.tenant],
                                                      timed.request),
                    clock)
                await front.drain()
                await asyncio.gather(*futures)
                return front.statistics()

        async_stats = asyncio.run(drive())
    else:
        # With shedding on, the queue can never reach batch_size if the
        # capacity is smaller — commit at whichever threshold is lower, or
        # everything past the capacity would shed until the final drain.
        commit_depth = (batch_size if max_queue_depth is None
                        else min(batch_size, max_queue_depth))
        for timed in arrivals:
            clock.advance_to(timed.arrival_time)
            gateway.submit(sessions[timed.tenant], timed.request)
            if gateway.queue_depth >= commit_depth:
                gateway.commit_once()
        gateway.drain()
    gateway.close()
    elapsed = clock.now() - start
    metrics = gateway.metrics()
    if async_stats is not None:
        metrics["async_transport"] = async_stats
    writes = metrics["batches"]["writes_committed"]
    result = {
        "tenants": tenants,
        "transport": transport,
        "arrivals": len(arrivals),
        "simulated_seconds": elapsed,
        "write_throughput": (writes / elapsed) if elapsed > 0 else 0.0,
        "metrics": metrics,
    }
    if include_fingerprints:
        result["fingerprints"] = system.state_fingerprints()
    if tracer is not None:
        result["trace"] = TraceAnalyzer.from_tracer(tracer).to_dict()
        result["trace"]["tracer"] = tracer.statistics()
        if trace_out:
            result["trace"]["exported_spans"] = write_trace_jsonl(
                tracer.spans(), trace_out)
            result["trace"]["export_path"] = str(trace_out)
    if registry:
        result["registry"] = gateway.registry.snapshot()
    if injector is not None:
        result["chaos"] = {
            "fault_events": len(injector.events),
            "events_by_kind": injector.events_by_kind(),
            "transport": dict(system.simulator.transport.statistics),
        }
        if chaos_events_out:
            result["chaos"]["events_path"] = str(chaos_events_out)
            result["chaos"]["events_written"] = injector.write_events(
                chaos_events_out)
    return result


def run_gateway_fleet(processes: int, tenants: int = 8, duration: float = 30.0,
                      rate: float = 1.0, read_fraction: float = 0.5,
                      interval: float = 2.0, batch_size: int = 16,
                      seed: int = 23, transport: str = "sync",
                      mode: str = "multiprocess",
                      wire_codec: Optional[str] = None,
                      state_dir: Optional[str] = None,
                      fsync_policy: Optional[str] = None,
                      include_fingerprints: bool = False,
                      timeout: float = 300.0) -> Dict[str, Any]:
    """Run the gateway load test as a worker fleet; returns aggregated metrics.

    The engine behind ``gateway-loadtest --processes N``: the tenant
    population is dealt round-robin into ``processes`` worker slices (seeds
    ``seed + index``), each slice runs :func:`run_gateway_loadtest` behind a
    :mod:`repro.runtime` transport, and the coordinator merges results,
    simulated clocks and (optionally) state fingerprints.  ``mode`` picks
    the placement: ``multiprocess`` forks real worker processes (socketpair
    framing, genuinely parallel commits), ``loopback`` runs the same
    protocol over in-process queues (deterministic, byte-identical to the
    sequential runs).  ``wire_codec`` selects the fleet's wire encoding and
    is also handed to each worker's network transport.

    With ``state_dir`` each worker journals responses under its own
    ``<state_dir>/<worker-name>`` subdirectory, so a crashed worker's WAL
    recovers independently of its siblings.
    """
    import dataclasses as _dataclasses
    import os as _os

    from repro.runtime import GatewayFleet, partition_tenants

    specs = partition_tenants(
        tenants, processes, base_seed=seed, duration=duration, rate=rate,
        read_fraction=read_fraction, interval=interval, batch_size=batch_size,
        transport=transport, fsync_policy=fsync_policy, wire_codec=wire_codec,
        include_fingerprints=include_fingerprints)
    if state_dir is not None:
        specs = [_dataclasses.replace(spec,
                                      state_dir=_os.path.join(state_dir, spec.name))
                 for spec in specs]
    fleet = GatewayFleet(specs, mode=mode, wire_codec=wire_codec,
                         timeout=timeout)
    result = fleet.run().to_dict()
    result["processes"] = processes
    result["tenants"] = tenants
    result["wire_codec"] = wire_codec
    return result


def _coerce_fault_plan(plan: Any):
    """Accept a FaultPlan, its dict form, or a path to its JSON file."""
    from repro.chaos import FaultPlan

    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, dict):
        return FaultPlan.from_dict(plan)
    return FaultPlan.load(plan)


def default_soak_plan(tenants: int = 4, rounds: int = 12, interval: float = 1.0,
                      seed: int = 7, first_patient_id: int = 188):
    """The chaos-soak's default fault plan: background message drops, WAL
    fsync errors, slow/failing consensus rounds, and one patient-node
    crash/restart window.

    The crash window is placed far past the pre-crash phase's possible clock
    span (retry backoffs and injected delays stretch the faulted run's
    clock), so :func:`run_chaos_soak` can align both the oracle and the
    faulted run to the window edges deterministically.
    """
    from repro.chaos import FaultPlan, FaultSpec

    span = max(120.0, 60.0 * interval * rounds)
    return FaultPlan(seed=seed, specs=(
        FaultSpec(kind="transport.drop", probability=0.08, max_fires=6),
        FaultSpec(kind="wal.append", probability=0.08, max_fires=3),
        FaultSpec(kind="wal.fsync", probability=0.20, max_fires=3),
        FaultSpec(kind="consensus.slow", probability=0.10, param=0.5,
                  max_fires=5),
        FaultSpec(kind="consensus.fail", probability=0.15, max_fires=2),
        FaultSpec(kind="peer.crash", target=f"node-patient-{first_patient_id}",
                  start=span, end=2.0 * span),
    ))


def run_chaos_soak(tenants: int = 4, rounds: int = 12, seed: int = 23,
                   interval: float = 1.0, plan: Optional[Any] = None,
                   inject: bool = True, retry: bool = True,
                   state_dir: Optional[str] = None,
                   events_out: Optional[str] = None) -> Dict[str, Any]:
    """One deterministic chaos-soak run; returns final-state fingerprints.

    Drives ``rounds`` rounds of writes (one per patient tenant per round)
    through a sync gateway over a ``tenants``-patient topology.  With
    ``inject`` the fault plan is attached (drops, fsync errors, slow rounds,
    one peer crash/restart window); without it the *same workload* runs
    fault-free — the oracle.  Submission shaping is identical either way:
    tenants whose node a ``peer.crash`` spec targets sit out the middle
    third of the rounds, and the clock is aligned to the crash window's
    edges between phases, so the window can only ever be open while its
    victims are silent.  The self-healing layer (retries, retransmissions,
    parked-replay) must then make the faulted run's final relational state
    *byte-identical* to the oracle's — compare the ``fingerprints``.
    """
    import tempfile

    from repro.chaos import FaultInjector, RetryPolicy
    from repro.errors import ChaosError
    from repro.gateway import SharingGateway, UpdateEntryRequest
    from repro.workloads.topology import TopologySpec, build_topology_system
    from repro.workloads.updates import UpdateStreamGenerator

    if rounds < 3:
        raise ValueError("a chaos soak needs at least 3 rounds")
    if state_dir is None:
        # A durable response journal by default, so wal.append / wal.fsync
        # faults have a WAL on the serving path to land on.
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            return run_chaos_soak(tenants=tenants, rounds=rounds, seed=seed,
                                  interval=interval, plan=plan, inject=inject,
                                  retry=retry, state_dir=tmp,
                                  events_out=events_out)
    fault_plan = (default_soak_plan(tenants=tenants, rounds=rounds,
                                    interval=interval)
                  if plan is None else _coerce_fault_plan(plan))
    crash_specs = [spec for spec in fault_plan.specs
                   if spec.kind == "peer.crash"]
    if any(spec.end is None for spec in crash_specs):
        raise ChaosError("peer.crash specs in a soak plan need a closed "
                         "[start, end) window, or parked messages never replay")
    crash_start = min((spec.start for spec in crash_specs), default=None)
    crash_end = max((spec.end for spec in crash_specs), default=None)
    victim_peers = {spec.target[len("node-"):] for spec in crash_specs
                    if spec.target and spec.target.startswith("node-")}

    system = build_topology_system(
        TopologySpec(patients=tenants, researchers=0, seed=seed),
        SystemConfig.private_chain(interval))
    clock = system.simulator.clock
    injector = None
    if inject:
        injector = FaultInjector(fault_plan, clock)
        policy = (RetryPolicy.from_config(system.config.resilience)
                  if retry else None)
        system.attach_chaos(injector, retry_policy=policy)
    gateway = SharingGateway(system, max_batch_size=max(16, tenants),
                             state_dir=state_dir)
    tenant_names = sorted(peer.name for peer in system.peers
                          if peer.role == "Patient")
    if not victim_peers <= set(tenant_names):
        raise ChaosError(f"peer.crash targets {sorted(victim_peers)} are not "
                         f"patient tenants of this topology — crashing a hub "
                         f"peer stalls every agreement")
    sessions = {name: gateway.open_session(name) for name in tenant_names}
    updates = UpdateStreamGenerator(system, seed=seed)

    # Round phases: victims write in [0, crash_from) and [crash_to, rounds),
    # and sit out the middle — the only rounds the crash window may span.
    crash_from = rounds // 3
    crash_to = rounds - rounds // 3
    responses = []

    def run_round(round_index: int) -> None:
        for name in tenant_names:
            if crash_from <= round_index < crash_to and name in victim_peers:
                continue
            metadata_id = system.peer(name).agreement_ids[0]
            event = updates.event_for(metadata_id, peer=name)
            request = UpdateEntryRequest(metadata_id=metadata_id,
                                         key=event.key, updates=event.updates)
            responses.append(gateway.submit(sessions[name], request))
        gateway.commit_once()
        clock.advance(interval)

    window_overrun = False
    for round_index in range(rounds):
        if round_index == crash_from and crash_start is not None:
            # Align both runs to the window's opening edge.  The margin in
            # the plan makes this an advance; a custom plan with a window
            # inside the pre-crash span is reported, not silently diverged.
            window_overrun = window_overrun or clock.now() > crash_start
            clock.advance_to(crash_start)
        if round_index == crash_to and crash_end is not None:
            clock.advance_to(crash_end)
            # The window is now closed: release and deliver parked messages
            # so the restarted replica replays the blocks it missed, in
            # order, before its tenant writes again.
            system.simulator.transport.flush()
        run_round(round_index)
    if crash_end is not None:
        clock.advance_to(crash_end)
        system.simulator.transport.flush()
    gateway.drain()
    gateway.close()

    statuses: Dict[str, int] = {}
    for response in responses:
        statuses[response.status] = statuses.get(response.status, 0) + 1
    result: Dict[str, Any] = {
        "inject": inject,
        "tenants": tenants,
        "rounds": rounds,
        "seed": seed,
        "plan_seed": fault_plan.seed,
        "submitted": len(responses),
        "statuses": dict(sorted(statuses.items())),
        "all_terminal": all(response.terminal for response in responses),
        "window_overrun": window_overrun,
        "fingerprints": system.state_fingerprints(),
        "shared_tables_consistent": system.all_shared_tables_consistent(),
        "chain_lengths": {node.name: len(node.chain)
                          for node in system.simulator.nodes},
        "transport": dict(system.simulator.transport.statistics),
        "simulated_seconds": clock.now(),
        "fault_events": 0,
        "events_by_kind": {},
    }
    if injector is not None:
        result["fault_events"] = len(injector.events)
        result["events_by_kind"] = injector.events_by_kind()
        if events_out:
            result["events_path"] = str(events_out)
            result["events_written"] = injector.write_events(events_out)
    return result


def _cmd_chaos_soak(args: argparse.Namespace) -> int:
    """Run the faulted soak against its fault-free oracle and compare."""
    plan = args.plan  # a path, or None for the default plan
    common = dict(tenants=args.tenants, rounds=args.rounds, seed=args.seed,
                  interval=args.interval, plan=plan)
    try:
        oracle = run_chaos_soak(inject=False, **common)
        faulted = run_chaos_soak(inject=True, events_out=args.events_out,
                                 **common)
    except (ValueError, ChaosError, OSError) as exc:
        print(f"chaos-soak: {exc}", file=sys.stderr)
        return 2
    oracle_bytes = json.dumps(oracle["fingerprints"], sort_keys=True).encode()
    faulted_bytes = json.dumps(faulted["fingerprints"], sort_keys=True).encode()
    converged = oracle_bytes == faulted_bytes
    chains_converged = (len(set(faulted["chain_lengths"].values())) == 1
                        and faulted["chain_lengths"] == oracle["chain_lengths"])
    ok = (converged and chains_converged and faulted["all_terminal"]
          and oracle["all_terminal"] and faulted["shared_tables_consistent"])
    if args.json:
        _emit_json({
            "converged": converged,
            "chains_converged": chains_converged,
            "ok": ok,
            "oracle": {k: oracle[k] for k in
                       ("submitted", "statuses", "all_terminal",
                        "simulated_seconds")},
            "faulted": {k: faulted[k] for k in
                        ("submitted", "statuses", "all_terminal",
                         "fault_events", "events_by_kind", "transport",
                         "simulated_seconds", "window_overrun")},
        })
        return 0 if ok else 1
    transport = faulted["transport"]
    print(format_table(
        ("metric", "value"),
        [("tenants / rounds", f"{args.tenants} / {args.rounds}"),
         ("writes submitted (each run)", faulted["submitted"]),
         ("fault events injected", faulted["fault_events"]),
         ("faults by kind", ", ".join(f"{kind}={count}" for kind, count in
                                      sorted(faulted["events_by_kind"].items()))
          or "-"),
         ("messages dropped then retransmitted", transport["retransmits"]),
         ("messages lost for good", transport["lost"]),
         ("all responses terminal", faulted["all_terminal"]),
         ("chain lengths converged", chains_converged),
         ("fingerprints byte-identical", converged)],
        title="Chaos soak vs fault-free oracle"))
    if not ok:
        print("chaos-soak: faulted run DIVERGED from the oracle", file=sys.stderr)
    return 0 if ok else 1


def _cmd_gateway_loadtest(args: argparse.Namespace) -> int:
    if args.processes > 1:
        # The fleet branch forwards only the per-worker engine knobs.  A
        # flag it would silently drop must be an error, not a run that does
        # not match the requested configuration.  (value, default) pairs
        # mirror the argparse defaults above.
        unsupported = [
            ("--rate-limit", args.rate_limit, 0.0),
            ("--max-delay", args.max_delay, 1.0),
            ("--max-queue-depth", args.max_queue_depth, None),
            ("--max-responses", args.max_responses, None),
            ("--trace", args.trace, False),
            ("--trace-out", args.trace_out, None),
            ("--latency-target", args.latency_target, None),
            ("--chaos", args.chaos, None),
            ("--chaos-events-out", args.chaos_events_out, None),
            ("--replicas", args.replicas, 0),
            ("--replica-ship-interval", args.replica_ship_interval, 0.0),
            ("--replica-max-lag", args.replica_max_lag, 30.0),
        ]
        rejected = [flag for flag, value, default in unsupported
                    if value != default]
        if rejected:
            print("gateway-loadtest: " + ", ".join(rejected) + " "
                  + ("is" if len(rejected) == 1 else "are")
                  + " not supported with --processes > 1; run the fleet "
                  "without them or drop --processes", file=sys.stderr)
            return 2
        return _cmd_gateway_fleet(args)
    try:
        result = run_gateway_loadtest(
            tenants=args.tenants, duration=args.duration, rate=args.rate,
            read_fraction=args.read_fraction, interval=args.interval,
            batch_size=args.batch_size, seed=args.seed, rate_limit=args.rate_limit,
            transport=args.transport, max_delay=args.max_delay,
            max_queue_depth=args.max_queue_depth, state_dir=args.state_dir,
            fsync_policy=args.fsync_policy, max_responses=args.max_responses,
            trace=args.trace, trace_out=args.trace_out,
            latency_target=args.latency_target, chaos=args.chaos,
            chaos_events_out=args.chaos_events_out, replicas=args.replicas,
            replica_ship_interval=args.replica_ship_interval,
            replica_max_lag=args.replica_max_lag,
            wire_codec=args.wire_codec)
    except (ValueError, ChaosError, OSError) as exc:
        print(f"gateway-loadtest: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json(result)
        return 0
    metrics = result["metrics"]
    rows = [
        ("tenants", result["tenants"]),
        ("transport", result["transport"]),
        ("arrivals", result["arrivals"]),
        ("simulated seconds", round(result["simulated_seconds"], 2)),
        ("writes committed", metrics["batches"]["writes_committed"]),
        ("write throughput (1/s)", round(result["write_throughput"], 4)),
        ("batches committed", metrics["batches"]["committed"]),
        ("mean batch size", round(metrics["batches"]["mean_size"], 2)),
        ("consensus rounds", metrics["batches"]["consensus_rounds"]),
        ("cache hit rate", round(metrics["cache"]["hit_rate"], 3)),
        ("max queue depth", metrics["queue"]["max_depth"]),
        ("shed requests", metrics["queue"]["shed_requests"]),
        ("admitted during commit", metrics["transport"]["admitted_during_commit"]),
    ]
    durability = metrics.get("durability", {})
    if durability.get("enabled"):
        rows.extend([
            ("journaled responses", durability["responses_journaled"]),
            ("journal WAL bytes", durability["wal_bytes"]),
            ("responses evicted", durability["responses_evicted"]),
        ])
    replication = metrics.get("replication", {})
    if replication.get("enabled"):
        rows.extend([
            ("read replicas", len(replication["replicas"])),
            ("replica-served reads", replication["replica_reads"]),
            ("primary fallbacks", replication["primary_fallbacks"]),
            ("max replica lag (s)", round(max(
                replication["lags"].values(), default=0.0), 3)),
            ("WAL shipments", replication["shipper"]["shipments"]),
            ("cache pre-warms", replication["cache_prewarms"]),
        ])
    if "async_transport" in metrics:
        sealed = metrics["async_transport"]["sealed_by"]
        rows.append(("pump seals (depth/deadline/idle/flush)",
                     "/".join(str(sealed[k])
                              for k in ("depth", "deadline", "idle", "flush"))))
    resilience = metrics.get("resilience", {})
    if resilience.get("latency_target") is not None:
        shedder = resilience["shedder"]
        rows.extend([
            ("latency target p99 (s)", resilience["latency_target"]),
            ("windowed p99 (s)", (round(shedder["p99"], 3)
                                  if shedder["p99"] is not None else "-")),
            ("shed by reason", ", ".join(
                f"{reason}={count}" for reason, count in
                resilience["shed_by_reason"].items() if count) or "-"),
        ])
    if "chaos" in result:
        chaos = result["chaos"]
        rows.append(("fault events injected", chaos["fault_events"]))
        rows.append(("messages retransmitted",
                     chaos["transport"]["retransmits"]))
    print(format_table(("metric", "value"), rows, title="Gateway load test"))
    tenant_rows = [
        (tenant, stats["count"], round(stats["mean"], 2), round(stats["p95"], 2))
        for tenant, stats in metrics["tenants"].items()
    ]
    if tenant_rows:
        print()
        print(format_table(("tenant", "requests", "mean latency (s)", "p95 (s)"),
                           tenant_rows, title="Per-tenant latency"))
    if "trace" in result:
        print()
        print(_format_stage_table(result["trace"]))
        if "export_path" in result["trace"]:
            print(f"\nexported {result['trace']['exported_spans']} spans to "
                  f"{result['trace']['export_path']}")
    return 0


def _cmd_gateway_fleet(args: argparse.Namespace) -> int:
    """The ``--processes N`` (N>1) branch of ``gateway-loadtest``."""
    from repro.errors import FleetError, WorkerCrashError

    try:
        result = run_gateway_fleet(
            processes=args.processes, tenants=args.tenants,
            duration=args.duration, rate=args.rate,
            read_fraction=args.read_fraction, interval=args.interval,
            batch_size=args.batch_size, seed=args.seed,
            transport=args.transport, mode=args.fleet_mode,
            wire_codec=args.wire_codec, state_dir=args.state_dir,
            fsync_policy=args.fsync_policy)
    except (ValueError, FleetError, WorkerCrashError, OSError) as exc:
        print(f"gateway-loadtest: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json(result)
        return 0
    rows = [
        ("placement", result["mode"]),
        ("worker processes", result["processes"]),
        ("tenants (total)", result["tenants"]),
        ("wire codec", result["wire_codec"] or "none (loopback objects)"),
        ("wall seconds", round(result["wall_seconds"], 3)),
        ("writes committed (all workers)", result["committed_writes"]),
        ("aggregate throughput (writes/s wall)",
         round(result["aggregate_throughput"], 2)),
        ("merged simulated clock (s)", round(result["clock"]["merged_now"], 2)),
    ]
    print(format_table(("metric", "value"), rows, title="Gateway fleet"))
    worker_rows = []
    for name in sorted(result["workers"]):
        worker = result["workers"][name]
        metrics = worker["metrics"]
        worker_rows.append((
            name, worker["tenants"],
            metrics["batches"]["writes_committed"],
            round(worker["write_throughput"], 3),
            round(worker["wall_seconds"], 3),
        ))
    print()
    print(format_table(
        ("worker", "tenants", "writes", "sim throughput (1/s)", "wall (s)"),
        worker_rows, title="Per-worker slices"))
    if result["crashes"]:
        print()
        print(format_table(("worker", "exitcode", "state dir"),
                           [(crash["worker"], crash["exitcode"],
                             crash["state_dir"] or "-")
                            for crash in result["crashes"]],
                           title="Crashed workers"))
    return 0


def _format_stage_table(trace: Dict[str, Any]) -> str:
    """Render a TraceAnalyzer ``to_dict`` stage breakdown as a table."""
    rows = []
    for stage, data in trace["stages"].items():
        names = ", ".join(sorted(data["spans"])) or "-"
        rows.append((stage, data["count"], round(data["sim_self"], 4),
                     round(data["wall_self"] * 1000.0, 3), names))
    return format_table(
        ("stage", "spans", "sim self (s)", "wall self (ms)", "span names"),
        rows, title=f"Pipeline stage self-time ({trace['spans']} spans)")


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace a gateway load test end to end and report where time goes."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-trace-") as state_dir:
        # A durable state_dir makes the WAL stage observable too, so the
        # report covers all five pipeline stages.
        result = run_gateway_loadtest(
            tenants=args.tenants, duration=args.duration, seed=args.seed,
            interval=args.interval, trace=True, trace_out=args.out,
            state_dir=state_dir)
    trace = result["trace"]
    if args.json:
        _emit_json(trace)
        return 0
    print(_format_stage_table(trace))
    lanes = trace["stages"]["consensus"].get("lanes", {})
    if lanes:
        print()
        print(format_table(
            ("shard", "mines", "sim self (s)"),
            [(shard, lane["count"], round(lane["sim_self"], 4))
             for shard, lane in lanes.items()],
            title="Consensus lanes"))
    path = trace["critical_path"]
    if path:
        print()
        print(format_table(
            ("depth", "span", "trace id", "sim elapsed (s)"),
            [(depth, step["name"], step["trace_id"] or "-",
              round(step["sim_elapsed"], 4))
             for depth, step in enumerate(path)],
            title="Critical path (longest simulated root-to-leaf chain)"))
    if args.out:
        print(f"\nexported {trace['exported_spans']} spans to {args.out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a gateway load test and print the unified registry snapshot."""
    result = run_gateway_loadtest(tenants=args.tenants, duration=args.duration,
                                  seed=args.seed, interval=args.interval,
                                  registry=True)
    snapshot = result["registry"]
    if args.json:
        _emit_json(snapshot)
        return 0
    counter_rows = [(key, value) for key, value in snapshot["counters"].items()]
    if counter_rows:
        print(format_table(("counter", "value"), counter_rows,
                           title="Counters"))
    gauge_rows = [(key, round(value, 4) if isinstance(value, float) else value)
                  for key, value in snapshot["gauges"].items()]
    if gauge_rows:
        print()
        print(format_table(("gauge", "value"), gauge_rows, title="Gauges"))
    histogram_rows = [
        (key, int(data["summary"]["count"]), round(data["summary"]["p50"], 3),
         round(data["summary"]["p95"], 3), round(data["summary"]["max"], 3))
        for key, data in snapshot["histograms"].items()
    ]
    if histogram_rows:
        print()
        print(format_table(("histogram", "count", "p50 (s)", "p95 (s)", "max (s)"),
                           histogram_rows, title="Histograms"))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Recover a durable database state directory and report how it went."""
    from repro.errors import RelationalError
    from repro.relational.durability import recover

    try:
        result = recover(args.state_dir, fsync_policy=args.fsync_policy)
    except RelationalError as exc:
        print(f"recover: {exc}", file=sys.stderr)
        return 1
    if args.json:
        _emit_json(result.to_dict())
        return 0
    database = result.database
    print(format_table(
        ("metric", "value"),
        [("database", database.name),
         ("tables", len(database.table_names)),
         ("total rows", sum(len(database.table(name)) for name in database.table_names)),
         ("views", len(database.view_names)),
         ("checkpoint sequence", result.checkpoint_sequence),
         ("snapshot loaded", result.snapshot_loaded),
         ("entries replayed", result.entries_replayed),
         ("torn entries dropped", result.torn_entries_dropped),
         ("WAL bytes", result.wal_bytes),
         ("checkpoints taken", result.checkpoint_count),
         ("recovery time (s)", round(result.recovery_seconds, 4))],
        title=f"Recovered {database.name!r} from {args.state_dir}"))
    for name in database.table_names:
        print()
        print(database.table(name).pretty(max_rows=5))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Blockchain-based Bidirectional Updates on "
                    "Fine-grained Medical Data' (ICDE 2019)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_text: str, handler) -> argparse.ArgumentParser:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON result")
        sub.set_defaults(handler=handler)
        return sub

    add_command("scenario", "print the Fig. 1 data distribution", _cmd_scenario)

    update = add_command("update", "run the Fig. 5 researcher update", _cmd_update)
    update.add_argument("--interval", type=float, default=2.0,
                        help="block interval in simulated seconds")

    cascade = add_command("cascade", "run the steps-6-11 cascading dosage update",
                          _cmd_cascade)
    cascade.add_argument("--interval", type=float, default=2.0)

    audit = add_command("audit", "run operations and print the audit trail", _cmd_audit)
    audit.add_argument("--via", default="patient",
                       help="peer whose node replica the trail is read from")

    throughput = add_command("throughput", "measure update throughput", _cmd_throughput)
    throughput.add_argument("--interval", type=float, default=12.0)
    throughput.add_argument("--updates", type=int, default=6)
    throughput.add_argument("--seed", type=int, default=41)

    add_command("exposure", "compare attribute exposure against full-record sharing",
                _cmd_exposure)

    loadtest = add_command("gateway-loadtest",
                           "drive multi-tenant open-loop traffic through the gateway",
                           _cmd_gateway_loadtest)
    loadtest.add_argument("--tenants", type=int, default=8,
                          help="number of patient tenants")
    loadtest.add_argument("--duration", type=float, default=30.0,
                          help="traffic duration in simulated seconds")
    loadtest.add_argument("--rate", type=float, default=1.0,
                          help="per-tenant requests per simulated second")
    loadtest.add_argument("--read-fraction", type=float, default=0.5,
                          help="fraction of requests that are view reads")
    loadtest.add_argument("--interval", type=float, default=2.0,
                          help="block interval in simulated seconds")
    loadtest.add_argument("--batch-size", type=int, default=16,
                          help="max write requests folded into one batch")
    loadtest.add_argument("--seed", type=int, default=23)
    loadtest.add_argument("--rate-limit", type=float, default=0.0,
                          help="per-tenant token-bucket rate (0 disables throttling)")
    loadtest.add_argument("--transport", choices=("sync", "async"), default="sync",
                          help="serving front end: synchronous driver or the "
                               "asyncio commit-pump transport")
    loadtest.add_argument("--max-delay", type=float, default=1.0,
                          help="async transport: seal a batch once its oldest "
                               "write waited this many simulated seconds")
    loadtest.add_argument("--max-queue-depth", type=int, default=None,
                          help="shed writes (typed 'shed' response) while the "
                               "queue holds this many (default: no shedding)")
    loadtest.add_argument("--state-dir", default=None,
                          help="journal terminal responses to an on-disk WAL "
                               "under this directory (default: in-memory only)")
    loadtest.add_argument("--fsync-policy", choices=("always", "batch", "never"),
                          default=None,
                          help="WAL fsync policy: per append, per committed "
                               "batch (default), or never")
    loadtest.add_argument("--max-responses", type=int, default=None,
                          help="cap the in-memory response store; journaled "
                               "responses are evicted, not lost")
    loadtest.add_argument("--trace", action="store_true",
                          help="trace the pipeline and report per-stage "
                               "self-time with the results")
    loadtest.add_argument("--trace-out", default=None, metavar="PATH",
                          help="export the recorded spans as WAL-envelope "
                               "JSONL to PATH (implies tracing)")
    loadtest.add_argument("--latency-target", type=float, default=None,
                          help="shed writes while the committed-write p99 "
                               "(or predicted queueing delay) exceeds this "
                               "many simulated seconds")
    loadtest.add_argument("--chaos", default=None, metavar="PLAN",
                          help="attach a seeded fault plan (path to its "
                               "JSON) plus the configured retry policy")
    loadtest.add_argument("--chaos-events-out", default=None, metavar="PATH",
                          help="export the injected fault events as JSONL")
    loadtest.add_argument("--replicas", type=int, default=0,
                          help="attach this many WAL-shipping read replicas "
                               "and fan view reads across them at bounded "
                               "staleness (0 disables replication)")
    loadtest.add_argument("--replica-ship-interval", type=float, default=0.0,
                          metavar="SECONDS",
                          help="simulated seconds between WAL shipments "
                               "(0 ships every commit; larger values create "
                               "measurable replica staleness)")
    loadtest.add_argument("--replica-max-lag", type=float, default=30.0,
                          metavar="SECONDS",
                          help="bounded-staleness routing cutoff: replicas "
                               "lagging more than this fall back to the primary")
    loadtest.add_argument("--processes", type=int, default=1,
                          help="run as a worker fleet: partition the tenants "
                               "across this many worker processes, each a "
                               "full gateway pipeline behind the runtime "
                               "message boundary (1 = classic single-process "
                               "run)")
    loadtest.add_argument("--fleet-mode", choices=("multiprocess", "loopback"),
                          default="multiprocess",
                          help="fleet placement: forked worker processes "
                               "(parallel commits) or in-process loopback "
                               "threads (deterministic rehearsal of the "
                               "same protocol)")
    loadtest.add_argument("--wire-codec", choices=("canonical-json", "binary"),
                          default=None,
                          help="wire codec for the runtime boundary: fleet "
                               "framing and the gossip transport's "
                               "encode/decode rehearsal (default: no "
                               "re-encoding)")

    soak = add_command(
        "chaos-soak", "run a seeded fault plan against its fault-free "
                      "oracle and verify byte-identical final state",
        _cmd_chaos_soak)
    soak.add_argument("--tenants", type=int, default=4,
                      help="number of patient tenants")
    soak.add_argument("--rounds", type=int, default=12,
                      help="write rounds (one write per tenant per round)")
    soak.add_argument("--seed", type=int, default=23)
    soak.add_argument("--interval", type=float, default=1.0,
                      help="block interval in simulated seconds")
    soak.add_argument("--plan", default=None, metavar="PLAN",
                      help="fault plan JSON path (default: the built-in "
                           "drops + fsync errors + crash window + slow "
                           "rounds plan)")
    soak.add_argument("--events-out", default=None, metavar="PATH",
                      help="export the faulted run's fault events as JSONL")

    trace_cmd = add_command(
        "trace", "trace a gateway load test: per-stage self-time, lanes, "
                 "critical path", _cmd_trace)
    trace_cmd.add_argument("--tenants", type=int, default=4,
                           help="number of patient tenants")
    trace_cmd.add_argument("--duration", type=float, default=10.0,
                           help="traffic duration in simulated seconds")
    trace_cmd.add_argument("--interval", type=float, default=2.0,
                           help="block interval in simulated seconds")
    trace_cmd.add_argument("--seed", type=int, default=23)
    trace_cmd.add_argument("--out", default=None, metavar="PATH",
                           help="also export the spans as JSONL to PATH")

    metrics_cmd = add_command(
        "metrics", "run a gateway load test and print the unified metrics "
                   "registry snapshot", _cmd_metrics)
    metrics_cmd.add_argument("--tenants", type=int, default=4,
                             help="number of patient tenants")
    metrics_cmd.add_argument("--duration", type=float, default=10.0,
                             help="traffic duration in simulated seconds")
    metrics_cmd.add_argument("--interval", type=float, default=2.0,
                             help="block interval in simulated seconds")
    metrics_cmd.add_argument("--seed", type=int, default=23)

    recover_cmd = add_command(
        "recover", "rebuild a durable database from its state directory",
        _cmd_recover)
    recover_cmd.add_argument("state_dir",
                             help="state directory written by Database.checkpoint / "
                                  "a durable WAL backend")
    recover_cmd.add_argument("--fsync-policy", choices=("always", "batch", "never"),
                             default="batch",
                             help="fsync policy for the re-attached WAL backend")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
