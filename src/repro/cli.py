"""A small command-line interface for exploring the reproduction.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro.cli scenario                # print the Fig. 1 tables
    python -m repro.cli update                  # run the Fig. 5 update, print the trace
    python -m repro.cli cascade                 # run the steps-6-11 cascading update
    python -m repro.cli audit                   # run a few operations, print the audit trail
    python -m repro.cli throughput --interval 12 --updates 6
    python -m repro.cli exposure                # fine-grained vs full-record exposure

Every command is deterministic; latencies are simulated seconds.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines.full_record import FullRecordSharingBaseline
from repro.config import SystemConfig
from repro.core.scenario import (
    CARE_TABLE,
    DOCTOR_RESEARCHER_TABLE,
    PATIENT_DOCTOR_TABLE,
    STUDY_TABLE,
    build_extended_scenario,
    build_paper_scenario,
)
from repro.metrics.collectors import exposure_report, measure_throughput
from repro.metrics.reporting import format_table
from repro.workloads.updates import UpdateStreamGenerator


def _cmd_scenario(args: argparse.Namespace) -> int:
    system = build_paper_scenario()
    print(system.peer("patient").local_table("D1").pretty(), "\n")
    print(system.peer("researcher").local_table("D2").pretty(), "\n")
    print(system.peer("doctor").local_table("D3").pretty(), "\n")
    print(system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE).pretty(), "\n")
    print(system.peer("doctor").shared_table(DOCTOR_RESEARCHER_TABLE).pretty(), "\n")
    print("shared tables consistent:", system.all_shared_tables_consistent())
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    system = build_paper_scenario(SystemConfig.private_chain(args.interval))
    trace = system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"})
    print(trace.pretty(), "\n")
    print(system.peer("doctor").local_table("D3").pretty())
    return 0 if trace.succeeded else 1


def _cmd_cascade(args: argparse.Namespace) -> int:
    system = build_extended_scenario(SystemConfig.private_chain(args.interval))
    trace = system.coordinator.update_shared_entry(
        "researcher", STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"})
    print(trace.pretty(), "\n")
    print(system.peer("patient").shared_table(CARE_TABLE).pretty())
    return 0 if trace.succeeded and CARE_TABLE in trace.cascaded_metadata_ids else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    system = build_paper_scenario()
    system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"})
    system.coordinator.change_permission(
        "doctor", PATIENT_DOCTOR_TABLE, "dosage", ["Doctor", "Patient"])
    system.coordinator.update_shared_entry(
        "patient", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "one tablet every 8h"})
    trail = system.audit_trail(via_peer=args.via)
    print(trail.pretty(), "\n")
    check = system.check_contract_specification()
    print("contract specification check:", "PASSED" if check.passed else "FAILED")
    return 0 if check.passed and trail.verify_integrity() else 1


def _cmd_throughput(args: argparse.Namespace) -> int:
    system = build_paper_scenario(SystemConfig.private_chain(args.interval))
    events = UpdateStreamGenerator(system, seed=args.seed).stream(args.updates)
    result = measure_throughput(system, events)
    print(format_table(
        ("metric", "value"),
        [("block interval (s)", args.interval),
         ("updates accepted", result.updates_accepted),
         ("updates rejected", result.updates_rejected),
         ("simulated seconds", round(result.simulated_seconds, 2)),
         ("throughput (updates/s)", round(result.throughput, 4)),
         ("blocks created", result.blocks_created)],
        title="Shared-data update throughput"))
    return 0


def _cmd_exposure(args: argparse.Namespace) -> int:
    system = build_paper_scenario()
    baseline = FullRecordSharingBaseline()
    baseline.register_provider_table("doctor", system.peer("doctor").local_table("D3"))
    baseline.grant_access("doctor", "Patient", "D3")
    baseline.grant_access("doctor", "Researcher", "D3")
    report = exposure_report(
        fine_grained={
            "Patient": system.agreement(PATIENT_DOCTOR_TABLE).shared_columns,
            "Researcher": system.agreement(DOCTOR_RESEARCHER_TABLE).shared_columns,
        },
        full_record=baseline.exposure_matrix(),
    )
    counts = report.exposure_counts()
    print(format_table(
        ("role", "fine-grained attrs", "full-record attrs", "unnecessary"),
        [(role, counts[role]["fine_grained"], counts[role]["full_record"],
          counts[role]["unnecessary"]) for role in sorted(counts)],
        title="Attribute exposure: fine-grained views vs full-record sharing"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Blockchain-based Bidirectional Updates on "
                    "Fine-grained Medical Data' (ICDE 2019)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("scenario", help="print the Fig. 1 data distribution") \
        .set_defaults(handler=_cmd_scenario)

    update = subparsers.add_parser("update", help="run the Fig. 5 researcher update")
    update.add_argument("--interval", type=float, default=2.0,
                        help="block interval in simulated seconds")
    update.set_defaults(handler=_cmd_update)

    cascade = subparsers.add_parser("cascade",
                                    help="run the steps-6-11 cascading dosage update")
    cascade.add_argument("--interval", type=float, default=2.0)
    cascade.set_defaults(handler=_cmd_cascade)

    audit = subparsers.add_parser("audit", help="run operations and print the audit trail")
    audit.add_argument("--via", default="patient",
                       help="peer whose node replica the trail is read from")
    audit.set_defaults(handler=_cmd_audit)

    throughput = subparsers.add_parser("throughput", help="measure update throughput")
    throughput.add_argument("--interval", type=float, default=12.0)
    throughput.add_argument("--updates", type=int, default=6)
    throughput.add_argument("--seed", type=int, default=41)
    throughput.set_defaults(handler=_cmd_throughput)

    subparsers.add_parser("exposure", help="compare attribute exposure against "
                                           "full-record sharing") \
        .set_defaults(handler=_cmd_exposure)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
