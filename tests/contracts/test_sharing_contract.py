"""Tests for the Fig. 3 metadata contract and the Fig. 4 request protocol."""

import pytest

from repro.contracts.base import CallContext
from repro.contracts.sharing_contract import SharedDataContract, fold_attestation_payload
from repro.crypto.keys import generate_keypair
from repro.crypto.signatures import sign
from repro.errors import ContractRevert, PermissionDenied

DOCTOR = "0xd0c" + "0" * 37
PATIENT = "0xpa7" + "0" * 37
RESEARCHER = "0x5e5" + "0" * 37
OUTSIDER = "0xbad" + "0" * 37


def call(contract, caller, method, block_number=1, timestamp=1.0, **kwargs):
    """Drive a contract method the way the runtime would (revert → rollback)."""
    snapshot = contract.storage_snapshot()
    contract._begin_call(CallContext(caller=caller, block_number=block_number,
                                     timestamp=timestamp, contract_address="0xcontract"))
    try:
        result = getattr(contract, method)(**kwargs)
    except ContractRevert:
        contract.restore_storage(snapshot)
        contract._end_call()
        raise
    events = contract._end_call()
    return result, events


@pytest.fixture
def contract():
    contract = SharedDataContract()
    call(contract, DOCTOR, "register_shared_table",
         metadata_id="D13&D31",
         sharing_peers={DOCTOR: "Doctor", PATIENT: "Patient"},
         write_permission={"medication_name": ["Doctor"], "dosage": ["Doctor"],
                           "clinical_data": ["Patient", "Doctor"]},
         authority_role="Doctor")
    call(contract, RESEARCHER, "register_shared_table",
         metadata_id="D23&D32",
         sharing_peers={DOCTOR: "Doctor", RESEARCHER: "Researcher"},
         write_permission={"medication_name": ["Doctor", "Researcher"],
                           "mechanism_of_action": ["Researcher"]},
         authority_role="Researcher")
    return contract


class TestRegistration:
    def test_entries_created(self, contract):
        assert contract.entries["D13&D31"].authority_role == "Doctor"
        result, _ = call(contract, DOCTOR, "list_metadata_ids")
        assert result == ["D13&D31", "D23&D32"]

    def test_registration_emits_event(self):
        contract = SharedDataContract()
        _, events = call(contract, DOCTOR, "register_shared_table",
                         metadata_id="X", sharing_peers={DOCTOR: "Doctor"},
                         write_permission={"a": ["Doctor"]}, authority_role="Doctor")
        assert events[0].name == "SharedTableRegistered"

    def test_duplicate_metadata_rejected(self, contract):
        with pytest.raises(ContractRevert):
            call(contract, DOCTOR, "register_shared_table",
                 metadata_id="D13&D31", sharing_peers={DOCTOR: "Doctor"},
                 write_permission={}, authority_role="Doctor")

    def test_registrant_must_be_sharing_peer(self):
        contract = SharedDataContract()
        with pytest.raises(PermissionDenied):
            call(contract, OUTSIDER, "register_shared_table",
                 metadata_id="X", sharing_peers={DOCTOR: "Doctor"},
                 write_permission={}, authority_role="Doctor")

    def test_authority_must_be_a_peer_role(self):
        contract = SharedDataContract()
        with pytest.raises(ContractRevert):
            call(contract, DOCTOR, "register_shared_table",
                 metadata_id="X", sharing_peers={DOCTOR: "Doctor"},
                 write_permission={}, authority_role="Admin")

    def test_permission_roles_must_exist(self):
        contract = SharedDataContract()
        with pytest.raises(ContractRevert):
            call(contract, DOCTOR, "register_shared_table",
                 metadata_id="X", sharing_peers={DOCTOR: "Doctor"},
                 write_permission={"a": ["Ghost"]}, authority_role="Doctor")

    def test_get_metadata(self, contract):
        metadata, _ = call(contract, PATIENT, "get_metadata", metadata_id="D13&D31")
        assert metadata["sharing_peers"][PATIENT] == "Patient"
        assert metadata["write_permission"]["dosage"] == ["Doctor"]

    def test_entries_for_peer(self, contract):
        result, _ = call(contract, DOCTOR, "entries_for_peer", address=DOCTOR)
        assert result == ["D13&D31", "D23&D32"]
        result, _ = call(contract, DOCTOR, "entries_for_peer", address=PATIENT)
        assert result == ["D13&D31"]


class TestUpdateRequests:
    def test_authorized_update_accepted(self, contract):
        record, events = call(contract, RESEARCHER, "request_update",
                              metadata_id="D23&D32",
                              changed_attributes=["mechanism_of_action"],
                              diff_hash="h1")
        assert record["update_id"] == 1
        changed = [e for e in events if e.name == "SharedDataChanged"][0]
        assert changed.data["notify_peers"] == [DOCTOR]
        assert contract.entries["D23&D32"].pending_acks == [DOCTOR]

    def test_permission_denied_for_wrong_attribute(self, contract):
        with pytest.raises(PermissionDenied):
            call(contract, DOCTOR, "request_update", metadata_id="D23&D32",
                 changed_attributes=["mechanism_of_action"], diff_hash="h")

    def test_permission_denied_for_non_peer(self, contract):
        with pytest.raises(PermissionDenied):
            call(contract, OUTSIDER, "request_update", metadata_id="D23&D32",
                 changed_attributes=["medication_name"], diff_hash="h")

    def test_unknown_attribute_rejected(self, contract):
        with pytest.raises(ContractRevert):
            call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
                 changed_attributes=["mode_of_action"], diff_hash="h")

    def test_unknown_metadata_rejected(self, contract):
        with pytest.raises(ContractRevert):
            call(contract, DOCTOR, "request_update", metadata_id="NOPE",
                 changed_attributes=["a"], diff_hash="h")

    def test_empty_attribute_list_rejected_for_entry_level(self, contract):
        with pytest.raises(ContractRevert):
            call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
                 changed_attributes=[], diff_hash="h")

    def test_next_update_blocked_until_acknowledged(self, contract):
        call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
             changed_attributes=["mechanism_of_action"], diff_hash="h1")
        with pytest.raises(ContractRevert):
            call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
                 changed_attributes=["mechanism_of_action"], diff_hash="h2",
                 timestamp=2.0)

    def test_acknowledge_unblocks_further_updates(self, contract):
        record, _ = call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
                         changed_attributes=["mechanism_of_action"], diff_hash="h1")
        call(contract, DOCTOR, "acknowledge_update", metadata_id="D23&D32",
             update_id=record["update_id"], timestamp=2.0)
        assert contract.entries["D23&D32"].pending_acks == []
        record2, _ = call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
                          changed_attributes=["mechanism_of_action"], diff_hash="h2",
                          timestamp=3.0, block_number=2)
        assert record2["update_id"] == 2

    def test_acknowledge_by_non_peer_rejected(self, contract):
        record, _ = call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
                         changed_attributes=["mechanism_of_action"], diff_hash="h1")
        with pytest.raises(PermissionDenied):
            call(contract, OUTSIDER, "acknowledge_update", metadata_id="D23&D32",
                 update_id=record["update_id"])

    def test_acknowledge_unknown_update_rejected(self, contract):
        with pytest.raises(ContractRevert):
            call(contract, DOCTOR, "acknowledge_update", metadata_id="D23&D32", update_id=99)

    def test_acknowledge_wrong_table_rejected(self, contract):
        record, _ = call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
                         changed_attributes=["mechanism_of_action"], diff_hash="h1")
        with pytest.raises(ContractRevert):
            call(contract, DOCTOR, "acknowledge_update", metadata_id="D13&D31",
                 update_id=record["update_id"])

    def test_rejected_request_leaves_no_trace(self, contract):
        with pytest.raises(PermissionDenied):
            call(contract, DOCTOR, "request_update", metadata_id="D23&D32",
                 changed_attributes=["mechanism_of_action"], diff_hash="h")
        assert contract.history == []
        assert contract.entries["D23&D32"].pending_acks == []

    def test_update_history_filter(self, contract):
        call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
             changed_attributes=["mechanism_of_action"], diff_hash="h1")
        call(contract, DOCTOR, "request_update", metadata_id="D13&D31",
             changed_attributes=["dosage"], diff_hash="h2")
        all_history, _ = call(contract, DOCTOR, "update_history")
        filtered, _ = call(contract, DOCTOR, "update_history", metadata_id="D13&D31")
        assert len(all_history) == 2
        assert len(filtered) == 1

    def test_can_peer_write(self, contract):
        yes, _ = call(contract, DOCTOR, "can_peer_write", metadata_id="D13&D31",
                      address=PATIENT, attribute="clinical_data")
        no, _ = call(contract, DOCTOR, "can_peer_write", metadata_id="D13&D31",
                     address=PATIENT, attribute="dosage")
        assert yes is True
        assert no is False


class TestCreateDelete:
    def test_create_entry_level(self, contract):
        record, _ = call(contract, DOCTOR, "request_create", metadata_id="D13&D31",
                         changed_attributes=["medication_name", "dosage", "clinical_data"],
                         diff_hash="h")
        assert record["operation"] == "create"

    def test_table_level_requires_full_permission(self, contract):
        # The Patient only has clinical_data permission, so a table-level
        # delete (empty attribute list) must be rejected.
        with pytest.raises(PermissionDenied):
            call(contract, PATIENT, "request_delete", metadata_id="D13&D31",
                 changed_attributes=[], diff_hash="h")

    def test_table_level_delete_by_full_writer(self, contract):
        record, _ = call(contract, DOCTOR, "request_delete", metadata_id="D13&D31",
                         changed_attributes=[], diff_hash="h")
        assert record["operation"] == "delete"
        assert set(record["changed_attributes"]) == {"medication_name", "dosage",
                                                     "clinical_data"}


class TestFoldedUpdates:
    """request_folded_update: cross-peer edits on disjoint attribute sets,
    each non-calling contribution attested by its author's signature."""

    DOC_KP = generate_keypair(seed=71)
    PAT_KP = generate_keypair(seed=72)

    @pytest.fixture
    def fold_contract(self):
        contract = SharedDataContract()
        call(contract, self.DOC_KP.address, "register_shared_table",
             metadata_id="FOLD",
             sharing_peers={self.DOC_KP.address: "Doctor",
                            self.PAT_KP.address: "Patient"},
             write_permission={"medication_name": ["Doctor"],
                               "dosage": ["Doctor"],
                               "clinical_data": ["Patient", "Doctor"]},
             authority_role="Doctor")
        return contract

    def _attested(self, keypair, attributes, diff_hash="fold-1",
                  metadata_id="FOLD"):
        payload = fold_attestation_payload(metadata_id, diff_hash, attributes)
        return {"peer": keypair.address, "changed_attributes": list(attributes),
                "public_key": hex(keypair.public_key),
                "attestation": sign(keypair, payload).to_dict()}

    def test_folded_update_checks_permission_per_contributor(self, fold_contract):
        result, events = call(
            fold_contract, self.DOC_KP.address, "request_folded_update",
            metadata_id="FOLD",
            contributions=[{"peer": self.DOC_KP.address,
                            "changed_attributes": ["dosage"]},
                           self._attested(self.PAT_KP, ["clinical_data"])],
            diff_hash="fold-1")
        assert result["operation"] == "update"
        assert result["changed_attributes"] == ["dosage", "clinical_data"]
        assert result["contributions"][1]["peer"] == self.PAT_KP.address
        assert events[0].name == "SharedDataChanged"
        # The non-calling contributor still has to acknowledge.
        assert fold_contract.entries["FOLD"].pending_acks == [self.PAT_KP.address]

    def test_unattested_foreign_contribution_rejected(self, fold_contract):
        """A caller cannot write through another peer's permissions: a
        contribution attributed to a different peer without that peer's
        signature reverts (this is the permission-laundering exploit)."""
        with pytest.raises(PermissionDenied):
            call(fold_contract, self.PAT_KP.address, "request_folded_update",
                 metadata_id="FOLD",
                 contributions=[{"peer": self.DOC_KP.address,
                                 "changed_attributes": ["dosage"]}],
                 diff_hash="evil")

    def test_forged_attestation_rejected(self, fold_contract):
        # Signed by the patient but claiming the doctor as author.
        forged = self._attested(self.PAT_KP, ["dosage"], diff_hash="evil")
        forged["peer"] = self.DOC_KP.address
        with pytest.raises(PermissionDenied):
            call(fold_contract, self.PAT_KP.address, "request_folded_update",
                 metadata_id="FOLD", contributions=[forged], diff_hash="evil")

    def test_attestation_bound_to_diff_hash(self, fold_contract):
        # A valid attestation for one diff cannot authorise another.
        stale = self._attested(self.PAT_KP, ["clinical_data"], diff_hash="old")
        with pytest.raises(PermissionDenied):
            call(fold_contract, self.DOC_KP.address, "request_folded_update",
                 metadata_id="FOLD", contributions=[stale], diff_hash="new")

    def test_contributor_without_permission_rejected(self, fold_contract):
        # The patient's role may not write "dosage": the fold reverts even
        # with a genuine patient attestation.
        with pytest.raises(PermissionDenied):
            call(fold_contract, self.DOC_KP.address, "request_folded_update",
                 metadata_id="FOLD",
                 contributions=[self._attested(self.PAT_KP, ["dosage"])],
                 diff_hash="fold-1")

    def test_overlapping_contributions_rejected(self, fold_contract):
        with pytest.raises(ContractRevert):
            call(fold_contract, self.DOC_KP.address, "request_folded_update",
                 metadata_id="FOLD",
                 contributions=[
                     {"peer": self.DOC_KP.address,
                      "changed_attributes": ["clinical_data"]},
                     self._attested(self.PAT_KP, ["clinical_data"])],
                 diff_hash="fold-1")

    def test_non_peer_contributor_rejected(self, fold_contract):
        with pytest.raises(PermissionDenied):
            call(fold_contract, self.DOC_KP.address, "request_folded_update",
                 metadata_id="FOLD",
                 contributions=[{"peer": OUTSIDER,
                                 "changed_attributes": ["dosage"]}])

    def test_caller_must_be_sharing_peer(self, fold_contract):
        with pytest.raises(PermissionDenied):
            call(fold_contract, OUTSIDER, "request_folded_update",
                 metadata_id="FOLD",
                 contributions=[{"peer": self.DOC_KP.address,
                                 "changed_attributes": ["dosage"]}])

    def test_folded_update_respects_pending_acks(self, fold_contract):
        call(fold_contract, self.DOC_KP.address, "request_update",
             metadata_id="FOLD", changed_attributes=["dosage"])
        with pytest.raises(ContractRevert):
            call(fold_contract, self.DOC_KP.address, "request_folded_update",
                 metadata_id="FOLD",
                 contributions=[self._attested(self.PAT_KP, ["clinical_data"])],
                 diff_hash="fold-1")

    def test_empty_contributions_rejected(self, fold_contract):
        with pytest.raises(ContractRevert):
            call(fold_contract, self.DOC_KP.address, "request_folded_update",
                 metadata_id="FOLD", contributions=[])


class TestPermissionAdmin:
    def test_authority_changes_permission(self, contract):
        change, events = call(contract, DOCTOR, "change_permission",
                              metadata_id="D13&D31", attribute="dosage",
                              new_writers=["Doctor", "Patient"])
        assert change["previous"] == ["Doctor"]
        assert contract.entries["D13&D31"].write_permission["dosage"] == ["Doctor", "Patient"]
        assert events[0].name == "PermissionChanged"

    def test_non_authority_cannot_change_permission(self, contract):
        with pytest.raises(PermissionDenied):
            call(contract, PATIENT, "change_permission", metadata_id="D13&D31",
                 attribute="dosage", new_writers=["Patient"])

    def test_permission_change_enables_new_writer(self, contract):
        call(contract, DOCTOR, "change_permission", metadata_id="D13&D31",
             attribute="dosage", new_writers=["Doctor", "Patient"])
        record, _ = call(contract, PATIENT, "request_update", metadata_id="D13&D31",
                         changed_attributes=["dosage"], diff_hash="h", timestamp=2.0)
        assert record["requester_role"] == "Patient"

    def test_cannot_grant_to_unknown_role(self, contract):
        with pytest.raises(ContractRevert):
            call(contract, DOCTOR, "change_permission", metadata_id="D13&D31",
                 attribute="dosage", new_writers=["Hacker"])

    def test_unknown_attribute_rejected(self, contract):
        with pytest.raises(ContractRevert):
            call(contract, DOCTOR, "change_permission", metadata_id="D13&D31",
                 attribute="mode_of_action", new_writers=["Doctor"])

    def test_transfer_authority(self, contract):
        call(contract, DOCTOR, "transfer_authority", metadata_id="D13&D31",
             new_authority_role="Patient")
        assert contract.entries["D13&D31"].authority_role == "Patient"
        # The previous authority can no longer change permissions.
        with pytest.raises(PermissionDenied):
            call(contract, DOCTOR, "change_permission", metadata_id="D13&D31",
                 attribute="dosage", new_writers=["Doctor"])

    def test_only_authority_can_transfer(self, contract):
        with pytest.raises(PermissionDenied):
            call(contract, PATIENT, "transfer_authority", metadata_id="D13&D31",
                 new_authority_role="Patient")

    def test_transfer_to_unknown_role_rejected(self, contract):
        with pytest.raises(ContractRevert):
            call(contract, DOCTOR, "transfer_authority", metadata_id="D13&D31",
                 new_authority_role="Admin")
