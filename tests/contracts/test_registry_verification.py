"""Tests for the registry contract and the executable spec checker (§IV.2)."""

import pytest

from repro.contracts.base import CallContext
from repro.contracts.registry_contract import SharingRegistryContract
from repro.contracts.sharing_contract import SharedDataContract, UpdateRecord
from repro.contracts.verification import ContractSpecChecker
from repro.errors import ContractRevert, ContractSpecViolation

from tests.contracts.test_sharing_contract import DOCTOR, PATIENT, RESEARCHER, call


class TestRegistryContract:
    @pytest.fixture
    def registry(self):
        registry = SharingRegistryContract()
        call(registry, DOCTOR, "register_agreement", metadata_id="D13&D31",
             contract_address="0xc" + "a" * 39, description="patient-doctor table")
        return registry

    def test_lookup(self, registry):
        record, _ = call(registry, PATIENT, "lookup", metadata_id="D13&D31")
        assert record["contract_address"] == "0xc" + "a" * 39
        address, _ = call(registry, PATIENT, "contract_for", metadata_id="D13&D31")
        assert address == "0xc" + "a" * 39

    def test_duplicate_rejected(self, registry):
        with pytest.raises(ContractRevert):
            call(registry, DOCTOR, "register_agreement", metadata_id="D13&D31",
                 contract_address="0xother")

    def test_unknown_lookup_rejected(self, registry):
        with pytest.raises(ContractRevert):
            call(registry, DOCTOR, "lookup", metadata_id="NOPE")

    def test_listing(self, registry):
        call(registry, RESEARCHER, "register_agreement", metadata_id="D23&D32",
             contract_address="0xc" + "a" * 39)
        listing, _ = call(registry, DOCTOR, "list_agreements")
        assert listing == ["D13&D31", "D23&D32"]
        mine, _ = call(registry, DOCTOR, "agreements_registered_by", address=RESEARCHER)
        assert mine == ["D23&D32"]


def _well_behaved_contract():
    contract = SharedDataContract()
    call(contract, RESEARCHER, "register_shared_table",
         metadata_id="D23&D32",
         sharing_peers={DOCTOR: "Doctor", RESEARCHER: "Researcher"},
         write_permission={"medication_name": ["Doctor", "Researcher"],
                           "mechanism_of_action": ["Researcher"]},
         authority_role="Researcher")
    record, _ = call(contract, RESEARCHER, "request_update", metadata_id="D23&D32",
                     changed_attributes=["mechanism_of_action"], diff_hash="h1",
                     block_number=2, timestamp=2.0)
    call(contract, DOCTOR, "acknowledge_update", metadata_id="D23&D32",
         update_id=record["update_id"], block_number=3, timestamp=3.0)
    call(contract, DOCTOR, "request_update", metadata_id="D23&D32",
         changed_attributes=["medication_name"], diff_hash="h2",
         block_number=4, timestamp=4.0)
    return contract


class TestSpecChecker:
    def test_clean_history_passes(self):
        contract = _well_behaved_contract()
        result = ContractSpecChecker(contract).check_all()
        assert result.passed, result.violations
        assert result.checks_run == 5
        result.raise_if_failed()

    def test_detects_permission_violation(self):
        contract = _well_behaved_contract()
        # Forge a history record that claims the Doctor wrote the mechanism.
        contract.history.append(UpdateRecord(
            update_id=99, metadata_id="D23&D32", operation="update",
            requester=DOCTOR, requester_role="Doctor",
            changed_attributes=("mechanism_of_action",), diff_hash="forged",
            block_number=9, timestamp=9.0,
        ))
        result = ContractSpecChecker(contract).check_all()
        assert not result.passed
        assert any("permission" in v or "role" in v for v in result.violations)
        with pytest.raises(ContractSpecViolation):
            result.raise_if_failed()

    def test_detects_non_peer_requester(self):
        contract = _well_behaved_contract()
        contract.history.append(UpdateRecord(
            update_id=100, metadata_id="D23&D32", operation="update",
            requester="0xintruder", requester_role="Researcher",
            changed_attributes=("mechanism_of_action",), diff_hash="forged",
            block_number=9, timestamp=9.0,
        ))
        result = ContractSpecChecker(contract).check_all()
        assert any("non-peer" in v for v in result.violations)

    def test_detects_time_regression(self):
        contract = _well_behaved_contract()
        contract.history.append(UpdateRecord(
            update_id=101, metadata_id="D23&D32", operation="update",
            requester=RESEARCHER, requester_role="Researcher",
            changed_attributes=("mechanism_of_action",), diff_hash="x",
            block_number=10, timestamp=0.5,
        ))
        result = ContractSpecChecker(contract).check_all()
        assert any("earlier than" in v for v in result.violations)

    def test_detects_missing_acknowledgement(self):
        contract = _well_behaved_contract()
        # Two consecutive operations where the first was never acknowledged.
        contract.history.append(UpdateRecord(
            update_id=102, metadata_id="D23&D32", operation="update",
            requester=RESEARCHER, requester_role="Researcher",
            changed_attributes=("mechanism_of_action",), diff_hash="x",
            block_number=11, timestamp=11.0,
        ))
        contract.history.append(UpdateRecord(
            update_id=103, metadata_id="D23&D32", operation="update",
            requester=RESEARCHER, requester_role="Researcher",
            changed_attributes=("mechanism_of_action",), diff_hash="y",
            block_number=12, timestamp=12.0,
        ))
        result = ContractSpecChecker(contract).check_all()
        assert any("acknowledged" in v for v in result.violations)

    def test_detects_serialization_violation(self):
        contract = _well_behaved_contract()
        for update_id in (104, 105):
            contract.history.append(UpdateRecord(
                update_id=update_id, metadata_id="D23&D32", operation="update",
                requester=RESEARCHER, requester_role="Researcher",
                changed_attributes=("mechanism_of_action",), diff_hash="x",
                block_number=20, timestamp=20.0,
            ))
        result = ContractSpecChecker(contract).check_all()
        assert any("at most one" in v for v in result.violations)

    def test_detects_unauthorized_permission_change(self):
        contract = _well_behaved_contract()
        contract.permission_changes.append({
            "metadata_id": "D23&D32", "attribute": "mechanism_of_action",
            "previous": ["Researcher"], "new": ["Doctor"],
            "changed_by": DOCTOR, "changed_by_role": "Doctor",
            "block_number": 30, "timestamp": 30.0,
        })
        result = ContractSpecChecker(contract).check_all()
        assert any("authority" in v for v in result.violations)
