"""Tests for the contract runtime (deploy, call, revert, static calls)."""

import pytest

from repro.contracts.base import Contract
from repro.contracts.runtime import ContractRuntime, contract_address_for
from repro.crypto.keys import generate_keypair
from repro.errors import ContractError, ContractNotFoundError
from repro.ledger.state import WorldState
from repro.ledger.transaction import Transaction

KEY = generate_keypair(seed=55)


class Counter(Contract):
    """A tiny contract used to exercise the runtime."""

    def __init__(self, start: int = 0):
        super().__init__()
        self.value = start
        self.history = []

    def increment(self, by: int = 1):
        self.require(by > 0, "increment must be positive")
        self.value += by
        self.history.append((self.ctx.caller, by))
        self.emit("Incremented", by=by, value=self.value)
        return self.value

    def current(self):
        return self.value

    def crash(self):
        raise RuntimeError("contract bug")


@pytest.fixture
def runtime():
    runtime = ContractRuntime()
    runtime.register_contract_class(Counter)
    return runtime


@pytest.fixture
def state():
    return WorldState()


def _deploy(runtime, state, args=None):
    tx = Transaction(sender=KEY.address, kind="deploy", nonce=0, method="Counter",
                     args=args or {}).signed_by(KEY)
    receipt = runtime.execute(tx, state, block_number=1, timestamp=1.0)
    return receipt


def _call(runtime, state, address, method, nonce=1, **args):
    tx = Transaction(sender=KEY.address, kind="call", nonce=nonce, contract=address,
                     method=method, args=args).signed_by(KEY)
    return runtime.execute(tx, state, block_number=2, timestamp=2.0)


class TestDeploy:
    def test_successful_deploy(self, runtime, state):
        receipt = _deploy(runtime, state, {"start": 5})
        assert receipt.success
        assert receipt.contract_address
        contract = state.contract_at(receipt.contract_address)
        assert isinstance(contract, Counter)
        assert contract.value == 5

    def test_deploy_address_is_deterministic(self, runtime, state):
        receipt = _deploy(runtime, state)
        assert receipt.contract_address == contract_address_for(KEY.address, 0)

    def test_unknown_class(self, runtime, state):
        tx = Transaction(sender=KEY.address, kind="deploy", nonce=0,
                         method="Mystery").signed_by(KEY)
        receipt = runtime.execute(tx, state, 1, 1.0)
        assert not receipt.success
        assert "unknown contract class" in receipt.error

    def test_constructor_error(self, runtime, state):
        receipt = _deploy(runtime, state, {"bogus_argument": 1})
        assert not receipt.success
        assert "constructor error" in receipt.error

    def test_registered_classes(self, runtime):
        assert "Counter" in runtime.registered_classes()


class TestCall:
    def test_successful_call_mutates_and_emits(self, runtime, state):
        address = _deploy(runtime, state).contract_address
        receipt = _call(runtime, state, address, "increment", by=3)
        assert receipt.success
        assert receipt.return_value == 3
        assert state.contract_at(address).value == 3
        assert receipt.events[0]["name"] == "Incremented"
        assert receipt.events[0]["data"]["value"] == 3

    def test_revert_rolls_back_storage(self, runtime, state):
        address = _deploy(runtime, state).contract_address
        _call(runtime, state, address, "increment", by=2)
        receipt = _call(runtime, state, address, "increment", nonce=2, by=-1)
        assert not receipt.success
        assert "positive" in receipt.error
        assert state.contract_at(address).value == 2
        assert receipt.events == ()

    def test_call_missing_contract(self, runtime, state):
        receipt = _call(runtime, state, "0xc" + "9" * 39, "increment")
        assert not receipt.success
        assert "no contract" in receipt.error

    def test_call_missing_method(self, runtime, state):
        address = _deploy(runtime, state).contract_address
        receipt = _call(runtime, state, address, "does_not_exist")
        assert not receipt.success
        assert "no method" in receipt.error

    def test_private_method_not_callable(self, runtime, state):
        address = _deploy(runtime, state).contract_address
        receipt = _call(runtime, state, address, "_begin_call")
        assert not receipt.success

    def test_non_revert_exception_surfaces_as_contract_error(self, runtime, state):
        address = _deploy(runtime, state).contract_address
        with pytest.raises(ContractError):
            _call(runtime, state, address, "crash")

    def test_transfer_has_no_contract_semantics(self, runtime, state):
        tx = Transaction(sender=KEY.address, kind="transfer", nonce=0).signed_by(KEY)
        receipt = runtime.execute(tx, state, 1, 1.0)
        assert receipt.success

    def test_statistics_track_calls_and_reverts(self, runtime, state):
        address = _deploy(runtime, state).contract_address
        _call(runtime, state, address, "increment", by=1)
        _call(runtime, state, address, "increment", nonce=2, by=-1)
        assert runtime.statistics["calls"] == 2
        assert runtime.statistics["reverts"] == 1


class TestStaticCall:
    def test_static_call_reads_without_mutating(self, runtime, state):
        address = _deploy(runtime, state, {"start": 7}).contract_address
        assert runtime.static_call(state, address, "current") == 7

    def test_static_call_rolls_back_mutations(self, runtime, state):
        address = _deploy(runtime, state).contract_address
        runtime.static_call(state, address, "increment", by=5)
        assert state.contract_at(address).value == 0

    def test_static_call_unknown_contract(self, runtime, state):
        with pytest.raises(ContractNotFoundError):
            runtime.static_call(state, "0xmissing", "current")

    def test_static_call_unknown_method(self, runtime, state):
        address = _deploy(runtime, state).contract_address
        with pytest.raises(ContractError):
            runtime.static_call(state, address, "nope")


class TestContractBase:
    def test_ctx_outside_call_rejected(self):
        contract = Counter()
        from repro.errors import ContractRevert
        with pytest.raises(ContractRevert):
            _ = contract.ctx

    def test_abi_lists_public_methods(self):
        abi = Counter.abi()
        assert "increment" in abi and "current" in abi
        assert not any(name.startswith("_") for name in abi)

    def test_storage_snapshot_and_restore(self):
        contract = Counter(start=1)
        snapshot = contract.storage_snapshot()
        contract.value = 99
        contract.restore_storage(snapshot)
        assert contract.value == 1
