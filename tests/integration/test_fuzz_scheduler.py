"""Seeded fuzz: random multi-tenant interleavings through the write path.

Each case generates a random—but valid, permission-respecting—multi-tenant
write workload, pushes it through the full gateway stack (``WriteScheduler``
planning, batched ledger commits, and for the sharded cases a
``ShardedMempool`` behind the miner) under a *randomised commit cadence*
(commits fire at seeded-random points between submissions, so batch
boundaries land everywhere), and checks three invariants the concurrency
design promises:

* **arrival-order serialisation** — for every shared ``(table, key,
  attribute)`` the values land on-chain in exactly the submission order, and
  no tenant's writes on one table ever reorder;
* **fold discipline** — every cross-peer batch group the planner ever built
  has pairwise-disjoint per-contributor column sets and touches distinct
  rows;
* **fingerprint equivalence** — the final state of every table on every peer
  is byte-identical to a sequential oracle that applies the same events one
  protocol run at a time (and the 2-shard pipeline matches the same oracle).

Every case is reproducible from its printed seed:
``pytest tests/integration/test_fuzz_scheduler.py -k <seed>``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.config import ConsensusConfig, LedgerConfig, NetworkConfig, SystemConfig
from repro.core.scenario import CARE_TABLE, build_extended_scenario
from repro.gateway import SharingGateway, UpdateEntryRequest, WriteScheduler
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.updates import UpdateStreamGenerator

pytestmark = [pytest.mark.integration, pytest.mark.slow]

SEEDS = (101, 202, 303, 404, 505, 606, 707, 808)
SHARDED_SEEDS = (11, 22, 33, 44)
FOLD_SEEDS = (5, 6, 7)
EVENTS_PER_CASE = 18
COMMIT_PROBABILITY = 0.35


class RecordingScheduler(WriteScheduler):
    """A write scheduler that keeps every plan it produced for inspection."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.plans = []

    def plan(self, limit=None, **kwargs):
        produced = super().plan(limit, **kwargs)
        if not produced.is_empty:
            self.plans.append(produced)
        return produced


def _topology_config(shards: int = 1) -> SystemConfig:
    return SystemConfig(
        ledger=LedgerConfig(consensus=ConsensusConfig(kind="poa", block_interval=1.0),
                            consensus_shards=shards),
        network=NetworkConfig(base_latency=0.002, latency_jitter=0.001),
    )


def _fingerprints(system) -> Dict[str, str]:
    return {
        f"{peer.name}:{name}": peer.database.table(name).fingerprint()
        for peer in system.peers
        for name in sorted(peer.database.table_names)
    }


def _generate_events(system, seed: int, metadata_ids=None):
    """A random valid write workload plus a value → event-index map.

    ``UpdateStreamGenerator`` values embed a per-generator counter, so every
    generated value is unique and the on-chain landing order of events can
    be recovered from the observed view diffs.
    """
    generator = UpdateStreamGenerator(system, seed=seed)
    events = generator.stream(EVENTS_PER_CASE, metadata_ids=metadata_ids)
    # Keyed by (metadata_id, value): a value may also surface in *cascaded*
    # tables' diffs (e.g. a CARE dosage write cascading into STUDY), whose
    # notification order relative to the originating group is an
    # implementation detail — landing order is only asserted on the table
    # the write targeted.
    value_to_index = {}
    for index, event in enumerate(events):
        for value in event.updates.values():
            value_to_index[(event.metadata_id, value)] = index
    assert len(value_to_index) == len(events), "generated values must be unique"
    return events, value_to_index


def _drive_gateway(system, events, seed: int, fold: bool = True):
    """Replay events through the gateway with a random commit cadence.

    Returns (recording scheduler, landing order): for every event index the
    sequence number of the commit diff it landed in.
    """
    gateway = SharingGateway(system, fold_cross_peer=fold)
    recorder = RecordingScheduler(
        max_batch_size=gateway.scheduler.max_batch_size,
        max_edits_per_group=gateway.scheduler.max_edits_per_group,
        fold_cross_peer=fold)
    gateway.scheduler = recorder

    landings: List[Tuple[str, dict]] = []

    def observe(metadata_id, operation, peers, diff=None):
        if diff is not None:
            landings.append((metadata_id, {
                tuple(change.key): dict(change.after or {})
                for change in diff.changes
            }))

    system.coordinator.subscribe_shared_diff(observe)

    rng = random.Random(seed * 7919)
    sessions = {}
    responses = []
    for event in events:
        if event.peer not in sessions:
            sessions[event.peer] = gateway.open_session(event.peer)
        responses.append(gateway.submit(sessions[event.peer], UpdateEntryRequest(
            metadata_id=event.metadata_id, key=event.key, updates=event.updates)))
        while rng.random() < COMMIT_PROBABILITY and gateway.queue_depth > 0:
            gateway.commit_once()
    gateway.drain()

    failed = [response for response in responses if not response.ok]
    assert not failed, (f"seed {seed}: {len(failed)} fuzzed writes failed: "
                        f"{[response.error for response in failed[:3]]}")
    return recorder, landings


def _landing_sequence(landings, value_to_index) -> Dict[int, int]:
    """event index → sequence number of the diff that carried its value."""
    landed = {}
    for sequence, (metadata_id, rows) in enumerate(landings):
        for _key, row in rows.items():
            for value in row.values():
                index = value_to_index.get((metadata_id, value))
                if index is not None and index not in landed:
                    landed[index] = sequence
    return landed


def _assert_order_invariants(events, landings, value_to_index, seed):
    landed = _landing_sequence(landings, value_to_index)
    assert len(landed) == len(events), (
        f"seed {seed}: {len(events) - len(landed)} committed writes never "
        "surfaced in a view diff")
    # Per (table, key, attribute): landing order == submission order.
    by_cell: Dict[Tuple, List[int]] = {}
    for index, event in enumerate(events):
        for attribute in event.updates:
            by_cell.setdefault((event.metadata_id, event.key, attribute),
                               []).append(index)
    for cell, indexes in by_cell.items():
        sequences = [landed[index] for index in indexes]
        assert sequences == sorted(sequences), (
            f"seed {seed}: writes to {cell} landed out of submission order: "
            f"{list(zip(indexes, sequences))}")
        # Same-key same-attribute writes must also land in *distinct* commits
        # (the planner defers them), or a later value could be lost.
        assert len(set(sequences)) == len(sequences), (
            f"seed {seed}: conflicting writes to {cell} folded into one batch")
    # Per (tenant, table): a tenant's writes never reorder on one table.
    by_tenant_table: Dict[Tuple, List[int]] = {}
    for index, event in enumerate(events):
        by_tenant_table.setdefault((event.peer, event.metadata_id), []).append(index)
    for pair, indexes in by_tenant_table.items():
        sequences = [landed[index] for index in indexes]
        assert sequences == sorted(sequences), (
            f"seed {seed}: tenant {pair[0]} writes on {pair[1]} reordered: "
            f"{list(zip(indexes, sequences))}")


def _assert_fold_invariants(recorder: RecordingScheduler, seed: int):
    for plan in recorder.plans:
        for group in plan.groups:
            keys = [edit.key for edit in group.edits if edit.key is not None]
            assert len(set(keys)) == len(keys), (
                f"seed {seed}: one batch group carries duplicate row keys {keys}")
            if not group.folded:
                continue
            columns_by_peer: Dict[str, set] = {}
            for edit, peer in zip(group.edits, group.edit_peers):
                assert edit.op == "update", (
                    f"seed {seed}: non-update edit folded cross-peer")
                columns_by_peer.setdefault(peer, set()).update(edit.values or {})
            peers = sorted(columns_by_peer)
            for i, peer_a in enumerate(peers):
                for peer_b in peers[i + 1:]:
                    overlap = columns_by_peer[peer_a] & columns_by_peer[peer_b]
                    assert not overlap, (
                        f"seed {seed}: folded group on {group.metadata_id} has "
                        f"overlapping columns {overlap} between {peer_a} and {peer_b}")


def _run_sequential_oracle(system, events):
    for event in events:
        trace = system.coordinator.update_shared_entry(
            event.peer, event.metadata_id, event.key, event.updates)
        assert trace.succeeded, trace.error
    return _fingerprints(system)


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzzed_interleavings_match_sequential_oracle(seed):
    """Random multi-tenant workloads on the hub topology (single shard)."""
    spec = TopologySpec(patients=3, researchers=1, seed=seed)
    gateway_system = build_topology_system(spec, _topology_config(shards=1))
    events, value_to_index = _generate_events(gateway_system, seed)

    recorder, landings = _drive_gateway(gateway_system, events, seed)
    _assert_order_invariants(events, landings, value_to_index, seed)
    _assert_fold_invariants(recorder, seed)
    assert gateway_system.all_shared_tables_consistent()

    oracle_system = build_topology_system(spec, _topology_config(shards=1))
    oracle_prints = _run_sequential_oracle(oracle_system, events)
    gateway_prints = _fingerprints(gateway_system)
    assert gateway_prints == oracle_prints, (
        f"seed {seed}: gateway diverged from the sequential oracle on "
        f"{[k for k in oracle_prints if gateway_prints.get(k) != oracle_prints[k]]}")


@pytest.mark.parametrize("seed", SHARDED_SEEDS)
def test_fuzzed_interleavings_through_sharded_mempool(seed):
    """The same invariants with consensus lanes + ShardedMempool behind the
    miner; the final state must still match the (unsharded) sequential
    oracle."""
    spec = TopologySpec(patients=3, researchers=1, seed=seed,
                        first_patient_id=1_008)
    gateway_system = build_topology_system(spec, _topology_config(shards=2))
    # The sharded pipeline is actually in play.
    assert gateway_system.simulator.router.num_shards == 2
    events, value_to_index = _generate_events(gateway_system, seed)

    recorder, landings = _drive_gateway(gateway_system, events, seed)
    _assert_order_invariants(events, landings, value_to_index, seed)
    _assert_fold_invariants(recorder, seed)
    assert gateway_system.all_shared_tables_consistent()

    oracle_system = build_topology_system(spec, _topology_config(shards=1))
    oracle_prints = _run_sequential_oracle(oracle_system, events)
    assert _fingerprints(gateway_system) == oracle_prints


@pytest.mark.parametrize("seed", FOLD_SEEDS)
def test_fuzzed_cross_peer_folding_on_shared_table(seed):
    """Doctor and patient fuzzing one shared CARE table: folds must obey the
    disjointness rules and the folded final state must equal both the
    sequential oracle and a fold-disabled gateway run."""
    folded_system = build_extended_scenario(SystemConfig.private_chain(1.0))
    events, value_to_index = _generate_events(folded_system, seed,
                                              metadata_ids=[CARE_TABLE])
    recorder, landings = _drive_gateway(folded_system, events, seed, fold=True)
    _assert_order_invariants(events, landings, value_to_index, seed)
    _assert_fold_invariants(recorder, seed)
    folded_prints = _fingerprints(folded_system)

    serial_system = build_extended_scenario(SystemConfig.private_chain(1.0))
    _drive_gateway(serial_system, events, seed, fold=False)
    assert _fingerprints(serial_system) == folded_prints, (
        f"seed {seed}: cross-peer folding changed the post-state")

    oracle_system = build_extended_scenario(SystemConfig.private_chain(1.0))
    assert _run_sequential_oracle(oracle_system, events) == folded_prints
