"""Integration tests of the full Researcher → Doctor → Patient cascade and of
entry-level create/delete, on a purpose-built topology.

The paper's own Fig. 5 narrative for steps 7-11 is a *dosage* change that the
doctor re-shares with the patient after absorbing a researcher update.  The
paper scenario's exact views only overlap on the D32 key, so this module uses
a slightly richer pair of agreements (documented below) in which the overlap
is a plain value column — which is precisely the situation steps 6-11
describe:

* ``CARE``  — doctor ↔ patient share (patient_id, medication_name, dosage,
  clinical_data), derived from the doctor's D3 and the patient's D1.
* ``STUDY`` — doctor ↔ researcher share (patient_id, dosage,
  mechanism_of_action), keyed by patient id, derived from the doctor's D3 and
  the researcher's study table DS.

``dosage`` appears in both shared tables, so a researcher-side dosage update
must flow STUDY → D3 → CARE → patient.
"""

import pytest

pytestmark = [pytest.mark.integration]

from repro.config import SystemConfig
from repro.core.scenario import CARE_TABLE as CARE
from repro.core.scenario import STUDY_TABLE as STUDY
from repro.core.scenario import build_extended_scenario


@pytest.fixture
def trio_system():
    return build_extended_scenario(SystemConfig.private_chain(block_interval=1.0))


class TestFullCascade:
    def test_researcher_dosage_update_reaches_patient(self, trio_system):
        """Fig. 5 steps 1-11 end to end: the dosage change initiated on the
        researcher's shared study table is reflected into the doctor's D3 and
        then re-shared with (and reflected by) the patient."""
        system = trio_system
        trace = system.coordinator.update_shared_entry(
            "researcher", STUDY, (188,), {"dosage": "two tablets every 12h"})
        assert trace.succeeded
        assert CARE in trace.cascaded_metadata_ids
        # Doctor absorbed it.
        assert system.peer("doctor").local_table("D3").get(188)[
            "dosage"] == "two tablets every 12h"
        # Patient received the re-share and reflected it into D1.
        assert system.peer("patient").shared_table(CARE).get(188)[
            "dosage"] == "two tablets every 12h"
        assert system.peer("patient").local_table("D1").get(188)[
            "dosage"] == "two tablets every 12h"
        # Researcher's own base table was updated through its own put.
        assert system.peer("researcher").local_table("DS").get(188)[
            "dosage"] == "two tablets every 12h"
        # Every shared table is pairwise consistent and consistent with sources.
        assert system.all_shared_tables_consistent()
        assert system.views_consistent_with_sources()

    def test_cascade_trace_shows_both_contract_requests(self, trio_system):
        trace = trio_system.coordinator.update_shared_entry(
            "researcher", STUDY, (188,), {"dosage": "two tablets every 12h"})
        contract_steps = [s for s in trace.steps if s.action == "contract_request"]
        assert len(contract_steps) == 2  # STUDY request + CARE cascade request
        acknowledgements = [s for s in trace.steps if s.action == "acknowledge"]
        assert len(acknowledgements) == 2
        assert trace.blocks_created >= 4

    def test_cascade_latency_exceeds_single_hop(self, trio_system):
        single = trio_system.coordinator.update_shared_entry(
            "researcher", STUDY, (188,), {"mechanism_of_action": "MeA1-only-study"})
        cascading = trio_system.coordinator.update_shared_entry(
            "researcher", STUDY, (189,), {"dosage": "cascaded dosage"})
        assert cascading.elapsed > single.elapsed
        assert single.cascaded_metadata_ids == []

    def test_unrelated_attribute_does_not_cascade(self, trio_system):
        """A mechanism-of-action change is not part of CARE, so the patient is
        never contacted (the paper's "third party" isolation)."""
        system = trio_system
        patient_messages_before = len(
            system.simulator.channels.channel_between("doctor", "patient").transfers)
        trace = system.coordinator.update_shared_entry(
            "researcher", STUDY, (188,), {"mechanism_of_action": "MeA1-private"})
        assert trace.succeeded
        assert trace.cascaded_metadata_ids == []
        patient_messages_after = len(
            system.simulator.channels.channel_between("doctor", "patient").transfers)
        assert patient_messages_after == patient_messages_before

    def test_third_party_never_sees_other_channel_data(self, trio_system):
        system = trio_system
        system.coordinator.update_shared_entry(
            "researcher", STUDY, (188,), {"dosage": "two tablets every 12h"})
        exposure = system.simulator.channels.exposure_report()
        # The researcher never receives CARE data; the patient never receives STUDY data.
        assert "D31" not in exposure.get("researcher", ())
        assert "D13" not in exposure.get("researcher", ())
        assert "DS3" not in exposure.get("patient", ())
        assert "D3S" not in exposure.get("patient", ())


class TestCreateAndDeleteEndToEnd:
    def test_doctor_creates_record_and_it_cascades(self, trio_system):
        system = trio_system
        trace = system.coordinator.create_shared_entry(
            "doctor", CARE,
            {"patient_id": 200, "medication_name": "Amoxicillin",
             "clinical_data": "CliD9", "dosage": "250 mg three times daily"})
        assert trace.succeeded
        # Patient side: shared table and base table gained the record.
        assert system.peer("patient").shared_table(CARE).contains_key(200)
        assert system.peer("patient").local_table("D1").contains_key(200)
        # Doctor's base table gained it (hidden attribute NULL).
        assert system.peer("doctor").local_table("D3").get(200)["mechanism_of_action"] is None
        # The STUDY share also gained the new patient via the cascade.
        assert STUDY in trace.cascaded_metadata_ids
        assert system.peer("researcher").shared_table(STUDY).contains_key(200)
        assert system.peer("researcher").local_table("DS").contains_key(200)
        assert system.all_shared_tables_consistent()

    def test_doctor_deletes_record_everywhere(self, trio_system):
        system = trio_system
        trace = system.coordinator.delete_shared_entry("doctor", CARE, (189,))
        assert trace.succeeded
        assert not system.peer("doctor").local_table("D3").contains_key(189)
        assert not system.peer("patient").local_table("D1").contains_key(189)
        assert not system.peer("researcher").local_table("DS").contains_key(189)
        assert system.all_shared_tables_consistent()
        assert system.views_consistent_with_sources()

    def test_researcher_cannot_create_care_entries(self, trio_system):
        from repro.errors import UpdateRejected

        with pytest.raises(Exception) as excinfo:
            trio_system.coordinator.create_shared_entry(
                "researcher", CARE,
                {"patient_id": 300, "medication_name": "X", "clinical_data": "C",
                 "dosage": "d"})
        # The researcher is not a peer of CARE at all.
        assert excinfo.type.__name__ in ("AgreementError", "UpdateRejected")

    def test_audit_covers_cascaded_operations(self, trio_system):
        system = trio_system
        system.coordinator.update_shared_entry(
            "researcher", STUDY, (188,), {"dosage": "two tablets every 12h"})
        trail = system.audit_trail()
        records = trail.records()
        assert {record.metadata_id for record in records} == {STUDY, CARE}
        assert trail.verify_integrity()
        assert system.check_contract_specification().passed
