"""Failure-injection and robustness tests.

These tests exercise the unhappy paths the paper's threat section (§IV) cares
about: tampered replicas, unauthorized requests, peers that never fetch the
newest data, ill-behaved synchronisation, and network message loss.
"""

import pytest

pytestmark = [pytest.mark.integration]

from repro.config import NetworkConfig, SystemConfig
from repro.core.scenario import (
    DOCTOR_RESEARCHER_TABLE,
    PATIENT_DOCTOR_TABLE,
    build_paper_scenario,
)
from repro.errors import InvalidTransactionError, UpdateRejected, WorkflowError


class TestPermissionFailureIsolation:
    def test_rejected_update_leaves_every_replica_consistent(self, fresh_paper_system):
        system = fresh_paper_system
        roots_before = {node.name: node.state_root() for node in system.simulator.nodes}
        with pytest.raises(UpdateRejected):
            system.coordinator.update_shared_entry(
                "patient", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "blocked"})
        # The rejected request still consumed a block (it is on-chain, auditable)
        # but contract storage did not change and all replicas agree.
        assert system.simulator.in_consensus()
        assert system.all_shared_tables_consistent()
        assert system.views_consistent_with_sources()
        history = system.server_app("doctor").query_contract(
            "update_history", metadata_id=PATIENT_DOCTOR_TABLE)
        assert history == []

    def test_outsider_cannot_operate_on_shared_data(self, fresh_paper_system):
        system = fresh_paper_system
        system.add_peer("insurer", "Insurer")
        app = system.server_app("insurer")
        tx = app.build_contract_call(
            "request_update",
            {"metadata_id": PATIENT_DOCTOR_TABLE,
             "changed_attributes": ["dosage"], "diff_hash": "h"})
        # The insurer joined after genesis, so it routes its request through an
        # established node (its own replica has not synced historical blocks).
        doctor_node = system.server_app("doctor").node
        system.simulator.submit_transaction(doctor_node.name, tx)
        system.simulator.mine()
        receipt = doctor_node.chain.receipt(tx.tx_hash)
        assert not receipt.success
        assert "not a sharing peer" in receipt.error


class TestStaleness:
    def test_update_blocked_while_peer_has_not_fetched(self, fresh_paper_system):
        """§III-B: further operations are blocked until every sharing peer has
        the newest shared data (acknowledged on the contract)."""
        system = fresh_paper_system
        researcher_app = system.server_app("researcher")
        tx1 = researcher_app.build_contract_call(
            "request_update",
            {"metadata_id": DOCTOR_RESEARCHER_TABLE,
             "changed_attributes": ["mechanism_of_action"], "diff_hash": "h1"})
        system.simulator.submit_transaction(researcher_app.node.name, tx1)
        system.simulator.mine()
        assert researcher_app.node.chain.receipt(tx1.tx_hash).success
        # The doctor never acknowledges; the next update must be rejected.
        tx2 = researcher_app.build_contract_call(
            "request_update",
            {"metadata_id": DOCTOR_RESEARCHER_TABLE,
             "changed_attributes": ["mechanism_of_action"], "diff_hash": "h2"})
        system.simulator.submit_transaction(researcher_app.node.name, tx2)
        system.simulator.mine()
        receipt = researcher_app.node.chain.receipt(tx2.tx_hash)
        assert not receipt.success
        assert "not fetched" in receipt.error


class TestSignatureAndReplayProtection:
    def test_forged_sender_rejected_by_mempool(self, fresh_paper_system):
        system = fresh_paper_system
        doctor = system.peer("doctor")
        patient_app = system.server_app("patient")
        # The patient builds a transaction claiming to be the doctor.
        from repro.ledger.transaction import Transaction

        forged = Transaction(
            sender=doctor.address, kind="call", nonce=0,
            contract=system.contract_address, method="request_update",
            args={"metadata_id": PATIENT_DOCTOR_TABLE,
                  "changed_attributes": ["dosage"], "diff_hash": "h"},
        )
        # The patient cannot produce the doctor's signature, so the forged
        # transaction can only be submitted unsigned — and is rejected.
        with pytest.raises(InvalidTransactionError):
            patient_app.node.mempool.submit(forged)
        # Signing with the patient's own key does not help either: the key
        # does not match the claimed sender address.
        with pytest.raises(InvalidTransactionError):
            forged.signed_by(system.peer("patient").keypair)

    def test_replayed_transaction_rejected(self, fresh_paper_system):
        system = fresh_paper_system
        app = system.server_app("researcher")
        tx = app.build_contract_call(
            "request_update",
            {"metadata_id": DOCTOR_RESEARCHER_TABLE,
             "changed_attributes": ["mechanism_of_action"], "diff_hash": "h1"})
        system.simulator.submit_transaction(app.node.name, tx)
        with pytest.raises(InvalidTransactionError):
            app.node.mempool.submit(tx)


class TestTamperEvidence:
    def test_tampered_replica_detected_by_audit(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        # A malicious patient node rewrites a block payload in its replica.
        patient_node = system.server_app("patient").node
        target = patient_node.chain.block_by_number(patient_node.chain.height)
        target.header.merkle_root = "0" * 64
        assert not patient_node.chain.verify_chain()
        # Honest replicas are unaffected.
        assert system.server_app("doctor").node.chain.verify_chain()


class TestWorkflowRobustness:
    def test_missing_notification_is_an_explicit_error(self, fresh_paper_system):
        """If the contract event never reaches the sharing peer (e.g. its node
        is partitioned), the workflow fails loudly instead of silently
        diverging."""
        system = fresh_paper_system
        doctor_app = system.server_app("doctor")
        # Simulate the partition by making the doctor's app drop notifications.
        doctor_app._on_event = lambda entry: None
        doctor_app.node._event_subscribers = [doctor_app._on_event]
        with pytest.raises(WorkflowError):
            system.coordinator.update_shared_entry(
                "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
                {"mechanism_of_action": "MeA1-v2"})

    def test_lossy_network_configuration_still_converges(self):
        """Blockchain gossip with a small drop rate: because the coordinator
        mines through the miner node and every replica applies blocks it does
        receive, the paper scenario still completes when no block gossip is
        lost for the involved nodes (drop applied to redundant traffic)."""
        config = SystemConfig.private_chain(block_interval=1.0)
        system = build_paper_scenario(config=config)
        trace = system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        assert trace.succeeded
        assert system.simulator.in_consensus()


class TestLawCheckingToggle:
    def test_system_can_disable_law_checking(self):
        config = SystemConfig(check_lens_laws=False)
        system = build_paper_scenario(config=config)
        trace = system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        assert trace.succeeded
        assert not system.server_app("doctor").manager.check_laws
