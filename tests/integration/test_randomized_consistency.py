"""Randomized end-to-end consistency: the paper's core guarantee under load.

For several seeds, a permission-valid stream of shared-data updates is pushed
through the full system (contracts, mining, notifications, channels, lenses).
After every stream the system must satisfy the invariants the paper's
architecture promises:

* both peers of every agreement hold identical shared tables;
* every stored shared table equals a fresh ``get`` of its owner's base table;
* all node replicas agree on height and state root;
* the on-chain history passes the executable contract-specification checks;
* the audit trail's records verify against the chain.
"""

from __future__ import annotations

import pytest

pytestmark = [pytest.mark.integration, pytest.mark.slow]

from repro.config import SystemConfig
from repro.core.scenario import build_extended_scenario, build_paper_scenario
from repro.metrics.collectors import measure_throughput
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.updates import UpdateStreamGenerator


def _assert_invariants(system):
    assert system.all_shared_tables_consistent()
    assert system.views_consistent_with_sources()
    assert system.simulator.in_consensus()
    spec_result = system.check_contract_specification()
    assert spec_result.passed, spec_result.violations
    trail = system.audit_trail()
    assert trail.verify_integrity()
    for record in trail.records():
        assert trail.verify_record_inclusion(record)


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_paper_scenario_random_streams(seed):
    system = build_paper_scenario(SystemConfig.private_chain(block_interval=1.0))
    events = UpdateStreamGenerator(system, seed=seed).stream(8)
    result = measure_throughput(system, events)
    assert result.updates_accepted == len(events)
    _assert_invariants(system)


@pytest.mark.parametrize("seed", [3, 17])
def test_extended_scenario_random_streams(seed):
    system = build_extended_scenario(SystemConfig.private_chain(block_interval=1.0))
    events = UpdateStreamGenerator(system, seed=seed).stream(6)
    result = measure_throughput(system, events)
    assert result.updates_accepted == len(events)
    _assert_invariants(system)


def test_topology_random_stream():
    system = build_topology_system(TopologySpec(patients=4, researchers=1, seed=5),
                                   config=SystemConfig.private_chain(block_interval=1.0))
    events = UpdateStreamGenerator(system, seed=11).stream(10)
    result = measure_throughput(system, events)
    assert result.updates_accepted == len(events)
    _assert_invariants(system)


def test_conflict_heavy_stream_stays_consistent():
    """Even when every event targets the same shared table (maximum contention),
    the acknowledgement discipline keeps everything consistent."""
    system = build_paper_scenario(SystemConfig.private_chain(block_interval=1.0))
    events = UpdateStreamGenerator(system, seed=31).stream(8, conflict_fraction=1.0)
    result = measure_throughput(system, events)
    assert result.updates_accepted == len(events)
    _assert_invariants(system)
