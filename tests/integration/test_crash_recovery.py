"""Crash-simulation recovery tests: kill at arbitrary WAL offsets, recover,
fingerprint-compare against an uncrashed oracle.

Three layers of oracle:

* **Relational** — a scripted operation sequence runs on a durable database;
  "crashes" are simulated by truncating the on-disk WAL at arbitrary byte
  offsets (and at segment boundaries, and around checkpoints).  Recovery
  must rebuild exactly the state an in-memory oracle reaches after the
  surviving prefix of complete entries — byte-identical table fingerprints.
* **Gateway responses** — open-loop-ish traffic through a ``state_dir``
  gateway; the process "dies" (the object is abandoned, never closed) and a
  freshly constructed gateway must answer ``get_response`` identically for
  every response that was terminal (and, under the batched policy, synced)
  before the crash.
* **Full peer state** — every peer database gets a durable WAL backend and
  an initial checkpoint; after the crash each is recovered from disk and
  must fingerprint-match the uncrashed system's tables.
"""

from __future__ import annotations

import shutil

import pytest

from repro.config import SystemConfig
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, build_paper_scenario
from repro.gateway import SharingGateway
from repro.gateway.requests import ReadViewRequest, UpdateEntryRequest
from repro.relational import Column, DataType, Database, Schema
from repro.relational.durability import (
    JsonlWalBackend,
    WAL_DIR_NAME,
    checkpoint_database,
    open_durable_database,
    recover,
)

pytestmark = pytest.mark.integration

SCHEMA = Schema(
    [Column("id", DataType.INTEGER, nullable=False),
     Column("name", DataType.STRING),
     Column("score", DataType.INTEGER)],
    primary_key=("id",),
)


def _script():
    """A deterministic op sequence, one WAL entry per op (so entry counts
    map 1:1 to script prefixes)."""
    from repro.relational.predicates import Gt, Lt
    from repro.relational.query import Scan, Select

    ops = [lambda db: db.create_table("t", SCHEMA)]
    for i in range(12):
        ops.append(lambda db, i=i: db.insert(
            "t", {"id": i, "name": f"row-{i}", "score": i * 3}))
    ops.append(lambda db: db.create_index("t", ["name"]))
    for i in range(6):
        ops.append(lambda db, i=i: db.update_by_key(
            "t", (i,), {"score": 100 + i}))
    ops.append(lambda db: db.delete_by_key("t", (11,)))
    ops.append(lambda db: db.update_where("t", Gt("score", 99), {"name": "hot"}))
    ops.append(lambda db: db.delete_where("t", Lt("id", 2)))
    ops.append(lambda db: db.register_view("top", Select(Scan("t"), Gt("score", 50))))
    ops.append(lambda db: db.replace_table(
        "t", [{"id": 90 + i, "name": f"fresh-{i}", "score": i} for i in range(5)]))
    for i in range(4):
        ops.append(lambda db, i=i: db.insert(
            "t", {"id": 50 + i, "name": f"late-{i}", "score": i}))
    return ops


def _oracle_state(n_ops):
    """The database an uncrashed run reaches after the first ``n_ops``."""
    database = Database("peer")
    for op in _script()[:n_ops]:
        op(database)
    return database


def _same_state(first: Database, second: Database) -> bool:
    if set(first.table_names) != set(second.table_names):
        return False
    for name in first.table_names:
        if first.table(name).fingerprint() != second.table(name).fingerprint():
            return False
        if set(first.table(name).indexed_columns) != set(
                second.table(name).indexed_columns):
            return False
    return {v: first.view_definition(v).to_dict() for v in first.view_names} == \
           {v: second.view_definition(v).to_dict() for v in second.view_names}


def _run_durable(state_dir, segment_max_bytes=1_000_000, checkpoint_after=None):
    database = open_durable_database("peer", state_dir,
                                     segment_max_bytes=segment_max_bytes)
    for index, op in enumerate(_script()):
        op(database)
        if checkpoint_after is not None and index + 1 == checkpoint_after:
            database.checkpoint(state_dir)
    database.wal.sync()
    database.wal.close()
    return database


class TestCrashAtArbitraryWalOffsets:
    def test_every_truncation_point_recovers_a_consistent_prefix(self, tmp_path):
        """Truncate the final WAL segment at every byte offset (stride-
        sampled) — recovery must always equal the oracle at the surviving
        complete-entry prefix, dropping at most the torn tail."""
        origin = tmp_path / "origin"
        live = _run_durable(origin)
        total_ops = len(_script())
        segment = sorted((origin / WAL_DIR_NAME).glob("wal-*.jsonl"))[-1]
        size = segment.stat().st_size
        tested = 0
        for offset in list(range(0, size, max(1, size // 23))) + [size]:
            crashed = tmp_path / f"crash-{offset}"
            shutil.copytree(origin, crashed)
            target = sorted((crashed / WAL_DIR_NAME).glob("wal-*.jsonl"))[-1]
            with open(target, "r+b") as handle:
                handle.truncate(offset)
            result = recover(crashed)
            assert result.torn_entries_dropped <= 1
            oracle = _oracle_state(result.entries_replayed)
            assert _same_state(result.database, oracle), (
                f"divergence after crash at WAL offset {offset}")
            tested += 1
        assert tested > 10
        # The uncrashed end state matches the full oracle too.
        assert _same_state(live, _oracle_state(total_ops))

    def test_crash_at_segment_boundaries(self, tmp_path):
        """With forced rotation, dropping whole trailing segments must
        recover the prefix that remains."""
        origin = tmp_path / "origin"
        _run_durable(origin, segment_max_bytes=400)
        segments = sorted((origin / WAL_DIR_NAME).glob("wal-*.jsonl"))
        assert len(segments) >= 3, "rotation did not happen; shrink the threshold"
        for keep in range(1, len(segments)):
            crashed = tmp_path / f"crash-seg-{keep}"
            shutil.copytree(origin, crashed)
            for stale in sorted((crashed / WAL_DIR_NAME).glob("wal-*.jsonl"))[keep:]:
                stale.unlink()
            result = recover(crashed)
            assert _same_state(result.database,
                               _oracle_state(result.entries_replayed))


class TestCrashAroundCheckpoint:
    CHECKPOINT_AFTER = 16

    def test_crash_before_checkpoint(self, tmp_path):
        origin = tmp_path / "origin"
        _run_durable(origin)  # never checkpointed
        result = recover(origin)
        assert not result.snapshot_loaded
        assert _same_state(result.database, _oracle_state(len(_script())))

    def test_crash_inside_checkpoint_snapshot_written_manifest_not(self, tmp_path):
        """Snapshot file landed but the manifest replace never happened: the
        old manifest still governs, the WAL is intact, recovery is the full
        replay — the stray snapshot is ignored."""
        origin = tmp_path / "origin"
        _run_durable(origin)
        stray = origin / "snapshot-9999999999999999.json"
        stray.write_text("{\"torn\": true}", encoding="utf-8")
        (origin / ".snapshot-x.json.tmp.123").write_text("torn", encoding="utf-8")
        result = recover(origin)
        assert not result.snapshot_loaded
        assert _same_state(result.database, _oracle_state(len(_script())))

    def test_crash_inside_checkpoint_before_segment_deletion(self, tmp_path):
        """Manifest replaced but the covered segments survived the crash:
        recovery must skip the already-checkpointed prefix by sequence, not
        replay it twice."""
        origin = tmp_path / "origin"
        pre = tmp_path / "pre"
        database = open_durable_database("peer", origin, segment_max_bytes=400)
        script = _script()
        for op in script[:self.CHECKPOINT_AFTER]:
            op(database)
        database.wal.sync()
        shutil.copytree(origin, pre)  # segments as they were pre-checkpoint
        database.checkpoint(origin)
        for op in script[self.CHECKPOINT_AFTER:]:
            op(database)
        database.wal.sync()
        database.wal.close()
        # Resurrect the deleted (covered) segments next to the kept ones.
        for old in sorted((pre / WAL_DIR_NAME).glob("wal-*.jsonl")):
            target = origin / WAL_DIR_NAME / old.name
            if not target.exists():
                shutil.copy(old, target)
        result = recover(origin)
        assert result.snapshot_loaded
        assert _same_state(result.database, _oracle_state(len(script)))

    def test_crash_after_checkpoint(self, tmp_path):
        origin = tmp_path / "origin"
        _run_durable(origin, checkpoint_after=self.CHECKPOINT_AFTER)
        result = recover(origin)
        assert result.snapshot_loaded
        assert result.checkpoint_sequence == self.CHECKPOINT_AFTER
        assert _same_state(result.database, _oracle_state(len(_script())))

    def test_crash_with_torn_tail_after_checkpoint(self, tmp_path):
        origin = tmp_path / "origin"
        _run_durable(origin, checkpoint_after=self.CHECKPOINT_AFTER)
        segment = sorted((origin / WAL_DIR_NAME).glob("wal-*.jsonl"))[-1]
        with open(segment, "ab") as handle:
            handle.write(b'{"sequence": 999, "operation":')
        result = recover(origin)
        assert result.torn_entries_dropped == 1
        assert _same_state(result.database, _oracle_state(len(_script())))


class TestEmptyWalRecovery:
    def test_fresh_state_dir_recovers_empty(self, tmp_path):
        open_durable_database("peer", tmp_path)
        result = recover(tmp_path)
        assert result.entries_replayed == 0
        assert result.database.table_names == ()
        assert result.database.name == "peer"

    def test_checkpoint_with_empty_tail(self, tmp_path):
        database = open_durable_database("peer", tmp_path)
        database.create_table("t", SCHEMA, [{"id": 1, "name": "a", "score": 1}])
        database.checkpoint(tmp_path)
        database.wal.close()
        result = recover(tmp_path)
        assert result.snapshot_loaded
        assert result.entries_replayed == 0
        assert _same_state(result.database, database)


def _update(i):
    return UpdateEntryRequest(metadata_id=DOCTOR_RESEARCHER_TABLE,
                              key=("Ibuprofen",),
                              updates={"mechanism_of_action": f"MeA-{i}"})


def _read():
    return ReadViewRequest(metadata_id=DOCTOR_RESEARCHER_TABLE)


class TestGatewayCrashRecovery:
    def _drive(self, gateway, rounds=4):
        """Mixed traffic; returns every response that reached terminal."""
        session = gateway.open_session("researcher")
        responses = []
        for i in range(rounds):
            responses.append(gateway.submit(session, _read()))
            responses.append(gateway.submit(session, _update(i)))
            gateway.commit_once()
        return [r for r in responses if r.terminal]

    def test_always_policy_crash_answers_every_terminal(self, tmp_path):
        gateway = SharingGateway(
            build_paper_scenario(SystemConfig.private_chain(1.0)),
            state_dir=tmp_path, fsync_policy="always")
        terminals = self._drive(gateway)
        assert terminals
        # Crash: the gateway object is abandoned — no close(), no flush.
        restarted = SharingGateway(
            build_paper_scenario(SystemConfig.private_chain(1.0)),
            state_dir=tmp_path)
        for response in terminals:
            recovered = restarted.get_response(response.request_id)
            assert recovered is not None, response.request_id
            assert recovered.canonical() == response.canonical()

    def test_batch_policy_crash_answers_synced_terminals(self, tmp_path):
        """Under the batched policy the durable horizon is the last commit
        boundary: everything terminal at that point must survive; responses
        finalised after it may be lost but never corrupted."""
        gateway = SharingGateway(
            build_paper_scenario(SystemConfig.private_chain(1.0)),
            state_dir=tmp_path, fsync_policy="batch")
        synced_terminals = self._drive(gateway)  # commit_once syncs each round
        # Past the last sync: finalised but possibly still buffered.
        session = gateway.open_session("researcher")
        unsynced = [gateway.submit(session, _read()) for _ in range(3)]
        restarted = SharingGateway(
            build_paper_scenario(SystemConfig.private_chain(1.0)),
            state_dir=tmp_path)
        for response in synced_terminals:
            recovered = restarted.get_response(response.request_id)
            assert recovered is not None, response.request_id
            assert recovered.canonical() == response.canonical()
        for response in unsynced:
            recovered = restarted.get_response(response.request_id)
            assert recovered is None or recovered.canonical() == response.canonical()

    def test_torn_journal_tail_tolerated(self, tmp_path):
        gateway = SharingGateway(
            build_paper_scenario(SystemConfig.private_chain(1.0)),
            state_dir=tmp_path, fsync_policy="always")
        terminals = self._drive(gateway, rounds=2)
        journal_dir = tmp_path / "responses"
        segment = sorted(journal_dir.glob("wal-*.jsonl"))[-1]
        with open(segment, "ab") as handle:
            handle.write(b'{"sequence": 424242, "operation": "resp')
        restarted = SharingGateway(
            build_paper_scenario(SystemConfig.private_chain(1.0)),
            state_dir=tmp_path)
        for response in terminals:
            recovered = restarted.get_response(response.request_id)
            assert recovered is not None
            assert recovered.canonical() == response.canonical()


class TestFullPeerStateCrashRecovery:
    def test_peer_databases_recover_byte_identical(self, tmp_path):
        """The whole deployment story: every peer database journals to disk
        (initial checkpoint covers pre-attach state), the gateway journals
        responses; after a crash both recover byte-identical."""
        system = build_paper_scenario(SystemConfig.private_chain(1.0))
        peer_dirs = {}
        for peer in system.peers:
            peer_dir = tmp_path / "peers" / peer.name
            backend = JsonlWalBackend(peer_dir / WAL_DIR_NAME,
                                      fsync_policy="always")
            peer.database.wal.attach_backend(backend)
            checkpoint_database(peer.database, peer_dir)
            peer_dirs[peer.name] = peer_dir
        gateway = SharingGateway(system, state_dir=tmp_path / "gateway",
                                 fsync_policy="always")
        session = gateway.open_session("researcher")
        terminals = []
        for i in range(3):
            terminals.append(gateway.submit(session, _update(i)))
            gateway.commit_once()
        assert all(r.terminal for r in terminals)
        # Crash.  Recover every peer database from disk and compare against
        # the uncrashed (live) system, table by table.
        for peer in system.peers:
            recovered = recover(peer_dirs[peer.name])
            live = peer.database
            assert set(recovered.database.table_names) == set(live.table_names)
            for name in live.table_names:
                assert (recovered.database.table(name).fingerprint()
                        == live.table(name).fingerprint()), (
                    f"peer {peer.name} table {name} diverged after recovery")
        restarted = SharingGateway(
            build_paper_scenario(SystemConfig.private_chain(1.0)),
            state_dir=tmp_path / "gateway")
        for response in terminals:
            assert (restarted.get_response(response.request_id).canonical()
                    == response.canonical())
