"""Failure injection on the serving path: blown-up commits must not strand
responses, corrupt the view cache, or kill the drainers.

Faults are injected through the public :mod:`repro.chaos` API — a seeded
:class:`FaultPlan` attached with :meth:`MedicalDataSharingSystem.attach_chaos`
— not by monkeypatching coordinator internals, so these tests exercise the
exact injection points chaos soaks use.  The contracts under test:

* a commit that raises mid-batch leaves **every** queued request in a
  terminal (``error``) response state — nothing stays ``queued`` forever;
* the :class:`ViewCache` never keeps a half-patched entry: views touched by
  a failed commit are dropped wholesale and the next read repopulates them
  from the installed tables;
* the :class:`GatewayWorkerPool` and the async commit pump both survive the
  failure, record it observably, and keep serving subsequent commits;
* the same transient faults are *absorbed* once a retry policy is attached.
"""

import asyncio

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.config import SystemConfig
from repro.errors import InjectedFault, TransientFault
from repro.gateway import (
    AsyncSharingGateway,
    GatewayWorkerPool,
    ReadViewRequest,
    SharingGateway,
    STATUS_ERROR,
    STATUS_OK,
    UpdateEntryRequest,
)
from repro.workloads.topology import TopologySpec, build_topology_system

pytestmark = [pytest.mark.integration]


def build_system(patients=2):
    return build_topology_system(TopologySpec(patients=patients, researchers=0),
                                 SystemConfig.private_chain(1.0))


def tenant_tables(system):
    return {f"patient-{mid.split(':')[1]}": mid for mid in system.agreement_ids}


def update_for(metadata_id, tag):
    patient_id = int(metadata_id.split(":")[1])
    return UpdateEntryRequest(metadata_id=metadata_id, key=(patient_id,),
                              updates={"clinical_data": tag})


def inject(system, *specs, retry=False):
    """Attach a fault plan built from ``specs``; returns the injector."""
    injector = FaultInjector(FaultPlan(specs=tuple(specs)),
                             system.simulator.clock)
    system.attach_chaos(injector,
                        retry_policy=RetryPolicy(jitter=0.0) if retry else None)
    return injector


class TestSyncCommitBlowup:
    def test_every_queued_request_terminal_after_blowup(self):
        system = build_system(patients=3)
        tables = tenant_tables(system)
        gateway = SharingGateway(system)
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        responses = [gateway.submit(sessions[peer], update_for(metadata_id, "boom"))
                     for peer, metadata_id in sorted(tables.items())]
        injector = inject(system, FaultSpec(kind="commit.fail", max_fires=1))
        with pytest.raises(InjectedFault):
            gateway.commit_once()
        # No response is left queued; each carries the injected error.
        assert all(response.status == STATUS_ERROR for response in responses)
        assert all("injected" in response.error for response in responses)
        assert all(response.terminal for response in responses)
        assert gateway.outstanding_writes == 0
        assert gateway.queue_depth == 0
        assert gateway.writes_rejected == len(responses)
        assert injector.events_by_kind() == {"commit.fail": 1}

    def test_cache_has_no_half_patched_entries_after_blowup(self):
        system = build_system(patients=2)
        tables = tenant_tables(system)
        gateway = SharingGateway(system)
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        # Prime the cache with every tenant's view.
        for peer, metadata_id in tables.items():
            assert gateway.submit(sessions[peer], ReadViewRequest(metadata_id)).ok
        assert len(gateway.cache) == len(tables)
        for peer, metadata_id in sorted(tables.items()):
            gateway.submit(sessions[peer], update_for(metadata_id, "never-lands"))
        inject(system, FaultSpec(kind="commit.fail", max_fires=1))
        with pytest.raises(InjectedFault):
            gateway.commit_once()
        # The planned tables' views were dropped wholesale, not patched.
        for peer, metadata_id in tables.items():
            assert gateway.cache.peek(peer, metadata_id) is None
        # The next read repopulates from the (unchanged) installed tables.
        for peer, metadata_id in sorted(tables.items()):
            response = gateway.submit(sessions[peer], ReadViewRequest(metadata_id))
            assert response.ok
            table = response.payload["table"]
            assert all(row["clinical_data"] != "never-lands"
                       for row in table["rows"])

    def test_mid_protocol_failure_still_resolves_every_member(self):
        """A consensus failure *after* the request round (the ack round never
        mines) must still leave every member terminal."""
        system = build_system(patients=2)
        tables = tenant_tables(system)
        gateway = SharingGateway(system)
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        responses = [gateway.submit(sessions[peer], update_for(metadata_id, "mid"))
                     for peer, metadata_id in sorted(tables.items())]
        # The first mining round probes at the commit's start time; arming
        # the spec just past it makes the *second* round (the acks) blow up.
        inject(system, FaultSpec(kind="consensus.fail",
                                 start=system.simulator.clock.now() + 0.5,
                                 max_fires=1))
        with pytest.raises(TransientFault):
            gateway.commit_once()
        assert all(response.status == STATUS_ERROR for response in responses)
        assert gateway.outstanding_writes == 0

    def test_retry_policy_absorbs_transient_consensus_failures(self):
        """The same fault plan self-heals once a retry policy is attached:
        the round is retried with backoff and the batch commits."""
        system = build_system(patients=2)
        tables = tenant_tables(system)
        gateway = SharingGateway(system)
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        responses = [gateway.submit(sessions[peer], update_for(metadata_id, "heal"))
                     for peer, metadata_id in sorted(tables.items())]
        inject(system, FaultSpec(kind="consensus.fail", max_fires=2),
               retry=True)
        gateway.commit_once()  # no raise: the retrier absorbed both faults
        assert all(response.status == STATUS_OK for response in responses)
        retrier = system.coordinator.retrier
        assert retrier.retries >= 2
        assert retrier.exhausted == 0
        assert system.all_shared_tables_consistent()


class TestWorkerPoolSurvival:
    def test_pool_records_error_and_keeps_draining(self):
        system = build_system(patients=2)
        tables = tenant_tables(system)
        gateway = SharingGateway(system)
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        injector = inject(system, FaultSpec(kind="commit.fail", max_fires=1))
        (peer_a, table_a), (peer_b, table_b) = sorted(tables.items())
        with GatewayWorkerPool(gateway, workers=2) as pool:
            doomed = gateway.submit(sessions[peer_a], update_for(table_a, "doomed"))
            assert pool.join_idle(timeout=30.0)
            # The failure is recorded, the member is terminal, the pool lives.
            assert pool.errors and "injected" in pool.errors[0]
            assert doomed.status == STATUS_ERROR
            assert pool.running
            # And the pool still commits follow-up work (the fire budget is
            # spent, so the next batch sails through).
            survivor = gateway.submit(sessions[peer_b], update_for(table_b, "ok"))
            assert pool.join_idle(timeout=30.0)
            assert survivor.status == STATUS_OK
        assert injector.events_by_kind() == {"commit.fail": 1}
        patient_id = int(table_b.split(":")[1])
        view = system.peer(peer_b).shared_table(table_b)
        assert view.get((patient_id,))["clinical_data"] == "ok"


class TestCommitPumpSurvival:
    def test_pump_records_error_and_keeps_pumping(self):
        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            gateway = SharingGateway(system)
            inject(system, FaultSpec(kind="commit.fail", max_fires=1))
            (peer_a, table_a), (peer_b, table_b) = sorted(tables.items())
            async with AsyncSharingGateway(gateway, seal_depth=1) as front:
                session_a = front.open_session(peer_a)
                session_b = front.open_session(peer_b)
                doomed = await asyncio.wait_for(
                    front.submit(session_a, update_for(table_a, "doomed")), 30)
                assert doomed.status == STATUS_ERROR
                assert "injected" in doomed.error
                # The pump survived the blow-up and recorded it (the future
                # resolves a beat before the pump's executor await returns,
                # so give the recording a moment).
                assert front.running
                while not front.commit_errors:
                    await asyncio.sleep(0.001)
                assert "injected" in front.commit_errors[0]
                survivor = await asyncio.wait_for(
                    front.submit(session_b, update_for(table_b, "ok")), 30)
                assert survivor.status == STATUS_OK
                assert front.running
            assert system.all_shared_tables_consistent()

        asyncio.run(asyncio.wait_for(scenario(), timeout=90))

    def test_drain_survives_repeated_failures(self):
        """drain() must terminate even when every queued batch blows up."""

        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            gateway = SharingGateway(system)
            inject(system, FaultSpec(kind="commit.fail", max_fires=10))
            async with AsyncSharingGateway(gateway, seal_depth=50,
                                           idle_timeout=5.0) as front:
                futures = []
                for peer, metadata_id in sorted(tables.items()):
                    session = front.open_session(peer)
                    futures.append(front.submit_nowait(
                        session, update_for(metadata_id, "doomed")))
                await front.drain()
                responses = await asyncio.gather(*futures)
                assert all(response.status == STATUS_ERROR for response in responses)
                assert front.running

        asyncio.run(asyncio.wait_for(scenario(), timeout=90))


class TestCachePatchFailure:
    def test_unpatchable_cached_view_is_dropped_not_torn(self):
        """If a commit's diff does not apply cleanly to one cached view (the
        entry drifted), that entry is dropped — never left half-patched —
        and the next read reloads from the installed tables."""
        system = build_system(patients=2)
        tables = tenant_tables(system)
        gateway = SharingGateway(system)
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        peer, metadata_id = sorted(tables.items())[0]
        patient_id = int(metadata_id.split(":")[1])
        assert gateway.submit(sessions[peer], ReadViewRequest(metadata_id)).ok
        cached = gateway.cache.peek(peer, metadata_id)
        assert cached is not None
        # Inject drift: the row the upcoming diff updates vanishes from the
        # cached copy, so the patch raises a diff conflict.
        cached.delete_by_key((patient_id,))
        response = gateway.submit(sessions[peer], update_for(metadata_id, "fresh"))
        gateway.drain()
        assert response.status == STATUS_OK
        # The poisoned entry is gone; a new read serves the committed value.
        assert gateway.cache.peek(peer, metadata_id) is not cached
        reread = gateway.submit(sessions[peer], ReadViewRequest(metadata_id))
        rows = {tuple([row["patient_id"]]): row for row in reread.payload["table"]["rows"]}
        assert rows[(patient_id,)]["clinical_data"] == "fresh"
