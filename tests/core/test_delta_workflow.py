"""The delta-propagation path of the update workflow.

The delta path (``SystemConfig.delta_propagation=True``, the default) must be
observably identical to the seed's full-recompute path: same traces, same
cascades, and byte-identical ``Table.fingerprint()`` for every table of every
peer.  Where a lens cannot translate a diff it must fall back, and the
sampled full-recompute oracle must catch a diverging delta.
"""

from dataclasses import replace

import pytest

from repro.config import ConsensusConfig, LedgerConfig, NetworkConfig, SystemConfig
from repro.core.scenario import (
    CARE_TABLE,
    DOCTOR_RESEARCHER_TABLE,
    PATIENT_DOCTOR_TABLE,
    STUDY_TABLE,
    build_extended_scenario,
    build_paper_scenario,
)
from repro.core.workflow import BatchGroup, EntryEdit
from repro.errors import SynchronizationError
from repro.workloads.topology import (
    HOSPITAL_TABLE_ID,
    TopologySpec,
    build_join_topology_system,
    patients_by_medication,
)


def _full_config() -> SystemConfig:
    return replace(SystemConfig.private_chain(), delta_propagation=False)


def _all_fingerprints(system):
    return {
        (peer.name, table_name): peer.database.table(table_name).fingerprint()
        for peer in system.peers
        for table_name in sorted(peer.database.table_names)
    }


def _run_mixed_workload(system):
    traces = [
        # Cascading dosage update: STUDY → doctor's D3 → CARE → patient.
        system.coordinator.update_shared_entry(
            "researcher", STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"}),
        # Entry-level create and delete through the CARE lenses.
        system.coordinator.create_shared_entry(
            "doctor", CARE_TABLE,
            {"patient_id": 500, "medication_name": "Aspirin",
             "clinical_data": "CliD-500", "dosage": "low dose"}),
        system.coordinator.update_shared_entry(
            "patient", CARE_TABLE, (500,), {"clinical_data": "CliD-500-v2"}),
        system.coordinator.delete_shared_entry("doctor", CARE_TABLE, (189,)),
    ]
    return traces


class TestDeltaEquivalence:
    def test_delta_and_full_paths_produce_identical_tables(self):
        delta_system = build_extended_scenario(SystemConfig.private_chain())
        full_system = build_extended_scenario(_full_config())
        assert delta_system.coordinator.delta_enabled
        assert not full_system.coordinator.delta_enabled

        delta_traces = _run_mixed_workload(delta_system)
        full_traces = _run_mixed_workload(full_system)

        for delta_trace, full_trace in zip(delta_traces, full_traces):
            assert delta_trace.succeeded and full_trace.succeeded
            assert delta_trace.cascaded_metadata_ids == full_trace.cascaded_metadata_ids
        assert _all_fingerprints(delta_system) == _all_fingerprints(full_system)

    def test_delta_path_actually_engages(self):
        system = build_extended_scenario(SystemConfig.private_chain())
        system.coordinator.update_shared_entry(
            "researcher", STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"})
        stats = system.server_app("doctor").manager.statistics
        assert stats["delta_put_invocations"] >= 1
        assert stats["delta_verifications"] >= 1
        # The doctor absorbed the STUDY change and re-shared CARE without a
        # single full put on the delta path.
        assert stats["put_invocations"] == 0

    def test_functional_projection_falls_back_to_full_path(self):
        system = build_paper_scenario()
        trace = system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-revised"})
        assert trace.succeeded
        # The doctor's D32 lens aligns by medication name (functional), so its
        # put went through the full path; the researcher's keyed D23 did not.
        doctor = system.server_app("doctor").manager.statistics
        researcher = system.server_app("researcher").manager.statistics
        assert doctor["delta_fallbacks"] >= 1
        assert doctor["put_invocations"] >= 1
        assert researcher["delta_put_invocations"] == 1
        assert researcher["put_invocations"] == 0
        assert system.peer("doctor").local_table("D3").get(188)[
            "mechanism_of_action"] == "MeA1-revised"

    def test_fallback_reflect_matches_full_result(self):
        system = build_paper_scenario()
        manager = system.server_app("doctor").manager
        stored = system.peer("doctor").shared_table(DOCTOR_RESEARCHER_TABLE)
        diff = stored.diff_for_update(("Ibuprofen",), {"mechanism_of_action": "X"})
        manager.apply_incoming_diff(DOCTOR_RESEARCHER_TABLE, diff)
        manager.reflect_shared_table_delta(DOCTOR_RESEARCHER_TABLE, diff)
        assert manager.statistics["delta_fallbacks"] >= 1
        # The functional put updated *every* D3 row of that medication.
        d3 = system.peer("doctor").local_table("D3")
        assert d3.get(188)["mechanism_of_action"] == "X"


class TestRejectedCascadeHealing:
    def test_rejected_cascade_leg_heals_on_next_propagation(self):
        """A rejected cascade leg leaves the dependent view behind its base
        table.  The forward delta translation only carries *new* changes, so
        the dependency check must fall back to exact diffing for that view
        until a leg succeeds — otherwise the missed rows would never reach
        the other peer."""
        system = build_extended_scenario(SystemConfig.private_chain())
        # The doctor (CARE's authority) temporarily loses dosage write
        # permission, so the CARE cascade leg of a STUDY update is rejected.
        system.coordinator.change_permission(
            "doctor", CARE_TABLE, "dosage", ["Patient"])
        trace = system.coordinator.update_shared_entry(
            "researcher", STUDY_TABLE, (188,), {"dosage": "missed dose"})
        assert trace.succeeded
        assert any(step.action == "cascade_rejected" for step in trace.steps)
        # The doctor's base table absorbed the change but the patient never
        # saw it.
        assert system.peer("doctor").local_table("D3").get(188)["dosage"] == "missed dose"
        assert system.peer("patient").local_table("D1").get(188)["dosage"] != "missed dose"

        # Permission restored; a later update of a *different* row cascades.
        system.coordinator.change_permission(
            "doctor", CARE_TABLE, "dosage", ["Doctor"])
        trace = system.coordinator.update_shared_entry(
            "researcher", STUDY_TABLE, (189,), {"dosage": "other dose"})
        assert trace.succeeded
        assert CARE_TABLE in trace.cascaded_metadata_ids
        # The healed cascade carried the missed row 188 along with row 189.
        patient_d1 = system.peer("patient").local_table("D1")
        assert patient_d1.get(188)["dosage"] == "missed dose"
        assert patient_d1.get(189)["dosage"] == "other dose"


class TestParallelRejectedLegBookkeeping:
    """A rejected leg of a *parallel* multi-leg cascade must leave exactly the
    sequential path's unhealed-view bookkeeping — the deterministic merge may
    not swallow the rejection — and heal identically on the next propagation."""

    @staticmethod
    def _fanout_config(parallel: bool) -> SystemConfig:
        return SystemConfig(
            ledger=LedgerConfig(
                consensus=ConsensusConfig(kind="poa", block_interval=1.0),
                max_transactions_per_block=16,
                consensus_shards=5,
            ),
            network=NetworkConfig(base_latency=0.002, latency_jitter=0.001),
            parallel_cascades=parallel,
        )

    def _run_scenario(self, parallel: bool) -> dict:
        system = build_join_topology_system(
            TopologySpec(patients=12, researchers=0, distinct_medications=3,
                         first_patient_id=1008),
            self._fanout_config(parallel))
        groups = patients_by_medication(system)
        # The largest medication group keeps the cascade multi-leg even after
        # one leg is rejected, so the parallel merge is actually exercised.
        medication, patient_ids = max(groups.items(), key=lambda kv: len(kv[1]))
        victim = patient_ids[0]
        victim_table = f"D13&D31:{victim}"
        coordinator = system.coordinator
        doctor_manager = system.server_app("doctor").manager

        def fan_out(value: str):
            result = coordinator.commit_entry_batch([BatchGroup(
                peer="hospital", metadata_id=HOSPITAL_TABLE_ID,
                edits=tuple(EntryEdit(op="update", key=(pid,),
                                      values={"mechanism_of_action": value})
                            for pid in patient_ids))])
            return result.traces[0]

        # Revoke the doctor's write on the victim agreement: that one cascade
        # leg of the hospital fan-out is rejected on-chain.
        coordinator.change_permission("doctor", victim_table,
                                      "mechanism_of_action", ["Patient"])
        missed_value = f"MeA-{medication}-missed"
        trace = fan_out(missed_value)
        assert trace.succeeded
        rejected = [step for step in trace.steps
                    if step.action == "cascade_rejected"]
        assert len(rejected) == 1
        # Every other leg landed at its patient; the victim missed the change.
        for pid in patient_ids:
            reflected = system.peer(f"patient-{pid}").local_table("D1").get(
                pid)["mechanism_of_action"]
            if pid == victim:
                assert reflected != missed_value
            else:
                assert reflected == missed_value
        # The rejected leg left the unhealed-view bookkeeping behind: the
        # stored view trails its base table until a leg succeeds again.
        unhealed_after_rejection = set(doctor_manager.unhealed_views)
        assert victim_table in unhealed_after_rejection
        assert not doctor_manager.pending_view_diff(victim_table).is_empty

        # Permission restored; the next fan-out heals the victim exactly as
        # the sequential path does (the exact diff carries the missed row).
        coordinator.change_permission("doctor", victim_table,
                                      "mechanism_of_action", ["Doctor"])
        healed_value = f"MeA-{medication}-healed"
        healed_trace = fan_out(healed_value)
        assert healed_trace.succeeded
        assert not any(step.action == "cascade_rejected"
                       for step in healed_trace.steps)
        assert victim_table not in doctor_manager.unhealed_views
        assert doctor_manager.pending_view_diff(victim_table).is_empty
        assert system.peer(f"patient-{victim}").local_table("D1").get(
            victim)["mechanism_of_action"] == healed_value
        assert system.all_shared_tables_consistent()
        return {
            "unhealed": unhealed_after_rejection,
            "rejected_legs": len(rejected),
            "fingerprints": _all_fingerprints(system),
        }

    def test_parallel_merge_matches_sequential_bookkeeping(self):
        parallel = self._run_scenario(parallel=True)
        sequential = self._run_scenario(parallel=False)
        assert parallel["rejected_legs"] == sequential["rejected_legs"] == 1
        assert parallel["unhealed"] == sequential["unhealed"]
        assert parallel["fingerprints"] == sequential["fingerprints"]


class TestSampledVerification:
    def test_refresh_oracle_detects_divergence(self):
        system = build_paper_scenario()
        manager = system.server_app("patient").manager
        manager.delta_verify_interval = 1
        stored = system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE)
        # A view diff that corresponds to no base-table change: applying it
        # desynchronises the stored view, which the full-get oracle catches.
        bogus = stored.diff_for_update((188,), {"dosage": "not derived from D1"})
        with pytest.raises(SynchronizationError):
            manager.refresh_shared_table_delta(PATIENT_DOCTOR_TABLE, bogus)

    def test_verification_interval_is_sampled(self):
        system = build_extended_scenario(SystemConfig.private_chain())
        manager = system.server_app("researcher").manager
        assert manager.delta_verify_interval == 16
        for round_index in range(3):
            system.coordinator.update_shared_entry(
                "researcher", STUDY_TABLE, (188,),
                {"dosage": f"round-{round_index}"})
        stats = manager.statistics
        # Only the first delta application was verified; the rest rode the
        # O(changed rows) path.
        assert stats["delta_put_invocations"] == 3
        assert stats["delta_verifications"] == 1

    def test_interval_zero_disables_verification(self):
        config = replace(SystemConfig.private_chain(), delta_verify_interval=0)
        system = build_extended_scenario(config)
        system.coordinator.update_shared_entry(
            "researcher", STUDY_TABLE, (188,), {"dosage": "unverified"})
        stats = system.server_app("researcher").manager.statistics
        assert stats["delta_put_invocations"] >= 1
        assert stats["delta_verifications"] == 0
