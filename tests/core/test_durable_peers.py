"""Durable peer databases wired through ``config.durability.state_dir``.

With a state dir configured, :meth:`MedicalDataSharingSystem.add_peer`
create-or-recovers each peer's database under ``<state_dir>/peers/<name>``
— no manual backend attachment — and the recovery leg is visible as a
``durability.recover`` span when a tracer is attached first.
"""

from __future__ import annotations

import pytest

from repro.config import DurabilityConfig, SystemConfig
from repro.core.system import MedicalDataSharingSystem
from repro.obs import Tracer
from repro.relational import Column, DataType, Schema


@pytest.fixture
def schema():
    return Schema(
        [Column("id", DataType.INTEGER, nullable=False),
         Column("value", DataType.STRING)],
        primary_key=("id",),
    )


def _config(tmp_path) -> SystemConfig:
    return SystemConfig(durability=DurabilityConfig(state_dir=str(tmp_path)))


class TestDurablePeerDatabases:
    def test_default_config_keeps_peer_databases_in_memory(self):
        system = MedicalDataSharingSystem()
        peer = system.add_peer("doctor", "Doctor")
        assert not peer.database.wal.durable

    def test_state_dir_makes_peer_databases_durable(self, tmp_path, schema):
        system = MedicalDataSharingSystem(_config(tmp_path))
        peer = system.add_peer("doctor", "Doctor")
        assert peer.database.wal.durable
        assert peer.database.name == "doctor_db"
        peer.database.create_table("notes", schema, [{"id": 1, "value": "a"}])
        assert system.sync_durability() == 1
        peer_dir = tmp_path / "peers" / "doctor"
        assert peer_dir.is_dir()
        assert any(peer_dir.iterdir()), "no durable state written"

    def test_sync_durability_counts_only_durable_peers(self, tmp_path):
        system = MedicalDataSharingSystem(_config(tmp_path))
        system.add_peer("doctor", "Doctor")
        system.add_peer("patient", "Patient")
        assert system.sync_durability() == 2
        assert MedicalDataSharingSystem().sync_durability() == 0

    def test_rows_survive_a_system_rebuild(self, tmp_path, schema):
        config = _config(tmp_path)
        first = MedicalDataSharingSystem(config)
        doctor = first.add_peer("doctor", "Doctor")
        doctor.database.create_table("notes", schema, [{"id": 1, "value": "a"}])
        doctor.database.insert("notes", {"id": 2, "value": "b"})
        first.sync_durability()

        rebuilt = MedicalDataSharingSystem(config)
        recovered = rebuilt.add_peer("doctor", "Doctor")
        table = recovered.database.table("notes")
        assert len(table) == 2
        assert table.get((2,))["value"] == "b"

    def test_peers_recover_independently(self, tmp_path, schema):
        config = _config(tmp_path)
        first = MedicalDataSharingSystem(config)
        first.add_peer("doctor", "Doctor").database.create_table(
            "notes", schema, [{"id": 1, "value": "doc"}])
        first.add_peer("patient", "Patient").database.create_table(
            "vitals", schema, [{"id": 1, "value": "pat"}])
        first.sync_durability()

        rebuilt = MedicalDataSharingSystem(config)
        doctor = rebuilt.add_peer("doctor", "Doctor")
        patient = rebuilt.add_peer("patient", "Patient")
        assert doctor.database.table_names == ("notes",)
        assert patient.database.table_names == ("vitals",)

    def test_recovery_emits_a_span_when_traced(self, tmp_path, schema):
        config = _config(tmp_path)
        first = MedicalDataSharingSystem(config)
        first.add_peer("doctor", "Doctor").database.create_table(
            "notes", schema, [{"id": 1, "value": "a"}])
        first.sync_durability()

        rebuilt = MedicalDataSharingSystem(config)
        tracer = Tracer(rebuilt.simulator.clock)
        rebuilt.attach_tracer(tracer)
        peer = rebuilt.add_peer("doctor", "Doctor")
        recover_spans = [span for span in tracer.spans()
                         if span.name == "durability.recover"]
        assert len(recover_spans) == 1
        (span,) = recover_spans
        assert span.attrs["peer"] == "doctor"
        assert span.attrs["tables"] == 1
        # The recovered backend keeps tracing WAL work afterwards.
        assert peer.database.wal.backend.tracer is tracer
        peer.database.insert("notes", {"id": 2, "value": "b"})
        rebuilt.sync_durability()
        names = {span.name for span in tracer.spans()}
        assert "wal.append" in names and "wal.fsync" in names
