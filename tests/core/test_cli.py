"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_scenario_command(self, capsys):
        assert main(["scenario"]) == 0
        output = capsys.readouterr().out
        assert "D1" in output and "D3" in output
        assert "shared tables consistent: True" in output

    def test_update_command(self, capsys):
        assert main(["update", "--interval", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "Workflow 'update'" in output
        assert "MeA1-revised" in output

    def test_cascade_command(self, capsys):
        assert main(["cascade", "--interval", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "two tablets every 12h" in output

    def test_audit_command(self, capsys):
        assert main(["audit", "--via", "researcher"]) == 0
        output = capsys.readouterr().out
        assert "integrity=OK" in output
        assert "PASSED" in output

    def test_throughput_command(self, capsys):
        assert main(["throughput", "--interval", "2", "--updates", "2"]) == 0
        output = capsys.readouterr().out
        assert "throughput (updates/s)" in output

    def test_exposure_command(self, capsys):
        assert main(["exposure"]) == 0
        output = capsys.readouterr().out
        assert "Researcher" in output and "unnecessary" in output

    def test_gateway_loadtest_command(self, capsys):
        assert main(["gateway-loadtest", "--tenants", "2", "--duration", "5",
                     "--interval", "1"]) == 0
        output = capsys.readouterr().out
        assert "Gateway load test" in output
        assert "cache hit rate" in output

    def test_gateway_loadtest_async_transport(self, capsys):
        import json

        assert main(["gateway-loadtest", "--tenants", "2", "--duration", "5",
                     "--interval", "1", "--transport", "async", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["transport"] == "async"
        stats = payload["metrics"]["async_transport"]
        assert stats["transport"] == "async"
        assert stats["commits"] >= 1
        assert stats["pending_futures"] == 0
        # Every accepted write resolved before the loadtest returned.
        assert payload["metrics"]["queue"]["outstanding_writes"] == 0

    def test_gateway_loadtest_async_pretty_output(self, capsys):
        assert main(["gateway-loadtest", "--tenants", "2", "--duration", "4",
                     "--interval", "1", "--transport", "async"]) == 0
        output = capsys.readouterr().out
        assert "pump seals (depth/deadline/idle/flush)" in output
        assert "admitted during commit" in output

    def test_gateway_loadtest_fleet_rejects_unsupported_flags(self, capsys):
        """--processes > 1 must refuse flags the fleet branch would silently
        drop, instead of running a configuration the user did not ask for."""
        assert main(["gateway-loadtest", "--processes", "2", "--tenants", "4",
                     "--duration", "2", "--replicas", "2",
                     "--latency-target", "0.5"]) == 2
        err = capsys.readouterr().err
        assert "--replicas" in err and "--latency-target" in err
        assert "not supported with --processes" in err

    def test_gateway_loadtest_rejects_unknown_transport(self):
        from repro.cli import run_gateway_loadtest

        import pytest

        with pytest.raises(ValueError):
            run_gateway_loadtest(tenants=2, duration=2, transport="carrier-pigeon")

    def test_json_flag_emits_machine_readable_output(self, capsys):
        import json

        assert main(["throughput", "--interval", "2", "--updates", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["updates_accepted"] == 2
        assert payload["throughput"] > 0

        assert main(["gateway-loadtest", "--tenants", "2", "--duration", "5",
                     "--interval", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tenants"] == 2
        assert "cache" in payload["metrics"]

        assert main(["update", "--interval", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["succeeded"] is True

        assert main(["scenario", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["consistent"] is True

        assert main(["audit", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["integrity"] is True and payload["spec_check_passed"] is True

        assert main(["cascade", "--interval", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cascaded"]

        assert main(["exposure", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "exposure_counts" in payload

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])
