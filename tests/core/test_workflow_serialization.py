"""Round-trip serialisation of workflow traces and steps.

The gateway embeds traces in its responses, so ``to_dict``/``from_dict``
must preserve every field exactly.
"""

from repro.core.scenario import DOCTOR_RESEARCHER_TABLE
from repro.core.workflow import EntryEdit, WorkflowStep, WorkflowTrace


class TestWorkflowStepRoundTrip:
    def test_round_trip_preserves_all_fields(self):
        step = WorkflowStep(index=3, actor="doctor", action="bx_put",
                            description="reflect", simulated_time=12.5,
                            block_number=7, data={"rows_changed": 2})
        rebuilt = WorkflowStep.from_dict(step.to_dict())
        assert rebuilt == step
        assert rebuilt.to_dict() == step.to_dict()

    def test_none_block_number_survives(self):
        step = WorkflowStep(index=1, actor="patient", action="local_edit",
                            description="edit", simulated_time=0.0)
        rebuilt = WorkflowStep.from_dict(step.to_dict())
        assert rebuilt.block_number is None


class TestWorkflowTraceRoundTrip:
    def test_synthetic_trace_round_trip(self):
        trace = WorkflowTrace(initiator="doctor", metadata_id="D13&D31",
                              operation="update", succeeded=True,
                              started_at=1.0, finished_at=9.5, blocks_created=2,
                              cascaded_metadata_ids=["CARE:D13&D31"])
        trace.add_step("doctor", "local_edit", "edit", 1.0, rows_changed=1)
        trace.add_step("doctor", "contract_request", "request", 3.0,
                       block_number=4, success=True)
        payload = trace.to_dict()
        rebuilt = WorkflowTrace.from_dict(payload)
        assert rebuilt.to_dict() == payload
        assert rebuilt.elapsed == trace.elapsed
        assert rebuilt.step_count == 2
        assert rebuilt.steps[1].block_number == 4
        assert rebuilt.cascaded_metadata_ids == ["CARE:D13&D31"]

    def test_failed_trace_round_trip(self):
        trace = WorkflowTrace(initiator="patient", metadata_id="D13&D31",
                              operation="update", succeeded=False,
                              error="permission denied", started_at=2.0,
                              finished_at=4.0)
        rebuilt = WorkflowTrace.from_dict(trace.to_dict())
        assert not rebuilt.succeeded
        assert rebuilt.error == "permission denied"

    def test_real_protocol_trace_round_trips(self, fresh_paper_system):
        trace = fresh_paper_system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        payload = trace.to_dict()
        rebuilt = WorkflowTrace.from_dict(payload)
        assert rebuilt.to_dict() == payload
        assert rebuilt.succeeded
        assert rebuilt.pretty() == trace.pretty()


class TestEntryEditRoundTrip:
    def test_round_trip_each_op(self):
        for edit in (EntryEdit(op="update", key=(188,), values={"dosage": "x"}),
                     EntryEdit(op="create", values={"patient_id": 190}),
                     EntryEdit(op="delete", key=(189,))):
            rebuilt = EntryEdit.from_dict(edit.to_dict())
            assert rebuilt == edit
