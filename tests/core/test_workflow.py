"""Tests for the CRUD protocol (Fig. 4) and the update workflow (Fig. 5)."""

import pytest

from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, PATIENT_DOCTOR_TABLE
from repro.errors import UpdateRejected


class TestReadOperation:
    def test_read_is_local_and_creates_no_blocks(self, fresh_paper_system):
        system = fresh_paper_system
        height_before = system.simulator.nodes[0].chain.height
        table = system.coordinator.read_shared_data("patient", PATIENT_DOCTOR_TABLE)
        assert len(table) == 1
        assert system.simulator.nodes[0].chain.height == height_before

    def test_read_returns_snapshot(self, fresh_paper_system):
        table = fresh_paper_system.coordinator.read_shared_data(
            "patient", PATIENT_DOCTOR_TABLE)
        table.update_by_key((188,), {"dosage": "scribbled on"})
        stored = fresh_paper_system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE)
        assert stored.get(188)["dosage"] == "one tablet every 4h"


class TestFig5UpdateWorkflow:
    """The researcher-initiated update of the medicine mechanism (Fig. 5)."""

    def test_researcher_update_propagates_to_doctor(self, fresh_paper_system):
        system = fresh_paper_system
        trace = system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-revised"},
        )
        assert trace.succeeded
        # Both peers' stored shared tables and base tables converge.
        assert system.shared_tables_consistent(DOCTOR_RESEARCHER_TABLE)
        assert system.peer("doctor").local_table("D3").get(188)[
            "mechanism_of_action"] == "MeA1-revised"
        assert system.peer("researcher").local_table("D2").get(("Ibuprofen",))[
            "mechanism_of_action"] == "MeA1-revised"
        assert system.views_consistent_with_sources()

    def test_trace_contains_the_protocol_steps(self, fresh_paper_system):
        trace = fresh_paper_system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-revised"},
        )
        actions = [step.action for step in trace.steps]
        for expected in ("local_edit", "contract_request", "notified", "fetch_data",
                         "bx_put", "acknowledge", "check_dependencies"):
            assert expected in actions
        assert trace.blocks_created >= 2  # request block + acknowledgement block
        assert trace.elapsed > 0
        assert "Workflow" in trace.pretty()

    def test_mechanism_change_does_not_cascade_to_patient(self, fresh_paper_system):
        system = fresh_paper_system
        patient_before = system.peer("patient").local_table("D1").snapshot()
        trace = system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-revised"},
        )
        assert trace.cascaded_metadata_ids == []
        assert system.peer("patient").local_table("D1") == patient_before

    def test_propagate_local_change_entry_point(self, fresh_paper_system):
        """Fig. 5 step 1: the researcher first updates D2, then propagates."""
        system = fresh_paper_system
        system.peer("researcher").database.update_by_key(
            "D2", ("Wellbutrin",), {"mechanism_of_action": "MeA2-revised"})
        trace = system.coordinator.propagate_local_change(
            "researcher", DOCTOR_RESEARCHER_TABLE)
        assert trace.succeeded
        assert trace.steps[0].action == "bx_get"
        assert system.peer("doctor").local_table("D3").get(189)[
            "mechanism_of_action"] == "MeA2-revised"

    def test_propagate_with_no_change_is_a_noop(self, fresh_paper_system):
        system = fresh_paper_system
        height_before = system.simulator.nodes[0].chain.height
        trace = system.coordinator.propagate_local_change(
            "researcher", DOCTOR_RESEARCHER_TABLE)
        assert trace.succeeded
        assert trace.blocks_created == 0
        assert system.simulator.nodes[0].chain.height == height_before

    def test_doctor_updates_dosage_for_patient(self, fresh_paper_system):
        """The paper's second example: the doctor modifies the dosage on D31."""
        system = fresh_paper_system
        trace = system.coordinator.update_shared_entry(
            "doctor", PATIENT_DOCTOR_TABLE, (188,),
            {"dosage": "two tablets every 6h"},
        )
        assert trace.succeeded
        assert system.peer("patient").local_table("D1").get(188)[
            "dosage"] == "two tablets every 6h"
        assert system.peer("doctor").local_table("D3").get(188)[
            "dosage"] == "two tablets every 6h"


class TestPermissionEnforcement:
    def test_patient_cannot_update_dosage(self, fresh_paper_system):
        system = fresh_paper_system
        with pytest.raises(UpdateRejected) as excinfo:
            system.coordinator.update_shared_entry(
                "patient", PATIENT_DOCTOR_TABLE, (188,),
                {"dosage": "whatever I want"},
            )
        # The rejection carries the trace and nothing changed anywhere.
        assert excinfo.value.trace.succeeded is False
        assert system.peer("patient").local_table("D1").get(188)[
            "dosage"] == "one tablet every 4h"
        assert system.peer("doctor").local_table("D3").get(188)[
            "dosage"] == "one tablet every 4h"
        assert system.all_shared_tables_consistent()

    def test_patient_may_update_clinical_data(self, fresh_paper_system):
        system = fresh_paper_system
        trace = system.coordinator.update_shared_entry(
            "patient", PATIENT_DOCTOR_TABLE, (188,),
            {"clinical_data": "CliD1-amended"},
        )
        assert trace.succeeded
        assert system.peer("doctor").local_table("D3").get(188)[
            "clinical_data"] == "CliD1-amended"

    def test_doctor_cannot_update_mechanism(self, fresh_paper_system):
        with pytest.raises(UpdateRejected):
            fresh_paper_system.coordinator.update_shared_entry(
                "doctor", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
                {"mechanism_of_action": "MeA1-doctored"},
            )

    def test_permission_change_enables_patient_dosage_update(self, fresh_paper_system):
        """The paper's example: the Doctor (authority) grants the Patient write
        access to "Dosage"; afterwards the Patient's update is accepted."""
        system = fresh_paper_system
        change = system.coordinator.change_permission(
            "doctor", PATIENT_DOCTOR_TABLE, "dosage", ["Doctor", "Patient"])
        assert change["new"] == ["Doctor", "Patient"]
        trace = system.coordinator.update_shared_entry(
            "patient", PATIENT_DOCTOR_TABLE, (188,),
            {"dosage": "one tablet every 8h"},
        )
        assert trace.succeeded
        assert system.peer("doctor").local_table("D3").get(188)[
            "dosage"] == "one tablet every 8h"

    def test_non_authority_cannot_change_permission(self, fresh_paper_system):
        with pytest.raises(UpdateRejected):
            fresh_paper_system.coordinator.change_permission(
                "patient", PATIENT_DOCTOR_TABLE, "dosage", ["Patient"])


class TestCreateDelete:
    def test_patient_cannot_create_entries(self, fresh_paper_system):
        with pytest.raises(UpdateRejected):
            fresh_paper_system.coordinator.create_shared_entry(
                "patient", PATIENT_DOCTOR_TABLE,
                {"patient_id": 191, "medication_name": "X",
                 "clinical_data": "C", "dosage": "d"},
            )

    def test_doctor_deletes_shared_entry(self, fresh_paper_system):
        system = fresh_paper_system
        trace = system.coordinator.delete_shared_entry(
            "doctor", PATIENT_DOCTOR_TABLE, (188,))
        assert trace.succeeded
        assert not system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE).contains_key(188)
        assert not system.peer("patient").local_table("D1").contains_key(188)
        # The doctor's base table dropped the row too (delete policy).
        assert not system.peer("doctor").local_table("D3").contains_key(188)
        # The researcher's view of medications is unaffected by this agreement.
        assert system.peer("researcher").local_table("D2").contains_key(("Ibuprofen",))


class TestSerializationOfConcurrentUpdates:
    def test_second_update_blocked_until_acknowledged(self, fresh_paper_system):
        """§III-B: a new update on the same shared table is only accepted once
        every sharing peer has fetched the previous one (which the coordinator
        guarantees), so two sequential updates both succeed and the contract
        history shows them in separate blocks."""
        system = fresh_paper_system
        first = system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        second = system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v3"})
        assert first.succeeded and second.succeeded
        history = system.server_app("doctor").query_contract(
            "update_history", metadata_id=DOCTOR_RESEARCHER_TABLE)
        blocks = [record["block_number"] for record in history]
        assert len(blocks) == len(set(blocks)) == 2
        assert system.peer("doctor").local_table("D3").get(188)[
            "mechanism_of_action"] == "MeA1-v3"

    def test_raw_conflicting_requests_land_in_different_blocks(self, fresh_paper_system):
        """Submitting two raw update requests for the same shared table before
        mining forces the miner to put them in different blocks; the second is
        then rejected by the contract because the first was not acknowledged."""
        system = fresh_paper_system
        researcher_app = system.server_app("researcher")
        doctor_app = system.server_app("doctor")
        tx1 = researcher_app.build_contract_call(
            "request_update",
            {"metadata_id": DOCTOR_RESEARCHER_TABLE,
             "changed_attributes": ["mechanism_of_action"], "diff_hash": "h1"})
        tx2 = doctor_app.build_contract_call(
            "request_update",
            {"metadata_id": DOCTOR_RESEARCHER_TABLE,
             "changed_attributes": ["medication_name"], "diff_hash": "h2"})
        system.simulator.submit_transaction(researcher_app.node.name, tx1)
        system.simulator.submit_transaction(doctor_app.node.name, tx2)
        blocks = system.simulator.mine()
        assert len(blocks) == 2
        assert all(len(block.transactions) == 1 for block in blocks)
        receipt1 = researcher_app.node.chain.receipt(tx1.tx_hash)
        receipt2 = researcher_app.node.chain.receipt(tx2.tx_hash)
        assert receipt1.success
        assert not receipt2.success  # blocked: the doctor had not fetched update 1
