"""Tests for the record schemas (Fig. 1) and sharing agreements (Fig. 3)."""

import pytest

from repro.bx.dsl import ViewSpec
from repro.core.records import (
    ATTRIBUTE_LABELS,
    FULL_RECORD_COLUMNS,
    attribute_ids,
    doctor_schema,
    full_record_schema,
    patient_schema,
    researcher_schema,
    schema_for_attributes,
)
from repro.core.sharing import PeerViewDefinition, SharingAgreement
from repro.errors import AgreementError


class TestRecordSchemas:
    def test_full_record_has_seven_attributes(self):
        schema = full_record_schema()
        assert len(schema) == 7
        assert schema.column_names == FULL_RECORD_COLUMNS
        assert schema.primary_key == ("patient_id",)

    def test_attribute_labels_match_paper(self):
        assert ATTRIBUTE_LABELS["a0"] == "patient_id"
        assert ATTRIBUTE_LABELS["a4"] == "dosage"
        assert ATTRIBUTE_LABELS["a5"] == "mechanism_of_action"
        assert ATTRIBUTE_LABELS["a6"] == "mode_of_action"

    def test_patient_schema_is_a0_to_a4(self):
        assert patient_schema().column_names == (
            "patient_id", "medication_name", "clinical_data", "address", "dosage")

    def test_researcher_schema_is_a1_a5_a6(self):
        assert researcher_schema().column_names == (
            "medication_name", "mechanism_of_action", "mode_of_action")
        assert researcher_schema().primary_key == ("medication_name",)

    def test_doctor_schema_matches_fig1(self):
        assert set(doctor_schema().column_names) == {
            "patient_id", "medication_name", "clinical_data", "dosage",
            "mechanism_of_action"}

    def test_local_schemas_are_projections_of_full_record(self):
        full = full_record_schema()
        assert patient_schema().is_projection_of(full)
        assert doctor_schema().is_projection_of(full)
        assert researcher_schema().is_projection_of(full)

    def test_schema_for_attribute_ids(self):
        schema = schema_for_attributes(["a0", "a4"], primary_key=["a0"])
        assert schema.column_names == ("patient_id", "dosage")
        assert schema.primary_key == ("patient_id",)

    def test_attribute_ids_round_trip(self):
        assert attribute_ids(("patient_id", "dosage")) == ("a0", "a4")


def _specs():
    doctor_spec = ViewSpec(source_table="D3", view_name="D31",
                           columns=("patient_id", "dosage"), view_key=("patient_id",))
    patient_spec = ViewSpec(source_table="D1", view_name="D13",
                            columns=("patient_id", "dosage"), view_key=("patient_id",))
    return doctor_spec, patient_spec


class TestSharingAgreement:
    def _agreement(self, **overrides):
        doctor_spec, patient_spec = _specs()
        payload = dict(
            metadata_id="D13&D31",
            peer_a="doctor", role_a="Doctor", spec_a=doctor_spec,
            peer_b="patient", role_b="Patient", spec_b=patient_spec,
            write_permission={"dosage": ("Doctor",), "patient_id": ("Doctor",)},
            authority_role="Doctor",
        )
        payload.update(overrides)
        return SharingAgreement.build(**payload)

    def test_basic_accessors(self):
        agreement = self._agreement()
        assert agreement.peers == ("doctor", "patient")
        assert agreement.counterparty_of("doctor") == "patient"
        assert agreement.counterparty_of("patient") == "doctor"
        assert agreement.view_name_for("doctor") == "D31"
        assert agreement.view_name_for("patient") == "D13"
        assert agreement.role_of("patient") == "Patient"
        assert agreement.roles == {"doctor": "Doctor", "patient": "Patient"}
        assert agreement.shared_columns == ("patient_id", "dosage")

    def test_permission_helpers(self):
        agreement = self._agreement()
        assert agreement.can_role_write("Doctor", "dosage")
        assert not agreement.can_role_write("Patient", "dosage")
        assert agreement.writers_of("dosage") == ("Doctor",)
        assert agreement.writable_columns("Doctor") == ("dosage", "patient_id")

    def test_counterparty_of_unknown_peer(self):
        with pytest.raises(AgreementError):
            self._agreement().counterparty_of("researcher")

    def test_initiator_must_be_a_peer(self):
        with pytest.raises(AgreementError):
            self._agreement(initiator="researcher")

    def test_authority_must_be_a_role(self):
        with pytest.raises(AgreementError):
            self._agreement(authority_role="Admin")

    def test_permission_attribute_must_be_shared(self):
        with pytest.raises(AgreementError):
            self._agreement(write_permission={"address": ("Doctor",)})

    def test_permission_role_must_exist(self):
        with pytest.raises(AgreementError):
            self._agreement(write_permission={"dosage": ("Researcher",)})

    def test_views_must_expose_same_columns(self):
        doctor_spec, _ = _specs()
        bad_patient_spec = ViewSpec(source_table="D1", view_name="D13",
                                    columns=("patient_id", "clinical_data"),
                                    view_key=("patient_id",))
        with pytest.raises(AgreementError):
            SharingAgreement.build(
                metadata_id="X",
                peer_a="doctor", role_a="Doctor", spec_a=doctor_spec,
                peer_b="patient", role_b="Patient", spec_b=bad_patient_spec,
                write_permission={}, authority_role="Doctor",
            )

    def test_peers_must_be_distinct(self):
        doctor_spec, patient_spec = _specs()
        with pytest.raises(AgreementError):
            SharingAgreement(
                metadata_id="X",
                definitions=(
                    PeerViewDefinition("doctor", "Doctor", doctor_spec),
                    PeerViewDefinition("doctor", "Doctor", patient_spec),
                ),
                write_permission={},
                authority_role="Doctor",
                initiator="doctor",
            )

    def test_round_trip_dict(self):
        agreement = self._agreement()
        restored = SharingAgreement.from_dict(agreement.to_dict())
        assert restored.metadata_id == agreement.metadata_id
        assert restored.peers == agreement.peers
        assert restored.write_permission == agreement.write_permission
        assert restored.definition_for("doctor").view_spec.columns == ("patient_id", "dosage")

    def test_rename_gives_common_shared_columns(self):
        doctor_spec = ViewSpec(source_table="D3", view_name="D31",
                               columns=("patient_id", "dosage"), view_key=("patient_id",),
                               rename={"dosage": "dose"})
        patient_spec = ViewSpec(source_table="D1", view_name="D13",
                                columns=("patient_id", "dose"), view_key=("patient_id",))
        agreement = SharingAgreement.build(
            metadata_id="X",
            peer_a="doctor", role_a="Doctor", spec_a=doctor_spec,
            peer_b="patient", role_b="Patient", spec_b=patient_spec,
            write_permission={"dose": ("Doctor",)},
            authority_role="Doctor",
        )
        assert set(agreement.shared_columns) == {"patient_id", "dose"}
