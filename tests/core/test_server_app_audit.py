"""Tests for the server app (notifications, channels) and the audit trail."""

import pytest

from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, PATIENT_DOCTOR_TABLE
from repro.errors import SharingError


class TestServerApp:
    def test_notifications_delivered_only_to_sharing_peers(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        # The workflow already consumed the doctor's notification; the patient,
        # who is not a sharing peer of D23&D32, must have received nothing.
        assert system.server_app("patient").notifications == ()
        # The researcher (the requester) is not notified about its own update.
        assert all(n.metadata_id != DOCTOR_RESEARCHER_TABLE
                   for n in system.server_app("researcher").notifications)

    def test_pop_notifications_filters_by_table(self, fresh_paper_system):
        system = fresh_paper_system
        app = system.server_app("doctor")
        tx = system.server_app("researcher").build_contract_call(
            "request_update",
            {"metadata_id": DOCTOR_RESEARCHER_TABLE,
             "changed_attributes": ["mechanism_of_action"], "diff_hash": "h"})
        system.simulator.submit_transaction(system.server_app("researcher").node.name, tx)
        system.simulator.mine()
        assert len(app.pop_notifications(PATIENT_DOCTOR_TABLE)) == 0
        popped = app.pop_notifications(DOCTOR_RESEARCHER_TABLE)
        assert len(popped) == 1
        assert popped[0].requester_role == "Researcher"
        assert app.pop_notifications() == []

    def test_can_write_probe(self, paper_system):
        assert paper_system.server_app("patient").can_write(
            PATIENT_DOCTOR_TABLE, "clinical_data")
        assert not paper_system.server_app("patient").can_write(
            PATIENT_DOCTOR_TABLE, "dosage")

    def test_contract_call_requires_configured_address(self):
        from repro.core.system import MedicalDataSharingSystem

        system = MedicalDataSharingSystem()
        system.add_peer("doctor", "Doctor")
        with pytest.raises(SharingError):
            system.server_app("doctor").build_contract_call("get_metadata", {})
        with pytest.raises(SharingError):
            system.server_app("doctor").query_contract("list_metadata_ids")

    def test_serve_shared_data_falls_back_to_snapshot(self, fresh_paper_system):
        system = fresh_paper_system
        transfer = system.server_app("doctor").serve_shared_data(
            PATIENT_DOCTOR_TABLE, "patient", mode="diff")
        assert transfer.kind == "snapshot"  # no outgoing diff recorded yet

    def test_receive_shared_data_rejects_requests(self, fresh_paper_system):
        system = fresh_paper_system
        app = system.server_app("patient")
        transfer = app.request_shared_data(PATIENT_DOCTOR_TABLE, "doctor")
        with pytest.raises(SharingError):
            app.receive_shared_data(PATIENT_DOCTOR_TABLE, transfer)

    def test_channel_transfer_round_trip(self, fresh_paper_system):
        system = fresh_paper_system
        doctor_app = system.server_app("doctor")
        patient_app = system.server_app("patient")
        doctor_app.peer.shared_table(PATIENT_DOCTOR_TABLE).update_by_key(
            (188,), {"dosage": "offline change"})
        transfer = doctor_app.serve_shared_data(PATIENT_DOCTOR_TABLE, "patient",
                                                mode="snapshot")
        patient_app.receive_shared_data(PATIENT_DOCTOR_TABLE, transfer)
        assert system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE).get(188)[
            "dosage"] == "offline change"


class TestAuditTrail:
    def test_records_reconstructed_from_any_node(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        system.coordinator.update_shared_entry(
            "doctor", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "updated dosage"})
        for observer in ("doctor", "patient", "researcher"):
            trail = system.audit_trail(via_peer=observer)
            records = trail.records()
            assert len(records) == 2
            assert records[0].requester_role == "Researcher"
            assert records[1].requester_role == "Doctor"
            assert trail.verify_integrity()
            assert all(trail.verify_record_inclusion(record) for record in records)

    def test_records_filter_by_table(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        trail = system.audit_trail()
        assert len(trail.records(DOCTOR_RESEARCHER_TABLE)) == 1
        assert len(trail.records(PATIENT_DOCTOR_TABLE)) == 0

    def test_permission_changes_recorded(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.change_permission(
            "doctor", PATIENT_DOCTOR_TABLE, "dosage", ["Doctor", "Patient"])
        trail = system.audit_trail()
        changes = trail.permission_changes(PATIENT_DOCTOR_TABLE)
        assert len(changes) == 1
        assert changes[0]["new"] == ["Doctor", "Patient"]

    def test_updates_by_peer(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        trail = system.audit_trail()
        counts = trail.updates_by_peer()
        assert counts[system.peer("researcher").address] == 1

    def test_tampering_detected(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        trail = system.audit_trail(via_peer="patient")
        record = trail.records()[0]
        # Tamper with the patient node's replica of the block carrying the update.
        block = trail.node.chain.block_by_number(record.block_number)
        block.header.timestamp += 999
        assert not trail.verify_integrity()
        assert record.block_number in trail.tampered_blocks()
        assert not trail.verify_record_inclusion(record)

    def test_audit_requires_deployed_contract(self):
        from repro.core.system import MedicalDataSharingSystem

        system = MedicalDataSharingSystem()
        system.add_peer("doctor", "Doctor")
        with pytest.raises(SharingError):
            system.audit_trail()

    def test_pretty_report(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        report = system.audit_trail().pretty()
        assert "integrity=OK" in report
        assert "Researcher" in report

    def test_spec_checker_passes_on_real_history(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        system.coordinator.change_permission(
            "doctor", PATIENT_DOCTOR_TABLE, "dosage", ["Doctor", "Patient"])
        system.coordinator.update_shared_entry(
            "patient", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "patient-chosen"})
        result = system.check_contract_specification()
        assert result.passed, result.violations
