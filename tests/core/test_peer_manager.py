"""Tests for peers and the database manager (BX execution per peer)."""

import pytest

from repro.bx.dsl import ViewSpec
from repro.core.manager import DatabaseManager
from repro.core.peer import Peer
from repro.core.records import doctor_schema
from repro.core.sharing import SharingAgreement
from repro.core.scenario import PAPER_RECORDS
from repro.errors import AgreementError, SynchronizationError
from repro.relational.predicates import Eq


def _doctor_rows():
    columns = ("patient_id", "medication_name", "clinical_data", "dosage",
               "mechanism_of_action")
    return [{c: record[c] for c in columns} for record in PAPER_RECORDS]


def _agreement(metadata_id="D13&D31", columns=("patient_id", "medication_name",
                                               "clinical_data", "dosage")):
    doctor_spec = ViewSpec(source_table="D3", view_name="D31", columns=columns,
                           view_key=("patient_id",), where=Eq("patient_id", 188))
    patient_spec = ViewSpec(source_table="D1", view_name="D13", columns=columns,
                            view_key=("patient_id",))
    return SharingAgreement.build(
        metadata_id=metadata_id,
        peer_a="doctor", role_a="Doctor", spec_a=doctor_spec,
        peer_b="patient", role_b="Patient", spec_b=patient_spec,
        write_permission={column: ("Doctor",) for column in columns},
        authority_role="Doctor",
    )


def _researcher_agreement():
    columns = ("medication_name", "mechanism_of_action")
    doctor_spec = ViewSpec(source_table="D3", view_name="D32", columns=columns,
                           view_key=("medication_name",))
    researcher_spec = ViewSpec(source_table="D2", view_name="D23", columns=columns,
                               view_key=("medication_name",))
    return SharingAgreement.build(
        metadata_id="D23&D32",
        peer_a="doctor", role_a="Doctor", spec_a=doctor_spec,
        peer_b="researcher", role_b="Researcher", spec_b=researcher_spec,
        write_permission={"medication_name": ("Doctor", "Researcher"),
                          "mechanism_of_action": ("Researcher",)},
        authority_role="Researcher",
    )


@pytest.fixture
def doctor_peer():
    peer = Peer("doctor", "Doctor")
    peer.database.create_table("D3", doctor_schema(), _doctor_rows())
    return peer


class TestPeer:
    def test_identity_is_deterministic(self):
        assert Peer("doctor", "Doctor").address == Peer("doctor", "Doctor").address
        assert Peer("doctor", "Doctor").address != Peer("patient", "Patient").address

    def test_join_agreement_materialises_shared_table(self, doctor_peer):
        doctor_peer.join_agreement(_agreement())
        shared = doctor_peer.shared_table("D13&D31")
        assert shared.name == "D31"
        assert len(shared) == 1  # only patient 188
        assert shared.schema.column_names == ("patient_id", "medication_name",
                                               "clinical_data", "dosage")

    def test_join_agreement_requires_source_table(self):
        peer = Peer("doctor", "Doctor")
        with pytest.raises(AgreementError):
            peer.join_agreement(_agreement())

    def test_join_registers_bx_program(self, doctor_peer):
        doctor_peer.join_agreement(_agreement())
        program = doctor_peer.bx_program("D13&D31")
        assert program.source_table == "D3"
        assert program.view_name == "D31"
        assert "BX-D31" in doctor_peer.bx

    def test_agreements_sharing_source(self, doctor_peer):
        doctor_peer.join_agreement(_agreement())
        doctor_peer.join_agreement(_researcher_agreement())
        assert doctor_peer.agreements_sharing_source("D3") == ("D13&D31", "D23&D32")

    def test_unknown_agreement_lookups(self, doctor_peer):
        with pytest.raises(AgreementError):
            doctor_peer.agreement("NOPE")
        with pytest.raises(AgreementError):
            doctor_peer.bx_program("NOPE")

    def test_exposure_summary(self, doctor_peer):
        doctor_peer.join_agreement(_agreement())
        summary = doctor_peer.exposure_summary()
        assert summary["D13&D31"] == ("patient_id", "medication_name",
                                      "clinical_data", "dosage")


class TestDatabaseManager:
    @pytest.fixture
    def manager(self, doctor_peer):
        doctor_peer.join_agreement(_agreement())
        doctor_peer.join_agreement(_researcher_agreement())
        return DatabaseManager(doctor_peer)

    def test_derive_view_runs_get(self, manager):
        view = manager.derive_view("D23&D32")
        assert len(view) == 2
        assert manager.statistics["get_invocations"] == 1

    def test_pending_diff_empty_when_consistent(self, manager):
        assert manager.pending_view_diff("D23&D32").is_empty

    def test_refresh_after_source_change(self, manager, doctor_peer):
        doctor_peer.database.update_by_key("D3", (188,), {"dosage": "changed"})
        diff = manager.refresh_shared_table("D13&D31")
        assert len(diff) == 1
        assert doctor_peer.shared_table("D13&D31").get(188)["dosage"] == "changed"
        # A second refresh is a no-op.
        assert manager.refresh_shared_table("D13&D31").is_empty

    def test_reflect_after_view_change(self, manager, doctor_peer):
        shared = doctor_peer.shared_table("D23&D32")
        shared.update_by_key(("Ibuprofen",), {"mechanism_of_action": "MeA1-new"})
        diff = manager.reflect_shared_table("D23&D32")
        assert len(diff) == 1
        assert doctor_peer.local_table("D3").get(188)["mechanism_of_action"] == "MeA1-new"
        assert manager.statistics["put_invocations"] == 1

    def test_reflect_detects_law_violation(self, doctor_peer):
        doctor_peer.join_agreement(_researcher_agreement())
        manager = DatabaseManager(doctor_peer, check_laws=True)
        # Swap the registered BX program for an ill-behaved lens whose put
        # ignores the view: PutGet cannot hold, so the manager must refuse to
        # install the new source.
        honest = doctor_peer.bx_program("D23&D32")

        class _BrokenLens:
            name = "broken"

            def get(self, source):
                return honest.lens.get(source)

            def put(self, source, view):
                return source.snapshot()

        doctor_peer.bx.register("BX-D32", source_table="D3", view_name="D32",
                                lens=_BrokenLens())
        shared = doctor_peer.shared_table("D23&D32")
        shared.update_by_key(("Ibuprofen",), {"mechanism_of_action": "MeA1-broken"})
        before = doctor_peer.local_table("D3").snapshot()
        with pytest.raises(SynchronizationError):
            manager.reflect_shared_table("D23&D32")
        assert doctor_peer.local_table("D3") == before

    def test_dependent_agreements(self, manager):
        assert manager.dependent_agreements("D23&D32") == ("D13&D31",)
        assert manager.dependent_agreements("D13&D31") == ("D23&D32",)

    def test_changed_dependents_detects_overlap(self, manager, doctor_peer):
        # A medication-name change through D31 also affects D32 (both project a1).
        shared = doctor_peer.shared_table("D13&D31")
        shared.update_by_key((188,), {"medication_name": "Naproxen"})
        manager.reflect_shared_table("D13&D31")
        changed = manager.changed_dependents("D13&D31")
        assert "D23&D32" in changed
        assert not changed["D23&D32"].is_empty

    def test_changed_dependents_ignores_non_overlapping_change(self, manager, doctor_peer):
        # A mechanism-of-action change does not touch D31 (a0, a1, a2, a4).
        shared = doctor_peer.shared_table("D23&D32")
        shared.update_by_key(("Ibuprofen",), {"mechanism_of_action": "MeA1-new"})
        manager.reflect_shared_table("D23&D32")
        assert manager.changed_dependents("D23&D32") == {}

    def test_apply_incoming_diff(self, manager, doctor_peer):
        from repro.relational.diff import diff_tables

        stored = doctor_peer.shared_table("D23&D32")
        target = stored.snapshot()
        target.update_by_key(("Ibuprofen",), {"mechanism_of_action": "MeA1-received"})
        manager.apply_incoming_diff("D23&D32", diff_tables(stored, target))
        assert doctor_peer.shared_table("D23&D32").get(("Ibuprofen",))[
            "mechanism_of_action"] == "MeA1-received"

    def test_replace_shared_table(self, manager, doctor_peer):
        snapshot = doctor_peer.shared_table("D23&D32").snapshot()
        snapshot.update_by_key(("Wellbutrin",), {"mechanism_of_action": "MeA2-new"})
        manager.replace_shared_table("D23&D32", snapshot)
        assert doctor_peer.shared_table("D23&D32").get(("Wellbutrin",))[
            "mechanism_of_action"] == "MeA2-new"
