"""Tests for the Fig. 1 scenario builder and the system assembly (Fig. 2)."""

import pytest

from repro.config import SystemConfig
from repro.core.records import patient_schema
from repro.core.scenario import (
    DOCTOR_RESEARCHER_TABLE,
    PAPER_RECORDS,
    PATIENT_DOCTOR_TABLE,
    build_paper_scenario,
    build_scaled_scenario,
    doctor_researcher_agreement,
    patient_doctor_agreement,
)
from repro.core.system import MedicalDataSharingSystem
from repro.errors import AgreementError, SharingError
from repro.workloads.generator import MedicalRecordGenerator


class TestFig1DataDistribution:
    """The scenario must reproduce the Fig. 1 tables exactly."""

    def test_peers_and_roles(self, paper_system):
        assert paper_system.peer_names == ("doctor", "patient", "researcher")
        assert paper_system.peer("doctor").role == "Doctor"
        assert paper_system.peer("researcher").role == "Researcher"

    def test_patient_d1_contents(self, paper_system):
        d1 = paper_system.peer("patient").local_table("D1")
        assert len(d1) == 1
        row = d1.get(188)
        assert row["address"] == "Sapporo"
        assert row["dosage"] == "one tablet every 4h"

    def test_doctor_d3_contents(self, paper_system):
        d3 = paper_system.peer("doctor").local_table("D3")
        assert len(d3) == 2
        assert d3.get(189)["mechanism_of_action"] == "MeA2"
        assert "address" not in d3.schema.column_names
        assert "mode_of_action" not in d3.schema.column_names

    def test_researcher_d2_contents(self, paper_system):
        d2 = paper_system.peer("researcher").local_table("D2")
        assert len(d2) == 2
        assert d2.get(("Ibuprofen",))["mode_of_action"] == "MoA1"

    def test_shared_d13_equals_d31(self, paper_system):
        assert paper_system.shared_tables_consistent(PATIENT_DOCTOR_TABLE)
        d13 = paper_system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE)
        d31 = paper_system.peer("doctor").shared_table(PATIENT_DOCTOR_TABLE)
        assert d13.name == "D13" and d31.name == "D31"
        assert len(d13) == 1 and len(d31) == 1
        assert set(d13.schema.column_names) == {"patient_id", "medication_name",
                                                "clinical_data", "dosage"}

    def test_shared_d23_equals_d32(self, paper_system):
        assert paper_system.shared_tables_consistent(DOCTOR_RESEARCHER_TABLE)
        d23 = paper_system.peer("researcher").shared_table(DOCTOR_RESEARCHER_TABLE)
        assert len(d23) == 2
        assert set(d23.schema.column_names) == {"medication_name", "mechanism_of_action"}

    def test_views_consistent_with_sources(self, paper_system):
        assert paper_system.views_consistent_with_sources()

    def test_contract_metadata_matches_fig3(self, paper_system):
        app = paper_system.server_app("patient")
        metadata = app.query_contract("get_metadata", metadata_id=PATIENT_DOCTOR_TABLE)
        assert metadata["authority_role"] == "Doctor"
        assert set(metadata["write_permission"]["clinical_data"]) == {"Patient", "Doctor"}
        assert metadata["write_permission"]["dosage"] == ["Doctor"]
        metadata2 = app.query_contract("get_metadata", metadata_id=DOCTOR_RESEARCHER_TABLE)
        assert metadata2["authority_role"] == "Researcher"
        assert metadata2["write_permission"]["mechanism_of_action"] == ["Researcher"]

    def test_every_node_agrees_on_state(self, paper_system):
        assert paper_system.simulator.in_consensus()

    def test_agreement_lookup(self, paper_system):
        agreement = paper_system.agreement(PATIENT_DOCTOR_TABLE)
        assert agreement.peers == ("doctor", "patient")
        with pytest.raises(AgreementError):
            paper_system.agreement("NOPE")


class TestScaledScenario:
    def test_scaled_records(self):
        generator = MedicalRecordGenerator(seed=5, first_patient_id=300)
        records = [PAPER_RECORDS[0], PAPER_RECORDS[1]] + generator.records(8)
        system = build_scaled_scenario(records=records)
        assert len(system.peer("doctor").local_table("D3")) == 10
        assert system.all_shared_tables_consistent()

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            build_scaled_scenario(records=())

    def test_public_chain_configuration(self):
        system = build_paper_scenario(config=SystemConfig.public_chain(block_interval=12.0,
                                                                       difficulty=1))
        assert system.simulator.clock.now() > 0
        assert system.all_shared_tables_consistent()


class TestSystemAssembly:
    def test_duplicate_peer_rejected(self):
        system = MedicalDataSharingSystem()
        system.add_peer("doctor", "Doctor")
        with pytest.raises(SharingError):
            system.add_peer("doctor", "Doctor")

    def test_unknown_peer_lookup(self):
        system = MedicalDataSharingSystem()
        with pytest.raises(SharingError):
            system.peer("ghost")
        with pytest.raises(SharingError):
            system.server_app("ghost")

    def test_sharing_requires_deployed_contracts(self):
        system = MedicalDataSharingSystem()
        system.add_peer("doctor", "Doctor")
        system.add_peer("patient", "Patient")
        with pytest.raises(SharingError):
            system.establish_sharing(patient_doctor_agreement())

    def test_contracts_deploy_once(self, fresh_paper_system):
        with pytest.raises(SharingError):
            fresh_paper_system.deploy_contracts("doctor")

    def test_duplicate_agreement_rejected(self, fresh_paper_system):
        with pytest.raises(AgreementError):
            fresh_paper_system.establish_sharing(patient_doctor_agreement())

    def test_agreement_with_unknown_peer_rejected(self):
        system = MedicalDataSharingSystem()
        system.add_peer("doctor", "Doctor")
        doctor = system.peer("doctor")
        from repro.core.records import doctor_schema
        doctor.database.create_table("D3", doctor_schema(), [])
        system.deploy_contracts("doctor")
        with pytest.raises(AgreementError):
            system.establish_sharing(patient_doctor_agreement())

    def test_statistics_structure(self, paper_system):
        stats = paper_system.statistics()
        assert stats["peers"] == 3
        assert stats["agreements"] == 2
        assert "doctor" in stats["bx_invocations"]
        assert stats["chain_height"] > 0

    def test_registry_contract_records_agreements(self, paper_system):
        app = paper_system.server_app("doctor")
        listing = app.node.static_call(paper_system.registry_address, "list_agreements")
        assert listing == [PATIENT_DOCTOR_TABLE, DOCTOR_RESEARCHER_TABLE]

    def test_peer_key_material_distinct(self, paper_system):
        addresses = {peer.address for peer in paper_system.peers}
        assert len(addresses) == 3
