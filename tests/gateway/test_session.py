"""Sessions: authentication, contract-backed authorisation, rate limiting."""

import pytest

from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, PATIENT_DOCTOR_TABLE
from repro.errors import SessionError, SharingError
from repro.gateway.requests import (
    ReadViewRequest,
    UpdateEntryRequest,
    STATUS_OK,
    STATUS_THROTTLED,
)
from repro.gateway.session import TokenBucket
from repro.ledger.clock import SimClock


class TestSessionAuth:
    def test_open_session_requires_known_peer(self, paper_gateway):
        with pytest.raises(SharingError):
            paper_gateway.open_session("mallory")

    def test_member_may_read_its_shared_table(self, paper_gateway):
        session = paper_gateway.open_session("patient")
        session.authorize(ReadViewRequest(PATIENT_DOCTOR_TABLE))  # no raise

    def test_non_party_read_rejected(self, paper_gateway):
        session = paper_gateway.open_session("patient")
        with pytest.raises(SessionError):
            session.authorize(ReadViewRequest(DOCTOR_RESEARCHER_TABLE))

    def test_write_permission_checked_against_contract(self, paper_gateway):
        """The Fig. 3 matrix: the patient may write clinical_data but not dosage."""
        session = paper_gateway.open_session("patient")
        session.authorize(UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"clinical_data": "CliD1-v2"}))
        with pytest.raises(SessionError):
            session.authorize(UpdateEntryRequest(
                PATIENT_DOCTOR_TABLE, (188,), {"dosage": "double"}))

    def test_unknown_attribute_rejected(self, paper_gateway):
        session = paper_gateway.open_session("doctor")
        with pytest.raises(SessionError):
            session.authorize(UpdateEntryRequest(
                PATIENT_DOCTOR_TABLE, (188,), {"mode_of_action": "x"}))

    def test_closed_session_rejected(self, paper_gateway):
        session = paper_gateway.open_session("doctor")
        paper_gateway.close_session(session)
        with pytest.raises(SessionError):
            session.authorize(ReadViewRequest(PATIENT_DOCTOR_TABLE))


class TestTokenBucket:
    def test_burst_then_throttle_then_refill(self):
        clock = SimClock()
        bucket = TokenBucket(rate=0.1, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst spent, no time passed
        clock.advance(10.0)              # 10 s * 0.1/s = one token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = SimClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(1_000.0)
        assert bucket.available == pytest.approx(3.0)

    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=SimClock())
        assert all(bucket.try_acquire() for _ in range(100))


class TestGatewayRateLimiting:
    def test_bursty_tenant_gets_throttled_responses(self, paper_gateway):
        session = paper_gateway.open_session("patient", rate=0.1, burst=2.0)
        request = ReadViewRequest(PATIENT_DOCTOR_TABLE)
        statuses = [paper_gateway.submit(session, request).status for _ in range(4)]
        assert statuses == [STATUS_OK, STATUS_OK, STATUS_THROTTLED, STATUS_THROTTLED]
        # Backpressure is per tenant: another session is unaffected.
        other = paper_gateway.open_session("doctor", rate=0.1, burst=2.0)
        assert paper_gateway.submit(other, request).status == STATUS_OK
        # And the throttled tenant recovers once simulated time passes.
        paper_gateway.system.simulator.clock.advance(10.0)
        assert paper_gateway.submit(session, request).status == STATUS_OK
        assert session.counters[STATUS_THROTTLED] == 2
