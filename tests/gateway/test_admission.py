"""Gateway-wide admission control: queue-depth load shedding on both transports."""

import asyncio

import pytest

from repro.config import SystemConfig
from repro.gateway import (
    AsyncSharingGateway,
    ReadViewRequest,
    SharingGateway,
    STATUS_OK,
    STATUS_QUEUED,
    STATUS_SHED,
    UpdateEntryRequest,
    WriteScheduler,
)
from repro.workloads.topology import TopologySpec, build_topology_system


def build_gateway(max_queue_depth, patients=2):
    system = build_topology_system(TopologySpec(patients=patients, researchers=0),
                                   SystemConfig.private_chain(1.0))
    return SharingGateway(system, max_queue_depth=max_queue_depth), system


def tenant_tables(system):
    return {f"patient-{mid.split(':')[1]}": mid for mid in system.agreement_ids}


def update_for(metadata_id, tag):
    patient_id = int(metadata_id.split(":")[1])
    return UpdateEntryRequest(metadata_id=metadata_id, key=(patient_id,),
                              updates={"clinical_data": tag})


class TestSchedulerCapacity:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WriteScheduler(max_queue_depth=0)

    def test_at_capacity_flag(self):
        scheduler = WriteScheduler(max_queue_depth=1)
        assert not scheduler.at_capacity
        scheduler.enqueue(_pending("req-1"))
        assert scheduler.at_capacity

    def test_no_capacity_means_never_at_capacity(self):
        scheduler = WriteScheduler()
        for index in range(100):
            scheduler.enqueue(_pending(f"req-{index}"))
        assert not scheduler.at_capacity

    def test_oldest_enqueued_at(self):
        scheduler = WriteScheduler()
        assert scheduler.oldest_enqueued_at is None
        scheduler.enqueue(_pending("req-1", enqueued_at=5.0))
        scheduler.enqueue(_pending("req-2", enqueued_at=9.0))
        assert scheduler.oldest_enqueued_at == 5.0


def _pending(request_id, enqueued_at=0.0):
    from repro.gateway import PendingWrite

    return PendingWrite(request_id=request_id, tenant="t", peer="t",
                        request=UpdateEntryRequest("m", (1,), {"a": "b"}),
                        enqueued_at=enqueued_at)


class TestSyncShedding:
    def test_write_shed_at_capacity(self):
        gateway, system = build_gateway(max_queue_depth=1)
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        accepted = gateway.submit(session, update_for(metadata_id, "first"))
        assert accepted.status == STATUS_QUEUED
        shed = gateway.submit(session, update_for(metadata_id, "second"))
        assert shed.status == STATUS_SHED
        assert shed.shed and shed.terminal
        assert "capacity" in shed.error
        assert gateway.shed_requests == 1
        metrics = gateway.metrics()
        assert metrics["queue"]["shed_requests"] == 1
        assert metrics["queue"]["capacity"] == 1
        assert metrics["requests"]["by_status"][STATUS_SHED] == 1

    def test_reads_never_shed(self):
        gateway, system = build_gateway(max_queue_depth=1)
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "fill"))
        response = gateway.submit(session, ReadViewRequest(metadata_id))
        assert response.status == STATUS_OK

    def test_shed_then_recover(self):
        gateway, system = build_gateway(max_queue_depth=1)
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        patient_id = int(metadata_id.split(":")[1])
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "committed"))
        assert gateway.submit(session, update_for(metadata_id, "lost")).shed
        # Draining makes room again: the next write is accepted and applied.
        gateway.drain()
        recovered = gateway.submit(session, update_for(metadata_id, "recovered"))
        assert recovered.status == STATUS_QUEUED
        gateway.drain()
        assert recovered.status == STATUS_OK
        view = system.peer(peer).shared_table(metadata_id)
        assert view.get((patient_id,))["clinical_data"] == "recovered"
        assert gateway.shed_requests == 1

    def test_shed_response_not_counted_as_outstanding(self):
        gateway, system = build_gateway(max_queue_depth=1)
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "fill"))
        gateway.submit(session, update_for(metadata_id, "shed-me"))
        assert gateway.outstanding_writes == 1
        gateway.drain()
        assert gateway.outstanding_writes == 0

    def test_session_counters_track_shed(self):
        gateway, system = build_gateway(max_queue_depth=1)
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "fill"))
        gateway.submit(session, update_for(metadata_id, "shed-me"))
        stats = session.statistics()
        assert stats["counters"][STATUS_SHED] == 1
        assert stats["tenant"] == peer


class TestAsyncShedding:
    def test_shed_future_resolves_immediately_and_recovers(self):
        async def scenario():
            system = build_topology_system(TopologySpec(patients=2, researchers=0),
                                           SystemConfig.private_chain(1.0))
            tables = tenant_tables(system)
            peer, metadata_id = sorted(tables.items())[0]
            patient_id = int(metadata_id.split(":")[1])
            gateway = SharingGateway(system, max_queue_depth=1)
            # A huge seal depth + long idle keeps the pump from draining the
            # queue before the shed happens.
            async with AsyncSharingGateway(gateway, seal_depth=50,
                                           idle_timeout=5.0) as front:
                session = front.open_session(peer)
                accepted = front.submit_nowait(session, update_for(metadata_id, "keep"))
                shed_future = front.submit_nowait(session,
                                                  update_for(metadata_id, "shed"))
                assert shed_future.done()  # terminal at admission time
                shed = await shed_future
                assert shed.status == STATUS_SHED
                await front.drain()
                assert (await accepted).status == STATUS_OK
                # Recovery: the queue has room again.
                recovered = await front.submit(session,
                                               update_for(metadata_id, "recovered"))
                assert recovered.status == STATUS_OK
            view = system.peer(peer).shared_table(metadata_id)
            assert view.get((patient_id,))["clinical_data"] == "recovered"
            assert gateway.metrics()["queue"]["shed_requests"] == 1

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_cli_exposes_max_queue_depth(self):
        from repro.cli import run_gateway_loadtest

        result = run_gateway_loadtest(tenants=2, duration=4, rate=4.0,
                                      read_fraction=0.0, interval=1.0,
                                      batch_size=2, transport="async",
                                      max_queue_depth=1)
        metrics = result["metrics"]
        assert metrics["queue"]["capacity"] == 1
        # At 8 writes/s against a capacity-1 queue something must shed ...
        assert metrics["queue"]["shed_requests"] > 0
        # ... and everything else still resolves terminally.
        assert metrics["queue"]["outstanding_writes"] == 0

    def test_cli_sync_transport_commits_below_capacity(self):
        """With capacity < batch size the sync driver must still commit (at
        the capacity threshold) instead of shedding everything until the
        final drain."""
        from repro.cli import run_gateway_loadtest

        result = run_gateway_loadtest(tenants=2, duration=6, rate=4.0,
                                      read_fraction=0.0, interval=1.0,
                                      batch_size=16, transport="sync",
                                      max_queue_depth=4)
        metrics = result["metrics"]
        writes = metrics["batches"]["writes_committed"]
        # Far more writes commit than one queue's worth, and commits happened
        # in several batches during the run, not one trailing drain.
        assert writes > 4
        assert metrics["batches"]["committed"] >= 2
        assert metrics["queue"]["outstanding_writes"] == 0
