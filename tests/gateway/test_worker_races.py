"""Thread races: worker pool commits vs concurrent cache reads.

These tests line threads up with barriers (no ``time.sleep`` synchronisation
anywhere) and hammer the two surfaces the lock split exposes:

* **torn cache patches** — every write updates two columns atomically in one
  edit, so any reader that ever observes the columns disagreeing caught a
  half-applied patch;
* **lost invalidations/patches** — after the pool drains, every cached view
  must be byte-identical to a freshly materialised one.
"""

import threading

import pytest

from repro.config import SystemConfig
from repro.gateway import (
    GatewayWorkerPool,
    ReadViewRequest,
    SharingGateway,
    STATUS_OK,
    UpdateEntryRequest,
)
from repro.workloads.topology import TopologySpec, build_topology_system

pytestmark = [pytest.mark.slow]

ROUNDS = 12
READERS = 3


def build_system(patients=2):
    return build_topology_system(TopologySpec(patients=patients, researchers=0),
                                 SystemConfig.private_chain(1.0))


def tenant_tables(system):
    return {f"patient-{mid.split(':')[1]}": mid for mid in system.agreement_ids}


class TestConcurrentCommitsAndReads:
    def test_no_torn_patches_no_lost_updates(self):
        system = build_system(patients=2)
        tables = tenant_tables(system)
        gateway = SharingGateway(system, max_batch_size=4)
        # The doctor holds write permission on both columns, so each write
        # updates clinical_data AND dosage to the same tag in one edit — a
        # single diff row the cache must apply atomically.
        doctor = gateway.open_session("doctor")
        # Readers connect as the doctor too: the hub peer is party to every
        # agreement, so each reader can sweep all shared views.
        reader_sessions = [gateway.open_session("doctor") for _ in range(READERS)]
        torn = []
        reader_errors = []
        barrier = threading.Barrier(READERS + 1)
        writes_done = threading.Event()

        def read_loop(session):
            try:
                barrier.wait(timeout=30)
                while True:
                    for metadata_id in tables.values():
                        response = gateway.submit(session, ReadViewRequest(metadata_id))
                        assert response.status == STATUS_OK
                        for row in response.payload["table"]["rows"]:
                            tag = row["clinical_data"]
                            if tag.startswith("race-") and row["dosage"] != tag:
                                torn.append((tag, row["dosage"]))
                    if writes_done.is_set() and gateway.outstanding_writes == 0:
                        return
            except Exception as exc:  # noqa: BLE001 - surfaced in the assert
                reader_errors.append(f"{type(exc).__name__}: {exc}")

        readers = [threading.Thread(target=read_loop, args=(session,), daemon=True)
                   for session in reader_sessions]
        responses = []
        with GatewayWorkerPool(gateway, workers=2) as pool:
            for thread in readers:
                thread.start()
            barrier.wait(timeout=30)
            for round_index in range(ROUNDS):
                tag = f"race-{round_index}"
                for metadata_id in sorted(tables.values()):
                    patient_id = int(metadata_id.split(":")[1])
                    responses.append(gateway.submit(doctor, UpdateEntryRequest(
                        metadata_id=metadata_id, key=(patient_id,),
                        updates={"clinical_data": tag, "dosage": tag})))
            assert pool.join_idle(timeout=60.0)
            writes_done.set()
            for thread in readers:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in readers)
            assert not pool.errors, pool.errors

        assert not reader_errors, reader_errors
        assert not torn, f"readers observed torn cache patches: {torn[:5]}"
        assert all(response.status == STATUS_OK for response in responses)

        # No lost invalidation or patch: every cached view now equals a
        # freshly materialised one, and carries the final round's tag.
        final_tag = f"race-{ROUNDS - 1}"
        for peer, metadata_id in tables.items():
            cached = gateway.cache.peek(peer, metadata_id)
            if cached is None:
                continue  # dropped entries are allowed — stale ones are not
            fresh = system.coordinator.read_shared_data(peer, metadata_id)
            assert cached.fingerprint() == fresh.fingerprint(), (
                f"cached view of {metadata_id} for {peer} went stale")
            patient_id = int(metadata_id.split(":")[1])
            assert fresh.get((patient_id,))["clinical_data"] == final_tag
        assert system.all_shared_tables_consistent()

    def test_interleaved_admission_is_observable(self):
        """While the pool mines, the driver keeps admitting: the transport
        metrics must show requests admitted during in-flight commits."""
        system = build_system(patients=3)
        tables = tenant_tables(system)
        gateway = SharingGateway(system, max_batch_size=2)
        doctor = gateway.open_session("doctor")
        commit_started = threading.Event()

        original = system.coordinator.commit_entry_batch

        def signalling_commit(groups):
            commit_started.set()
            return original(groups)

        system.coordinator.commit_entry_batch = signalling_commit
        with GatewayWorkerPool(gateway, workers=1) as pool:
            # First write: the worker picks it up and starts mining.
            first_table = sorted(tables.values())[0]
            patient_id = int(first_table.split(":")[1])
            gateway.submit(doctor, UpdateEntryRequest(
                first_table, (patient_id,), {"dosage": "first"}))
            assert commit_started.wait(timeout=30)
            # Admit more work while that commit is (or was just) in flight.
            for metadata_id in sorted(tables.values())[1:]:
                patient_id = int(metadata_id.split(":")[1])
                gateway.submit(doctor, UpdateEntryRequest(
                    metadata_id, (patient_id,), {"dosage": "second-wave"}))
            assert pool.join_idle(timeout=60.0)
        metrics = gateway.metrics()
        assert metrics["transport"]["commits_in_flight"] == 0
        assert metrics["queue"]["outstanding_writes"] == 0
        assert gateway.writes_committed == len(tables)

    def test_concurrent_commit_once_from_many_threads(self):
        """commit_once from N racing threads must commit every write exactly
        once (the commit lock serialises, the planner never double-plans)."""
        system = build_system(patients=3)
        tables = tenant_tables(system)
        gateway = SharingGateway(system, max_batch_size=2)
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        for peer, metadata_id in sorted(tables.items()):
            patient_id = int(metadata_id.split(":")[1])
            for round_index in range(3):
                gateway.submit(sessions[peer], UpdateEntryRequest(
                    metadata_id, (patient_id,),
                    {"clinical_data": f"n-{round_index}"}))
        barrier = threading.Barrier(4)
        errors = []

        def drain_loop():
            try:
                barrier.wait(timeout=30)
                while gateway.commit_once() is not None:
                    pass
            except Exception as exc:  # noqa: BLE001
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=drain_loop, daemon=True) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert gateway.outstanding_writes == 0
        assert gateway.writes_committed == 3 * len(tables)
        for peer, metadata_id in tables.items():
            patient_id = int(metadata_id.split(":")[1])
            view = system.peer(peer).shared_table(metadata_id)
            assert view.get((patient_id,))["clinical_data"] == "n-2"
        assert system.all_shared_tables_consistent()
