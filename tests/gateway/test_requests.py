"""The typed request/response model and its serialisation."""

import pytest

from repro.gateway.requests import (
    AuditQueryRequest,
    DeleteEntryRequest,
    GatewayRequest,
    GatewayResponse,
    InsertEntryRequest,
    ReadViewRequest,
    UpdateEntryRequest,
)


class TestRequestRoundTrip:
    @pytest.mark.parametrize("request_obj", [
        ReadViewRequest(metadata_id="D13&D31"),
        UpdateEntryRequest(metadata_id="D13&D31", key=(188,),
                           updates={"dosage": "two tablets"}),
        InsertEntryRequest(metadata_id="D13&D31",
                           values={"patient_id": 190, "dosage": "x"}),
        DeleteEntryRequest(metadata_id="D13&D31", key=(188,)),
        AuditQueryRequest(metadata_id="D13&D31"),
        AuditQueryRequest(),
    ])
    def test_to_from_dict_round_trip(self, request_obj):
        payload = request_obj.to_dict()
        rebuilt = GatewayRequest.from_dict(payload)
        assert rebuilt == request_obj
        assert rebuilt.to_dict() == payload

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GatewayRequest.from_dict({"kind": "explode"})

    def test_write_classification(self):
        assert UpdateEntryRequest("m", (1,), {"a": 1}).is_write
        assert InsertEntryRequest("m", {"a": 1}).is_write
        assert DeleteEntryRequest("m", (1,)).is_write
        assert not ReadViewRequest("m").is_write
        assert not AuditQueryRequest().is_write

    def test_key_and_updates_normalised_to_immutable_shapes(self):
        request = UpdateEntryRequest(metadata_id="m", key=[1, 2], updates={"a": 1})
        assert request.key == (1, 2)
        assert isinstance(request.updates, dict)


class TestResponse:
    def test_round_trip_and_latency(self):
        response = GatewayResponse(request_id="req-1", tenant="doctor",
                                   kind="update-entry", status="ok",
                                   payload={"rows": 1}, enqueued_at=10.0,
                                   completed_at=16.5)
        assert response.ok
        assert response.latency == pytest.approx(6.5)
        rebuilt = GatewayResponse.from_dict(response.to_dict())
        assert rebuilt.request_id == "req-1"
        assert rebuilt.latency == pytest.approx(6.5)
        assert rebuilt.payload == {"rows": 1}

    def test_latency_never_negative(self):
        response = GatewayResponse(request_id="r", tenant="t", kind="k",
                                   status="ok", enqueued_at=5.0, completed_at=4.0)
        assert response.latency == 0.0
