"""Gateway resilience: the latency shedder, fair queueing, breaker-driven
admission, outcome recording semantics, and degraded reads."""

import pytest

from repro.chaos import STATE_CLOSED, STATE_OPEN
from repro.config import SystemConfig
from repro.gateway import (
    LatencyShedder,
    ReadViewRequest,
    SharingGateway,
    STATUS_OK,
    STATUS_QUEUED,
    STATUS_REJECTED,
    STATUS_SHED,
    UpdateEntryRequest,
    WriteScheduler,
    fair_share_exceeded,
)
from repro.ledger.clock import SimClock
from repro.workloads.topology import TopologySpec, build_topology_system


def build_gateway(patients=2, **kwargs):
    system = build_topology_system(TopologySpec(patients=patients, researchers=0),
                                   SystemConfig.private_chain(1.0))
    return SharingGateway(system, **kwargs), system


def tenant_tables(system):
    return {f"patient-{mid.split(':')[1]}": mid for mid in system.agreement_ids}


def update_for(metadata_id, tag):
    patient_id = int(metadata_id.split(":")[1])
    return UpdateEntryRequest(metadata_id=metadata_id, key=(patient_id,),
                              updates={"clinical_data": tag})


class TestLatencyShedder:
    @pytest.mark.parametrize("bad", [
        dict(target=0.0),
        dict(target=-1.0),
        dict(target=1.0, window=0.0),
        dict(target=1.0, min_samples=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            LatencyShedder(SimClock(), **bad)

    def test_disabled_when_target_is_none(self):
        shedder = LatencyShedder(SimClock(), None)
        shedder.record_latency(99.0)
        shedder.record_service(99.0, 1)
        assert shedder.p99 is None
        assert shedder.decision(10_000) is None
        assert shedder.healthy

    def test_p99_needs_min_samples(self):
        shedder = LatencyShedder(SimClock(), 1.0, min_samples=5)
        for _ in range(4):
            shedder.record_latency(10.0)
        assert shedder.p99 is None
        assert shedder.healthy  # no evidence yet
        shedder.record_latency(10.0)
        assert shedder.p99 == pytest.approx(10.0)
        assert not shedder.healthy

    def test_p99_interpolates(self):
        shedder = LatencyShedder(SimClock(), 100.0, min_samples=1)
        for value in range(1, 102):  # 1..101 → rank 0.99*100 = 99
            shedder.record_latency(float(value))
        assert shedder.p99 == pytest.approx(100.0)

    def test_window_forgets_old_samples(self):
        clock = SimClock()
        shedder = LatencyShedder(clock, 1.0, window=10.0, min_samples=1)
        shedder.record_latency(50.0)
        assert not shedder.healthy
        clock.advance(10.001)
        assert shedder.p99 is None  # the spike aged out
        assert shedder.healthy

    def test_predicted_delay_uses_windowed_mean_service(self):
        shedder = LatencyShedder(SimClock(), 5.0, min_samples=1)
        assert shedder.predicted_delay(10) is None  # no service evidence
        shedder.record_service(4.0, writes=8)   # 0.5 s/write
        shedder.record_service(12.0, writes=8)  # 1.5 s/write
        assert shedder.mean_service == pytest.approx(1.0)
        assert shedder.predicted_delay(10) == pytest.approx(10.0)

    def test_decision_reasons_and_counters(self):
        shedder = LatencyShedder(SimClock(), 2.0, min_samples=1)
        assert shedder.decision(0) is None
        shedder.record_service(4.0, writes=1)  # 4 s/write
        reason = shedder.decision(1)
        assert reason is not None and "predicted queueing delay" in reason
        assert shedder.shed_predicted == 1
        shedder.record_latency(9.0)
        reason = shedder.decision(0)
        assert reason is not None and "p99" in reason
        assert shedder.shed_p99 == 1
        stats = shedder.statistics()
        assert stats["shed_p99"] == 1 and stats["shed_predicted"] == 1


class TestFairShare:
    def test_unbounded_queue_never_sheds(self):
        scheduler = WriteScheduler()
        assert fair_share_exceeded(scheduler, "anyone") is None

    def test_share_splits_capacity_across_active_tenants(self):
        scheduler = WriteScheduler(max_queue_depth=8)

        class Stub:
            def __init__(self, counts):
                self.queue_capacity = 8
                self._counts = counts

            def queued_for(self, tenant):
                return self._counts.get(tenant, 0)

            @property
            def active_tenants(self):
                return len([c for c in self._counts.values() if c])

        # A lone tenant may hold the whole queue minus nothing: share = 8.
        assert fair_share_exceeded(Stub({"a": 7}), "a") is None
        assert fair_share_exceeded(Stub({"a": 8}), "a") is not None
        # Two active tenants: share = ceil(8/2) = 4.
        assert fair_share_exceeded(Stub({"a": 3, "b": 1}), "a") is None
        reason = fair_share_exceeded(Stub({"a": 4, "b": 1}), "a")
        assert reason is not None and "fair share 4" in reason
        # A tenant with nothing queued is never shed by fairness.
        assert fair_share_exceeded(Stub({"a": 8}), "b") is None
        del scheduler


class TestGatewayShedding:
    def test_latency_shed_reason_and_counter(self):
        gateway, system = build_gateway(latency_target=1.0)
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        # Simulate a run of slow committed writes.
        for _ in range(5):
            gateway.shedder.record_latency(5.0)
        response = gateway.submit(session, update_for(metadata_id, "late"))
        assert response.status == STATUS_SHED
        assert "p99" in response.error and "retry later" in response.error
        assert gateway.metrics()["resilience"]["shed_by_reason"]["latency"] == 1

    def test_fair_share_sheds_hot_tenant_but_admits_others(self):
        gateway, system = build_gateway(patients=2, max_queue_depth=4)
        tables = tenant_tables(system)
        (peer_a, table_a), (peer_b, table_b) = sorted(tables.items())
        session_a = gateway.open_session(peer_a)
        session_b = gateway.open_session(peer_b)
        # Tenant A fills its fair share of the bounded queue (4/2 = 2 once
        # both tenants are active; while alone its share is the full 4 — so
        # enqueue one B write first to make the queue contended).
        assert gateway.submit(session_b, update_for(table_b, "b0")).status == STATUS_QUEUED
        assert gateway.submit(session_a, update_for(table_a, "a0")).status == STATUS_QUEUED
        shed = None
        for index in range(4):
            response = gateway.submit(session_a, update_for(table_a, f"a{index + 1}"))
            if response.status == STATUS_SHED:
                shed = response
                break
        assert shed is not None, "the hot tenant was never shed"
        assert "fair share" in shed.error
        # The other tenant still gets in.
        assert gateway.submit(session_b, update_for(table_b, "b1")).status == STATUS_QUEUED
        assert gateway.metrics()["resilience"]["shed_by_reason"]["fair_share"] >= 1
        gateway.drain()

    def test_open_commit_breaker_sheds_writes_then_half_open_probe_admits(self):
        gateway, system = build_gateway()
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        for _ in range(3):
            gateway.breakers.record("commit", False)
        response = gateway.submit(session, update_for(metadata_id, "blocked"))
        assert response.status == STATUS_SHED
        assert "circuit breaker" in response.error
        assert gateway.metrics()["resilience"]["shed_by_reason"]["breaker"] == 1
        assert gateway.commit_path_unhealthy()
        # After the reset timeout the half-open breaker admits a probe write,
        # and its successful commit closes the breaker.  (A hair past the
        # timeout: the clock carries topology-build float residue.)
        system.simulator.clock.advance(10.001)
        probe = gateway.submit(session, update_for(metadata_id, "probe"))
        assert probe.status == STATUS_QUEUED
        gateway.commit_once()
        assert probe.status == STATUS_OK
        assert gateway.breakers.peek("commit").state == STATE_CLOSED
        assert not gateway.commit_path_unhealthy()

    def test_tenant_breaker_only_sheds_that_tenant(self):
        gateway, system = build_gateway(patients=2)
        tables = tenant_tables(system)
        (peer_a, table_a), (peer_b, table_b) = sorted(tables.items())
        session_a = gateway.open_session(peer_a)
        session_b = gateway.open_session(peer_b)
        for _ in range(3):
            gateway.breakers.record(f"tenant:{peer_a}", False)
        assert gateway.submit(session_a, update_for(table_a, "x")).status == STATUS_SHED
        assert gateway.submit(session_b, update_for(table_b, "y")).status == STATUS_QUEUED
        gateway.drain()


class TestOutcomeRecording:
    def test_contract_rejection_counts_as_breaker_success(self):
        """A REJECTED write is the contract doing its job — the commit path
        is healthy and must not accumulate breaker failures."""
        gateway, system = build_gateway()
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        # A missing-key edit passes admission and is rejected by the batch
        # workflow at commit time.
        bad = UpdateEntryRequest(metadata_id=metadata_id, key=(9999,),
                                 updates={"clinical_data": "ghost"})
        response = gateway.submit(session, bad)
        assert response.status == STATUS_QUEUED
        gateway.commit_once()
        assert response.status == STATUS_REJECTED
        commit = gateway.breakers.peek("commit")
        assert commit is not None and commit.state == STATE_CLOSED
        assert commit.statistics()["consecutive_failures"] == 0

    def test_successful_commit_materialises_breakers(self):
        gateway, system = build_gateway()
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        assert gateway.breakers.peek("commit") is None
        gateway.submit(session, update_for(metadata_id, "fine"))
        gateway.commit_once()
        states = gateway.breakers.states()
        assert states["commit"] == STATE_CLOSED
        assert states[f"tenant:{peer}"] == STATE_CLOSED
        assert any(name.startswith("lane:") for name in states)


class TestDegradedReads:
    def prime(self, gateway, session, metadata_id):
        response = gateway.submit(session, ReadViewRequest(metadata_id))
        assert response.status == STATUS_OK
        assert "degraded" not in response.payload
        return response

    def trip_commit_path(self, gateway):
        for _ in range(3):
            gateway.breakers.record("commit", False)
        assert gateway.commit_path_unhealthy()

    def test_unhealthy_commit_path_serves_bounded_stale_reads(self):
        gateway, system = build_gateway(degraded_reads=True)
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        self.prime(gateway, session, metadata_id)
        self.trip_commit_path(gateway)
        system.simulator.clock.advance(2.0)
        response = gateway.submit(session, ReadViewRequest(metadata_id))
        assert response.status == STATUS_OK
        assert response.payload["degraded"] is True
        assert response.payload["staleness"] == pytest.approx(2.0)
        assert gateway.degraded_reads_served == 1
        assert gateway.metrics()["resilience"]["degraded_reads_served"] == 1

    def test_over_age_entries_fall_back_to_the_normal_path(self):
        gateway, system = build_gateway(degraded_reads=True)
        assert gateway.max_staleness == 30.0
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        self.prime(gateway, session, metadata_id)
        self.trip_commit_path(gateway)
        system.simulator.clock.advance(30.001)
        response = gateway.submit(session, ReadViewRequest(metadata_id))
        assert response.status == STATUS_OK
        assert "degraded" not in response.payload
        assert gateway.degraded_reads_served == 0

    def test_disabled_by_default(self):
        gateway, system = build_gateway()
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        self.prime(gateway, session, metadata_id)
        self.trip_commit_path(gateway)
        response = gateway.submit(session, ReadViewRequest(metadata_id))
        assert "degraded" not in response.payload

    def test_healthy_commit_path_never_marks_reads(self):
        gateway, system = build_gateway(degraded_reads=True)
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        self.prime(gateway, session, metadata_id)
        response = gateway.submit(session, ReadViewRequest(metadata_id))
        assert "degraded" not in response.payload


class TestColdStartShedding:
    """Regression: an empty/thin latency window must read as "no evidence"
    (None), never as a 0.0-second p99 — and unanimous over-target early
    evidence sheds instead of waving writes through until min_samples."""

    def test_empty_window_is_no_evidence(self):
        from repro.metrics.collectors import LatencyCollector

        collector = LatencyCollector()
        assert collector.percentile(99.0) == 0.0  # report-friendly default
        assert collector.percentile(99.0, default=None) is None  # decisions
        shedder = LatencyShedder(SimClock(), 2.0, min_samples=5)
        assert shedder.p99 is None
        assert shedder.decision(0) is None  # nothing measured: admit

    def test_unanimous_slow_cold_start_sheds(self):
        shedder = LatencyShedder(SimClock(), 1.0, min_samples=5)
        for _ in range(3):  # below min_samples — p99 still withheld
            shedder.record_latency(10.0)
        assert shedder.p99 is None
        assert shedder.healthy  # degraded-read gating is unchanged
        reason = shedder.decision(0)
        assert reason is not None and "cold start" in reason
        assert shedder.shed_cold_start == 1
        assert shedder.statistics()["shed_cold_start"] == 1

    def test_mixed_cold_start_admits(self):
        shedder = LatencyShedder(SimClock(), 1.0, min_samples=5)
        shedder.record_latency(10.0)
        shedder.record_latency(0.5)  # one fast write: not unanimous
        assert shedder.decision(0) is None
        assert shedder.shed_cold_start == 0

    def test_warm_window_uses_p99_not_cold_start(self):
        shedder = LatencyShedder(SimClock(), 1.0, min_samples=2)
        shedder.record_latency(10.0)
        shedder.record_latency(10.0)
        reason = shedder.decision(0)
        assert reason is not None and "p99" in reason
        assert shedder.shed_cold_start == 0


class TestStalenessWiring:
    """Regression for the clock-default bug: entries installed without a
    clock have *unknown* age and must never be served degraded."""

    def test_unknown_age_refuses_degraded_read(self):
        gateway, system = build_gateway(degraded_reads=True)
        tables = tenant_tables(system)
        peer, metadata_id = sorted(tables.items())[0]
        session = gateway.open_session(peer)
        # Simulate a pre-fix entry: installed while no clock was attached.
        gateway.cache.clock = None
        response = gateway.submit(session, ReadViewRequest(metadata_id))
        assert response.status == STATUS_OK
        gateway.cache.clock = system.simulator.clock
        view, age = gateway.cache.peek_entry(peer, metadata_id)
        assert age is None
        for _ in range(3):
            gateway.breakers.record("commit", False)
        assert gateway.commit_path_unhealthy()
        system.simulator.clock.advance(2.0)
        response = gateway.submit(session, ReadViewRequest(metadata_id))
        # Unknown age fails the staleness cutoff: the read takes the normal
        # path instead of being served degraded at an unbounded age.
        assert "degraded" not in response.payload
        assert gateway.degraded_reads_served == 0

    def test_gateway_asserts_clock_wiring(self):
        from repro.errors import GatewayError

        system = build_topology_system(
            TopologySpec(patients=2, researchers=0),
            SystemConfig.private_chain(1.0))
        system.simulator.clock = None
        with pytest.raises(GatewayError):
            SharingGateway(system)

    def test_cache_clock_is_wired(self):
        gateway, system = build_gateway()
        assert gateway.cache.clock is system.simulator.clock
