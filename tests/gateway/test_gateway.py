"""End-to-end gateway behaviour: batching, contention, workers, metrics."""

import pytest

from repro.config import SystemConfig
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, PATIENT_DOCTOR_TABLE
from repro.core.workflow import BatchGroup, EntryEdit
from repro.errors import WorkflowError
from repro.gateway import GatewayWorkerPool, SharingGateway
from repro.gateway.requests import (
    AuditQueryRequest,
    DeleteEntryRequest,
    ReadViewRequest,
    UpdateEntryRequest,
    STATUS_OK,
    STATUS_QUEUED,
    STATUS_REJECTED,
)


def _tenant_tables(system):
    return {f"patient-{mid.split(':')[1]}": mid for mid in system.agreement_ids}


class TestWritePath:
    def test_write_queues_then_commits(self, paper_gateway):
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        response = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "two tablets every 6h"}))
        assert response.status == STATUS_QUEUED
        assert gateway.queue_depth == 1
        result = gateway.commit_once()
        assert result.accepted == 1
        assert response.status == STATUS_OK  # the response object is live
        assert response.latency > 0
        stored = gateway.system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE)
        assert stored.get((188,))["dosage"] == "two tablets every 6h"

    def test_unauthorised_write_rejected_before_queueing(self, paper_gateway):
        gateway = paper_gateway
        patient = gateway.open_session("patient")
        response = gateway.submit(patient, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "all of it"}))
        assert response.status == STATUS_REJECTED
        assert "may not write" in response.error
        assert gateway.queue_depth == 0

    def test_batch_from_many_tenants_shares_two_consensus_rounds(self, topology_gateway):
        gateway = topology_gateway
        system = gateway.system
        tables = _tenant_tables(system)
        height_before = system.simulator.nodes[0].chain.height
        for peer, metadata_id in sorted(tables.items()):
            session = gateway.open_session(peer)
            patient_id = int(metadata_id.split(":")[1])
            gateway.submit(session, UpdateEntryRequest(
                metadata_id, (patient_id,), {"clinical_data": f"new-{patient_id}"}))
        result = gateway.commit_once()
        assert result.accepted == len(tables)
        assert result.consensus_rounds == 2
        # 4 independent updates landed in 2 blocks total (requests + acks).
        assert system.simulator.nodes[0].chain.height == height_before + 2
        assert system.all_shared_tables_consistent()

    def test_delete_through_gateway(self, paper_gateway):
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        response = gateway.submit(doctor, DeleteEntryRequest(PATIENT_DOCTOR_TABLE, (188,)))
        gateway.drain()
        assert response.ok
        system = gateway.system
        assert not system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE).contains_key(188)
        assert not system.peer("doctor").local_table("D3").contains_key(188)


class TestCrossPeerFoldEndToEnd:
    def test_disjoint_cross_peer_writes_share_one_round_pair(self, extended_gateway):
        """Doctor (dosage, row 188) and patient (clinical_data, row 189) fold
        into one group: one request_folded_update + one ack instead of two
        full round pairs, and both edits land on both peers."""
        from repro.core.scenario import CARE_TABLE

        gateway = extended_gateway
        system = gateway.system
        doctor = gateway.open_session("doctor")
        patient = gateway.open_session("patient")
        doc_response = gateway.submit(doctor, UpdateEntryRequest(
            CARE_TABLE, (188,), {"dosage": "two tablets every 6h"}))
        pat_response = gateway.submit(patient, UpdateEntryRequest(
            CARE_TABLE, (189,), {"clinical_data": "patient-reported"}))
        result = gateway.commit_once()
        assert result.consensus_rounds == 2  # cascades mine their own rounds
        assert doc_response.ok and pat_response.ok
        for peer in ("doctor", "patient"):
            stored = system.peer(peer).shared_table(CARE_TABLE)
            assert stored.get((188,))["dosage"] == "two tablets every 6h"
            assert stored.get((189,))["clinical_data"] == "patient-reported"
        assert system.all_shared_tables_consistent()
        # The fold is visible on-chain (per-contributor record) and sound.
        contract = system.simulator.nodes[0].contract_at(system.contract_address)
        folded = [record for record in contract.history if record.contributions]
        assert len(folded) == 1
        assert len(folded[0].contributions) == 2
        assert system.check_contract_specification().passed
        metrics = gateway.metrics()
        assert metrics["batches"]["folded_writes"] == 1
        assert metrics["batches"]["fold_rounds_saved"] == 2

    def test_fold_disabled_keeps_two_round_pairs(self):
        from repro.core.scenario import CARE_TABLE, build_extended_scenario

        system = build_extended_scenario(SystemConfig.private_chain(1.0))
        gateway = SharingGateway(system, fold_cross_peer=False)
        doctor = gateway.open_session("doctor")
        patient = gateway.open_session("patient")
        gateway.submit(doctor, UpdateEntryRequest(
            CARE_TABLE, (188,), {"dosage": "two tablets every 6h"}))
        gateway.submit(patient, UpdateEntryRequest(
            CARE_TABLE, (189,), {"clinical_data": "patient-reported"}))
        batches = gateway.drain()
        assert batches == 2
        assert gateway.batch_consensus_rounds == 4
        assert gateway.metrics()["batches"]["folded_writes"] == 0
        assert system.all_shared_tables_consistent()

    def test_shard_metrics_reported(self, paper_gateway):
        metrics = paper_gateway.metrics()
        assert metrics["shards"]["count"] == 1
        assert metrics["shards"]["queue_depth"] == {0: 0}
        assert metrics["shards"]["mempool_depth"] == [0]
        assert "lanes" not in metrics["shards"]


class TestContention:
    def test_same_key_writes_from_two_peers_both_apply(self, paper_gateway):
        """Concurrent same-key writes serialise across batches: neither the
        doctor's dosage edit nor the patient's clinical-data edit is lost."""
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        patient = gateway.open_session("patient")
        first = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "two tablets every 6h"}))
        second = gateway.submit(patient, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"clinical_data": "CliD1-v2"}))
        batches = gateway.drain()
        assert batches == 2  # serialised, not merged
        assert first.ok and second.ok
        row = gateway.system.peer("doctor").shared_table(PATIENT_DOCTOR_TABLE).get((188,))
        assert row["dosage"] == "two tablets every 6h"
        assert row["clinical_data"] == "CliD1-v2"
        assert gateway.system.all_shared_tables_consistent()

    def test_same_attribute_writes_apply_in_arrival_order(self, paper_gateway):
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        first = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "v1"}))
        second = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "v2"}))
        gateway.drain()
        assert first.ok and second.ok
        # Last arrival wins because both committed, in order, as separate rounds.
        row = gateway.system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE).get((188,))
        assert row["dosage"] == "v2"
        history = gateway.system.server_app("doctor").query_contract(
            "update_history", metadata_id=PATIENT_DOCTOR_TABLE)
        assert len(history) == 2

    def test_invalid_edit_does_not_poison_its_group(self, paper_gateway):
        """A bad edit (missing key) folded into a group with a valid edit is
        rejected alone; the valid group mate still commits."""
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        bad = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (99999,), {"dosage": "ghost"}))
        good = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "two tablets every 6h"}))
        gateway.drain()
        assert bad.status == STATUS_REJECTED
        assert "99999" in bad.error
        assert good.ok
        row = gateway.system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE).get((188,))
        assert row["dosage"] == "two tablets every 6h"
        metrics = gateway.metrics()
        assert metrics["batches"]["writes_committed"] == 1
        assert metrics["batches"]["writes_rejected"] == 1

    def test_failed_group_still_invalidates_cached_views(self, paper_gateway):
        """Whatever a group's outcome, cached views of its table are dropped
        after the commit, so readers can never be served around a failure."""
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        gateway.submit(doctor, ReadViewRequest(PATIENT_DOCTOR_TABLE))
        assert gateway.cache.peek("doctor", PATIENT_DOCTOR_TABLE) is not None
        response = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"clinical_data": "will-be-revoked"}))
        gateway.system.coordinator.change_permission(
            "doctor", PATIENT_DOCTOR_TABLE, "clinical_data", ["Patient"])
        gateway.drain()
        assert response.status == STATUS_REJECTED
        assert gateway.cache.peek("doctor", PATIENT_DOCTOR_TABLE) is None

    def test_commit_blowup_terminal_fails_every_member(self, paper_gateway, monkeypatch):
        """If the coordinator itself raises, queued responses still reach a
        terminal status instead of hanging at QUEUED forever."""
        from repro.errors import WorkflowError
        from repro.gateway.requests import STATUS_ERROR

        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        response = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "x"}))

        def explode(groups):
            raise WorkflowError("synthetic commit failure")

        monkeypatch.setattr(gateway.system.coordinator, "commit_entry_batch", explode)
        with pytest.raises(WorkflowError):
            gateway.commit_once()
        assert response.status == STATUS_ERROR
        assert "synthetic commit failure" in response.error
        assert gateway.outstanding_writes == 0

    def test_batch_with_duplicate_tables_is_refused_by_coordinator(self, paper_gateway):
        coordinator = paper_gateway.system.coordinator
        group = BatchGroup(peer="doctor", metadata_id=PATIENT_DOCTOR_TABLE,
                           edits=(EntryEdit(op="update", key=(188,),
                                            values={"dosage": "x"}),))
        with pytest.raises(WorkflowError):
            coordinator.commit_entry_batch([group, group])


class TestWorkerPool:
    def test_threaded_workers_drain_the_queue(self, topology_gateway):
        gateway = topology_gateway
        tables = _tenant_tables(gateway.system)
        responses = []
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        for peer, metadata_id in sorted(tables.items()):
            patient_id = int(metadata_id.split(":")[1])
            for round_index in range(2):
                responses.append(gateway.submit(sessions[peer], UpdateEntryRequest(
                    metadata_id, (patient_id,),
                    {"clinical_data": f"w-{patient_id}-{round_index}"})))
        with GatewayWorkerPool(gateway, workers=3) as pool:
            assert pool.join_idle(timeout=30.0)
        assert pool.batches_committed >= 1
        assert all(response.ok for response in responses)
        assert gateway.system.all_shared_tables_consistent()

    def test_pool_lifecycle(self, paper_gateway):
        pool = GatewayWorkerPool(paper_gateway, workers=1)
        pool.start()
        with pytest.raises(RuntimeError):
            pool.start()
        pool.stop()
        assert not pool.running


class TestReadsAndMetrics:
    def test_audit_query(self, paper_gateway):
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "two tablets every 6h"}))
        gateway.drain()
        response = gateway.submit(doctor, AuditQueryRequest(PATIENT_DOCTOR_TABLE))
        assert response.ok
        assert response.payload["count"] == 1
        assert response.payload["records"][0]["operation"] == "update"

    def test_rejected_writes_do_not_count_as_committed(self, paper_gateway):
        """A contract-rejected group must not inflate writes_committed (the
        session-side permission probe is bypassed here by revoking write
        permission after the request was queued)."""
        gateway = paper_gateway
        system = gateway.system
        doctor = gateway.open_session("doctor")
        response = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"clinical_data": "queued-then-revoked"}))
        system.coordinator.change_permission(
            "doctor", PATIENT_DOCTOR_TABLE, "clinical_data", ["Patient"])
        gateway.drain()
        assert response.status == STATUS_REJECTED
        metrics = gateway.metrics()
        assert metrics["batches"]["writes_committed"] == 0
        assert metrics["batches"]["writes_rejected"] == 1
        # The counter landed on the right session even so.
        assert doctor.counters[STATUS_REJECTED] == 1

    def test_closed_session_still_gets_terminal_counters(self, paper_gateway):
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        response = gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "x"}))
        gateway.close_session(doctor)
        gateway.drain()
        assert response.ok
        assert doctor.counters[STATUS_OK] == 1

    def test_metrics_shape(self, paper_gateway):
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        gateway.submit(doctor, ReadViewRequest(PATIENT_DOCTOR_TABLE))
        gateway.submit(doctor, ReadViewRequest(PATIENT_DOCTOR_TABLE))
        gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "x"}))
        gateway.drain()
        metrics = gateway.metrics()
        assert metrics["requests"]["total"] == 3
        assert metrics["requests"]["by_status"][STATUS_OK] == 3
        assert metrics["batches"]["committed"] == 1
        assert metrics["batches"]["consensus_rounds"] == 2
        assert metrics["cache"]["hit_rate"] == 0.5
        assert metrics["queue"]["depth"] == 0
        tenant = metrics["tenants"]["doctor"]
        assert tenant["count"] == 3
        assert tenant["p95"] >= 0
        assert tenant["p99"] >= tenant["p95"]


class TestServingHooks:
    """The terminal/enqueue hooks and the interleave metrics added for the
    async transport and the event-driven worker pool."""

    def test_terminal_listener_fires_for_every_terminal_status(self, paper_gateway):
        gateway = paper_gateway
        seen = []
        gateway.subscribe_terminal(lambda response: seen.append(
            (response.request_id, response.status)))
        researcher = gateway.open_session("researcher")
        patient = gateway.open_session("patient", rate=0.001, burst=1.0)
        ok_read = gateway.submit(researcher, ReadViewRequest(DOCTOR_RESEARCHER_TABLE))
        throttled = gateway.submit(patient, ReadViewRequest(PATIENT_DOCTOR_TABLE))
        throttled2 = gateway.submit(patient, ReadViewRequest(PATIENT_DOCTOR_TABLE))
        queued = gateway.submit(researcher, UpdateEntryRequest(
            DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-hooked"}))
        statuses = dict(seen)
        assert statuses[ok_read.request_id] == "ok"
        assert "throttled" in (statuses.get(throttled.request_id),
                               statuses.get(throttled2.request_id))
        assert queued.request_id not in statuses  # not terminal yet
        gateway.drain()
        statuses = dict(seen)
        assert statuses[queued.request_id] == "ok"

    def test_enqueue_listener_reports_queue_depth(self, paper_gateway):
        gateway = paper_gateway
        depths = []
        gateway.subscribe_enqueue(depths.append)
        researcher = gateway.open_session("researcher")
        for index in range(3):
            gateway.submit(researcher, UpdateEntryRequest(
                DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
                {"mechanism_of_action": f"MeA1-{index}"}))
        assert depths == [1, 2, 3]
        # Reads do not enqueue.
        gateway.submit(researcher, ReadViewRequest(DOCTOR_RESEARCHER_TABLE))
        assert depths == [1, 2, 3]
        gateway.drain()

    def test_transport_metrics_quiesce(self, paper_gateway):
        gateway = paper_gateway
        researcher = gateway.open_session("researcher")
        gateway.submit(researcher, UpdateEntryRequest(
            DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-metrics"}))
        gateway.drain()
        transport = gateway.metrics()["transport"]
        assert transport["commits_in_flight"] == 0
        assert transport["commits_in_flight_peak"] == 1
        assert transport["outstanding_writes_peak"] >= 1
        assert gateway.metrics()["queue"]["outstanding_writes"] == 0

    def test_session_statistics_snapshot(self, paper_gateway):
        gateway = paper_gateway
        researcher = gateway.open_session("researcher", rate=2.0, burst=4.0)
        gateway.submit(researcher, ReadViewRequest(DOCTOR_RESEARCHER_TABLE))
        stats = researcher.statistics()
        assert stats["tenant"] == "researcher"
        assert stats["role"] == "Researcher"
        assert stats["counters"]["ok"] == 1
        assert stats["rate"] == 2.0 and stats["burst"] == 4.0
        assert 0 <= stats["tokens_available"] <= 4.0
        assert stats["closed"] is False

    def test_join_idle_wakes_on_terminal_not_polling(self, topology_gateway):
        gateway = topology_gateway
        tables = {f"patient-{mid.split(':')[1]}": mid
                  for mid in gateway.system.agreement_ids}
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        with GatewayWorkerPool(gateway, workers=2) as pool:
            for peer, metadata_id in sorted(tables.items()):
                patient_id = int(metadata_id.split(":")[1])
                gateway.submit(sessions[peer], UpdateEntryRequest(
                    metadata_id, (patient_id,), {"clinical_data": "evented"}))
            assert pool.join_idle(timeout=30.0)
            assert gateway.outstanding_writes == 0
        # Idle pool with an empty queue parks on the enqueue event and still
        # shuts down cleanly (stop() wakes it) — reaching here proves it.
        assert not pool.running
