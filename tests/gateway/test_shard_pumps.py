"""Per-shard commit pumps: lane-pure planning, pump stats, both transports."""

from __future__ import annotations

import asyncio

import pytest

from repro.config import SystemConfig
from repro.gateway import (
    GatewayWorkerPool,
    SharingGateway,
    STATUS_OK,
    UpdateEntryRequest,
)
from repro.gateway.aio import AsyncSharingGateway
from repro.workloads.topology import TopologySpec, build_topology_system


def _build_system(shards: int, patients: int = 4):
    config = SystemConfig.private_chain(1.0, consensus_shards=shards)
    return build_topology_system(
        TopologySpec(patients=patients, researchers=0), config)


def _submit_all(gateway, session, tables, rounds: int, tag: str):
    responses = []
    for round_number in range(rounds):
        for metadata_id in tables:
            patient_id = int(metadata_id.split(":")[1])
            responses.append(gateway.submit(session, UpdateEntryRequest(
                metadata_id=metadata_id, key=(patient_id,),
                updates={"clinical_data": f"{tag}-{round_number}",
                         "dosage": f"{tag}-{round_number}"})))
    return responses


class TestLaneFilteredPlanning:
    def test_plan_keeps_other_lanes_queued(self):
        system = _build_system(shards=3)
        gateway = SharingGateway(system, max_batch_size=16)
        doctor = gateway.open_session("doctor")
        tables = sorted(system.agreement_ids)
        router = system.simulator.router
        _submit_all(gateway, doctor, tables, rounds=1, tag="lane")
        depth_before = gateway.queue_depth

        lanes = {router.shard_of(metadata_id) for metadata_id in tables}
        target = sorted(lanes)[0]
        plan = gateway.scheduler.plan(shard=target, router=router)
        assert plan.size > 0
        assert all(router.shard_of(write.request.metadata_id) == target
                   for member in plan.members for write in member)
        # Other lanes' writes were skipped, not consumed.
        assert gateway.queue_depth == depth_before - plan.size

    def test_shard_without_router_rejected(self):
        system = _build_system(shards=2)
        gateway = SharingGateway(system)
        with pytest.raises(ValueError, match="router"):
            gateway.scheduler.plan(shard=1)

    def test_lane_commits_cover_all_writes(self):
        """Draining lane by lane commits exactly the same writes a global
        drain would — no write is lost to the filter."""
        system = _build_system(shards=3)
        gateway = SharingGateway(system, max_batch_size=4)
        doctor = gateway.open_session("doctor")
        tables = sorted(system.agreement_ids)
        responses = _submit_all(gateway, doctor, tables, rounds=3, tag="cover")
        router = system.simulator.router
        for _ in range(100):
            if gateway.queue_depth == 0:
                break
            for lane in range(router.num_shards):
                gateway.commit_once(trigger="test", shard=lane)
        assert gateway.queue_depth == 0
        assert all(response.status == STATUS_OK for response in responses)


class TestPumpStats:
    def test_unfiltered_commits_use_the_all_key(self):
        system = _build_system(shards=1)
        gateway = SharingGateway(system, max_batch_size=4)
        doctor = gateway.open_session("doctor")
        tables = sorted(system.agreement_ids)
        _submit_all(gateway, doctor, tables, rounds=1, tag="stats")
        gateway.drain()
        pumps = gateway.metrics()["transport"]["pumps"]
        assert set(pumps) == {"all"}
        assert pumps["all"]["commits"] >= 1
        assert pumps["all"]["writes"] == len(tables)

    def test_per_lane_keys_and_trigger_counts(self):
        system = _build_system(shards=3)
        gateway = SharingGateway(system, max_batch_size=8)
        doctor = gateway.open_session("doctor")
        tables = sorted(system.agreement_ids)
        _submit_all(gateway, doctor, tables, rounds=2, tag="lane-stats")
        router = system.simulator.router
        busy_lanes = {str(router.shard_of(m)) for m in tables}
        for lane in range(router.num_shards):
            while gateway.commit_once(trigger="pump-test", shard=lane):
                pass
        pumps = gateway.metrics()["transport"]["pumps"]
        assert busy_lanes <= set(pumps)
        committed = {lane for lane, stats in pumps.items()
                     if stats["commits"] > 0}
        assert committed == busy_lanes
        total_writes = sum(stats["writes"] for stats in pumps.values())
        assert total_writes == len(tables) * 2
        for stats in pumps.values():
            assert set(stats) == {"commits", "writes", "empty_plans",
                                  "deferred", "triggers"}
            assert sum(stats["triggers"].values()) >= stats["commits"]


class TestPerShardWorkerPool:
    def test_one_worker_per_lane_drains_everything(self):
        system = _build_system(shards=3)
        gateway = SharingGateway(system, max_batch_size=4)
        doctor = gateway.open_session("doctor")
        tables = sorted(system.agreement_ids)
        with GatewayWorkerPool(gateway, per_shard=True) as pool:
            assert pool.worker_count == system.simulator.router.num_shards
            responses = _submit_all(gateway, doctor, tables, rounds=4,
                                    tag="pool")
            assert pool.join_idle(timeout=60.0)
            assert not pool.errors, pool.errors
        assert all(response.status == STATUS_OK for response in responses)
        pumps = gateway.metrics()["transport"]["pumps"]
        router = system.simulator.router
        busy_lanes = {str(router.shard_of(m)) for m in tables}
        assert {lane for lane, stats in pumps.items()
                if stats["commits"] > 0} == busy_lanes

    def test_classic_pool_unchanged(self):
        system = _build_system(shards=1, patients=2)
        gateway = SharingGateway(system, max_batch_size=4)
        doctor = gateway.open_session("doctor")
        tables = sorted(system.agreement_ids)
        with GatewayWorkerPool(gateway, workers=2) as pool:
            responses = _submit_all(gateway, doctor, tables, rounds=3,
                                    tag="classic")
            assert pool.join_idle(timeout=60.0)
        assert all(response.status == STATUS_OK for response in responses)
        assert set(gateway.metrics()["transport"]["pumps"]) == {"all"}


class TestPerShardAsyncPumps:
    def test_per_lane_pumps_seal_their_own_lanes(self):
        async def run():
            system = _build_system(shards=3)
            agw = AsyncSharingGateway(system, seal_depth=4, per_shard=True,
                                      max_batch_size=4)
            tables = sorted(system.agreement_ids)
            router = system.simulator.router
            async with agw:
                doctor = agw.open_session("doctor")
                futures = []
                for round_number in range(4):
                    for metadata_id in tables:
                        patient_id = int(metadata_id.split(":")[1])
                        futures.append(agw.submit_nowait(
                            doctor, UpdateEntryRequest(
                                metadata_id=metadata_id, key=(patient_id,),
                                updates={"clinical_data": f"a-{round_number}",
                                         "dosage": f"a-{round_number}"})))
                responses = await asyncio.gather(*futures)
                await agw.drain()
            assert all(r.status == STATUS_OK for r in responses)
            assert not agw.commit_errors, agw.commit_errors
            stats = agw.statistics()
            assert stats["per_shard"] is True
            busy_lanes = {str(router.shard_of(m)) for m in tables}
            assert set(stats["sealed_by_lane"]) <= busy_lanes
            assert sum(count
                       for lane in stats["sealed_by_lane"].values()
                       for count in lane.values()) == agw.commits
            assert agw.commits > 0

        asyncio.run(run())

    def test_single_shard_per_shard_degenerates_to_one_pump(self):
        async def run():
            system = _build_system(shards=1, patients=2)
            agw = AsyncSharingGateway(system, seal_depth=4, per_shard=True,
                                      max_batch_size=4)
            async with agw:
                assert len(agw._pump_tasks) == 1
                doctor = agw.open_session("doctor")
                tables = sorted(system.agreement_ids)
                futures = []
                for metadata_id in tables:
                    patient_id = int(metadata_id.split(":")[1])
                    futures.append(agw.submit_nowait(
                        doctor, UpdateEntryRequest(
                            metadata_id=metadata_id, key=(patient_id,),
                            updates={"clinical_data": "single",
                                     "dosage": "single"})))
                responses = await asyncio.gather(*futures)
                await agw.drain()
            assert all(r.status == STATUS_OK for r in responses)
            stats = agw.statistics()
            assert stats["per_shard"] is True
            assert set(stats["sealed_by_lane"]) <= {"all"}

        asyncio.run(run())

    def test_classic_async_stats_have_no_lane_keys(self):
        async def run():
            system = _build_system(shards=1, patients=2)
            agw = AsyncSharingGateway(system, seal_depth=2, max_batch_size=4)
            async with agw:
                await agw.drain()
            stats = agw.statistics()
            assert "per_shard" not in stats
            assert "sealed_by_lane" not in stats

        asyncio.run(run())
