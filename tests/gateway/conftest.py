"""Fixtures for the gateway test package."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core.scenario import build_extended_scenario, build_paper_scenario
from repro.gateway import SharingGateway
from repro.workloads.topology import TopologySpec, build_topology_system


@pytest.fixture
def paper_gateway():
    """A gateway over a fresh Fig. 1 system (fast blocks)."""
    system = build_paper_scenario(SystemConfig.private_chain(1.0))
    return SharingGateway(system)


@pytest.fixture
def extended_gateway():
    """A gateway over the CARE/STUDY cascade scenario."""
    system = build_extended_scenario(SystemConfig.private_chain(1.0))
    return SharingGateway(system)


@pytest.fixture
def topology_gateway():
    """A gateway over a 4-patient hub topology (4 independent shared tables)."""
    system = build_topology_system(TopologySpec(patients=4, researchers=0),
                                   SystemConfig.private_chain(1.0))
    return SharingGateway(system, max_batch_size=8)
