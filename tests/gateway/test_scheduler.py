"""The write scheduler: grouping, batching limits and conflict serialisation."""

from repro.gateway.requests import (
    DeleteEntryRequest,
    InsertEntryRequest,
    UpdateEntryRequest,
)
from repro.gateway.scheduler import PendingWrite, WriteScheduler


def _write(request_id, peer, request, enqueued_at=0.0):
    return PendingWrite(request_id=request_id, tenant=peer, peer=peer,
                        request=request, enqueued_at=enqueued_at)


def _update(metadata_id, key, attribute="clinical_data", value="x"):
    return UpdateEntryRequest(metadata_id=metadata_id, key=key,
                              updates={attribute: value})


class TestGrouping:
    def test_same_peer_same_table_edits_fold_into_one_group(self):
        scheduler = WriteScheduler()
        for index, key in enumerate([(1,), (2,), (3,)]):
            scheduler.enqueue(_write(f"r{index}", "doctor", _update("T1", key)))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert len(plan.groups[0].edits) == 3
        assert plan.size == 3
        assert scheduler.queue_depth == 0

    def test_different_tables_become_parallel_groups(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "patient-1", _update("T1", (1,))))
        scheduler.enqueue(_write("r2", "patient-2", _update("T2", (2,))))
        scheduler.enqueue(_write("r3", "patient-3", _update("T3", (3,))))
        plan = scheduler.plan()
        assert len(plan.groups) == 3
        assert {group.metadata_id for group in plan.groups} == {"T1", "T2", "T3"}

    def test_operations_do_not_mix_within_a_group(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,))))
        scheduler.enqueue(_write("r2", "doctor", DeleteEntryRequest("T1", (2,))))
        plan = scheduler.plan()
        # The delete on the same table is deferred behind the update batch.
        assert len(plan.groups) == 1
        assert plan.groups[0].operation == "update"
        assert plan.deferred == 1
        assert scheduler.queue_depth == 1
        follow_up = scheduler.plan()
        assert follow_up.groups[0].operation == "delete"

    def test_inserts_group_together(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", InsertEntryRequest("T1", {"id": 5})))
        scheduler.enqueue(_write("r2", "doctor", InsertEntryRequest("T1", {"id": 6})))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert plan.groups[0].operation == "create"
        assert len(plan.groups[0].edits) == 2


class TestConflictSerialisation:
    def test_same_key_writes_serialise_across_batches_in_order(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("first", "doctor", _update("T1", (1,), value="v1")))
        scheduler.enqueue(_write("second", "doctor", _update("T1", (1,), value="v2")))
        scheduler.enqueue(_write("third", "doctor", _update("T1", (1,), value="v3")))
        batches = []
        while scheduler.queue_depth or not batches or not batches[-1].is_empty:
            plan = scheduler.plan()
            if plan.is_empty:
                break
            batches.append(plan)
        order = [plan.members[0][0].request_id for plan in batches]
        assert order == ["first", "second", "third"]
        assert all(len(plan.groups[0].edits) == 1 for plan in batches)

    def test_two_peers_on_one_table_serialise(self):
        """The contract accepts one operation per shared table per round
        (pending acknowledgements), so the planner defers the second peer."""
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,), "dosage")))
        scheduler.enqueue(_write("r2", "patient", _update("T1", (2,), "clinical_data")))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert plan.groups[0].peer == "doctor"
        assert plan.deferred == 1
        next_plan = scheduler.plan()
        assert next_plan.groups[0].peer == "patient"

    def test_deferred_write_blocks_younger_same_key_writes(self):
        """A write deferred by the table claim still owns its row key: a
        younger write on that key must not overtake it into the batch (it
        would be overwritten when the older write commits later)."""
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("W1", "A", _update("T", (1,))))
        scheduler.enqueue(_write("W2", "B", _update("T", (2,))))  # deferred (table)
        scheduler.enqueue(_write("W3", "A", _update("T", (2,))))  # same key as W2
        first = scheduler.plan()
        assert [m.request_id for m in first.members[0]] == ["W1"]
        second = scheduler.plan()
        assert [m.request_id for m in second.members[0]] == ["W2"]
        third = scheduler.plan()
        assert [m.request_id for m in third.members[0]] == ["W3"]

    def test_deferral_does_not_lose_or_reorder_writes(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("a", "doctor", _update("T1", (1,))))
        scheduler.enqueue(_write("b", "patient", _update("T1", (1,))))
        scheduler.enqueue(_write("c", "doctor", _update("T2", (9,))))
        plan = scheduler.plan()
        # T1/doctor and T2/doctor commit; T1/patient waits its turn.
        assert {group.metadata_id for group in plan.groups} == {"T1", "T2"}
        assert scheduler.queue_depth == 1
        assert scheduler.pending()[0].request_id == "b"


class TestLimits:
    def test_max_batch_size_bounds_the_plan(self):
        scheduler = WriteScheduler(max_batch_size=2)
        for index in range(5):
            scheduler.enqueue(_write(f"r{index}", "p", _update("T1", (index,))))
        plan = scheduler.plan()
        assert plan.size == 2
        assert scheduler.queue_depth == 3

    def test_max_edits_per_group_spills_to_next_batch(self):
        scheduler = WriteScheduler(max_edits_per_group=2)
        for index in range(3):
            scheduler.enqueue(_write(f"r{index}", "p", _update("T1", (index,))))
        plan = scheduler.plan()
        assert len(plan.groups[0].edits) == 2
        assert plan.deferred == 1

    def test_queue_metrics(self):
        scheduler = WriteScheduler()
        for index in range(4):
            scheduler.enqueue(_write(f"r{index}", "p", _update("T1", (index,))))
        assert scheduler.enqueued_total == 4
        assert scheduler.max_queue_depth == 4
        scheduler.plan()
        assert scheduler.queue_depth == 0
        assert scheduler.max_queue_depth == 4
