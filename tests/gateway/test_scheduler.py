"""The write scheduler: grouping, batching limits and conflict serialisation."""

from repro.gateway.requests import (
    DeleteEntryRequest,
    InsertEntryRequest,
    UpdateEntryRequest,
)
from repro.gateway.scheduler import PendingWrite, WriteScheduler


def _write(request_id, peer, request, enqueued_at=0.0):
    return PendingWrite(request_id=request_id, tenant=peer, peer=peer,
                        request=request, enqueued_at=enqueued_at)


def _update(metadata_id, key, attribute="clinical_data", value="x"):
    return UpdateEntryRequest(metadata_id=metadata_id, key=key,
                              updates={attribute: value})


class TestGrouping:
    def test_same_peer_same_table_edits_fold_into_one_group(self):
        scheduler = WriteScheduler()
        for index, key in enumerate([(1,), (2,), (3,)]):
            scheduler.enqueue(_write(f"r{index}", "doctor", _update("T1", key)))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert len(plan.groups[0].edits) == 3
        assert plan.size == 3
        assert scheduler.queue_depth == 0

    def test_different_tables_become_parallel_groups(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "patient-1", _update("T1", (1,))))
        scheduler.enqueue(_write("r2", "patient-2", _update("T2", (2,))))
        scheduler.enqueue(_write("r3", "patient-3", _update("T3", (3,))))
        plan = scheduler.plan()
        assert len(plan.groups) == 3
        assert {group.metadata_id for group in plan.groups} == {"T1", "T2", "T3"}

    def test_operations_do_not_mix_within_a_group(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,))))
        scheduler.enqueue(_write("r2", "doctor", DeleteEntryRequest("T1", (2,))))
        plan = scheduler.plan()
        # The delete on the same table is deferred behind the update batch.
        assert len(plan.groups) == 1
        assert plan.groups[0].operation == "update"
        assert plan.deferred == 1
        assert scheduler.queue_depth == 1
        follow_up = scheduler.plan()
        assert follow_up.groups[0].operation == "delete"

    def test_inserts_group_together(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", InsertEntryRequest("T1", {"id": 5})))
        scheduler.enqueue(_write("r2", "doctor", InsertEntryRequest("T1", {"id": 6})))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert plan.groups[0].operation == "create"
        assert len(plan.groups[0].edits) == 2


class TestConflictSerialisation:
    def test_same_key_writes_serialise_across_batches_in_order(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("first", "doctor", _update("T1", (1,), value="v1")))
        scheduler.enqueue(_write("second", "doctor", _update("T1", (1,), value="v2")))
        scheduler.enqueue(_write("third", "doctor", _update("T1", (1,), value="v3")))
        batches = []
        while scheduler.queue_depth or not batches or not batches[-1].is_empty:
            plan = scheduler.plan()
            if plan.is_empty:
                break
            batches.append(plan)
        order = [plan.members[0][0].request_id for plan in batches]
        assert order == ["first", "second", "third"]
        assert all(len(plan.groups[0].edits) == 1 for plan in batches)

    def test_two_peers_with_overlapping_columns_serialise(self):
        """Overlapping attribute sets cannot fold: the second peer's write on
        the same column waits for the next batch (no lost updates)."""
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,), "clinical_data")))
        scheduler.enqueue(_write("r2", "patient", _update("T1", (2,), "clinical_data")))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert plan.groups[0].peer == "doctor"
        assert not plan.groups[0].folded
        assert plan.deferred == 1
        next_plan = scheduler.plan()
        assert next_plan.groups[0].peer == "patient"

    def test_two_peers_on_one_table_serialise_with_folding_disabled(self):
        """With the fold rule off, a shared table is owned by one peer per
        batch even when the attribute sets are disjoint (the pre-folding
        behaviour)."""
        scheduler = WriteScheduler(fold_cross_peer=False)
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,), "dosage")))
        scheduler.enqueue(_write("r2", "patient", _update("T1", (2,), "clinical_data")))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert plan.groups[0].peer == "doctor"
        assert plan.deferred == 1
        assert scheduler.folded_writes_total == 0
        next_plan = scheduler.plan()
        assert next_plan.groups[0].peer == "patient"

    def test_deferred_write_blocks_younger_same_key_writes(self):
        """A write deferred by the table claim still owns its row key: a
        younger write on that key must not overtake it into the batch (it
        would be overwritten when the older write commits later)."""
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("W1", "A", _update("T", (1,))))
        scheduler.enqueue(_write("W2", "B", _update("T", (2,))))  # deferred (table)
        scheduler.enqueue(_write("W3", "A", _update("T", (2,))))  # same key as W2
        first = scheduler.plan()
        assert [m.request_id for m in first.members[0]] == ["W1"]
        second = scheduler.plan()
        assert [m.request_id for m in second.members[0]] == ["W2"]
        third = scheduler.plan()
        assert [m.request_id for m in third.members[0]] == ["W3"]

    def test_deferral_does_not_lose_or_reorder_writes(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("a", "doctor", _update("T1", (1,))))
        scheduler.enqueue(_write("b", "patient", _update("T1", (1,))))
        scheduler.enqueue(_write("c", "doctor", _update("T2", (9,))))
        plan = scheduler.plan()
        # T1/doctor and T2/doctor commit; T1/patient waits its turn.
        assert {group.metadata_id for group in plan.groups} == {"T1", "T2"}
        assert scheduler.queue_depth == 1
        assert scheduler.pending()[0].request_id == "b"


class TestCrossPeerFolding:
    """The cross-peer merge rule: disjoint column sets on distinct rows fold
    into one group; anything that could lose an update still serialises."""

    def test_disjoint_columns_different_peers_fold_into_one_group(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,), "dosage")))
        scheduler.enqueue(_write("r2", "patient", _update("T1", (2,), "clinical_data")))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.folded
        assert group.peer == "doctor"  # requester = first arrival
        assert group.edit_peers == ("doctor", "patient")
        assert group.contributors == ("doctor", "patient")
        assert plan.deferred == 0
        assert plan.folded_writes == 1
        assert scheduler.folded_writes_total == 1
        assert scheduler.fold_rounds_saved == 2

    def test_overlapping_columns_still_serialise(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,), "dosage")))
        scheduler.enqueue(_write("r2", "patient",
                                 UpdateEntryRequest(metadata_id="T1", key=(2,),
                                                    updates={"dosage": "x",
                                                             "clinical_data": "y"})))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert not plan.groups[0].folded
        assert plan.deferred == 1
        assert scheduler.folded_writes_total == 0

    def test_same_conflict_key_still_serialises_across_batches(self):
        """Two peers editing the same row never share a batch, whatever the
        columns — the second write would silently win otherwise."""
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,), "dosage")))
        scheduler.enqueue(_write("r2", "patient", _update("T1", (1,), "clinical_data")))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert not plan.groups[0].folded
        assert plan.deferred == 1
        follow_up = scheduler.plan()
        assert follow_up.groups[0].peer == "patient"

    def test_folded_peer_keeps_adding_disjoint_edits(self):
        """Once folded in, a contributor's further writes on its own columns
        and fresh rows join the same group (no extra rounds-saved credit)."""
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,), "dosage")))
        scheduler.enqueue(_write("r2", "patient", _update("T1", (2,), "clinical_data")))
        scheduler.enqueue(_write("r3", "patient", _update("T1", (3,), "clinical_data")))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert plan.groups[0].edit_peers == ("doctor", "patient", "patient")
        assert plan.folded_writes == 2
        assert scheduler.fold_rounds_saved == 2  # one extra contributor, once

    def test_creates_and_deletes_never_fold_across_peers(self):
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,), "dosage")))
        scheduler.enqueue(_write("r2", "patient", InsertEntryRequest("T1", {"id": 9})))
        scheduler.enqueue(_write("r3", "patient", DeleteEntryRequest("T1", (2,))))
        plan = scheduler.plan()
        assert len(plan.groups) == 1
        assert not plan.groups[0].folded
        assert plan.deferred == 2

    def test_fold_never_reorders_a_tenants_writes_on_one_table(self):
        """Once a peer has a deferred write on a table, its later writes on
        that table defer too — folding must not let a tenant's newer write
        overtake its older one on-chain."""
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("W1", "doctor", _update("T1", (1,), "dosage")))
        # W2 overlaps the doctor's column -> deferred.
        scheduler.enqueue(_write("W2", "patient", _update("T1", (2,), "dosage")))
        # W3 would fold (disjoint column), but W2 must commit first.
        scheduler.enqueue(_write("W3", "patient", _update("T1", (3,), "clinical_data")))
        first = scheduler.plan()
        assert [m.request_id for m in first.members[0]] == ["W1"]
        assert first.deferred == 2
        second = scheduler.plan()
        assert [m.request_id for members in second.members for m in members] == ["W2", "W3"]

    def test_cross_column_claim_after_fold_stays_disjoint(self):
        """A second doctor write on a column the patient already claimed in
        the folded group must defer."""
        scheduler = WriteScheduler()
        scheduler.enqueue(_write("r1", "doctor", _update("T1", (1,), "dosage")))
        scheduler.enqueue(_write("r2", "patient", _update("T1", (2,), "clinical_data")))
        scheduler.enqueue(_write("r3", "doctor", _update("T1", (3,), "clinical_data")))
        plan = scheduler.plan()
        assert plan.groups[0].edit_peers == ("doctor", "patient")
        assert plan.deferred == 1

    def test_queue_depth_by_shard(self):
        from repro.ledger.sharding import ShardRouter

        scheduler = WriteScheduler()
        router = ShardRouter(4)
        tables = ["T1", "T2", "T3"]
        for index, table in enumerate(tables):
            scheduler.enqueue(_write(f"r{index}", "doctor", _update(table, (1,))))
        depths = scheduler.queue_depth_by_shard(router)
        assert set(depths) == {0, 1, 2, 3}
        assert sum(depths.values()) == 3
        for table in tables:
            assert depths[router.shard_of(table)] >= 1

    def test_snapshots_survive_concurrent_queue_churn(self):
        """Per-shard depth (and the other iterating snapshots) must not blow
        up with 'deque mutated during iteration' while enqueue/plan churn the
        queue from another thread — that error killed lane pumps silently."""
        import threading

        from repro.ledger.sharding import ShardRouter

        scheduler = WriteScheduler(max_batch_size=4)
        router = ShardRouter(4)
        errors = []
        done = threading.Event()

        def churn():
            try:
                for index in range(3000):
                    scheduler.enqueue(_write(
                        f"r{index}", f"p{index % 3}",
                        _update(f"T{index % 5}", (index,))))
                    if index % 5 == 0:
                        scheduler.plan()
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)
            finally:
                done.set()

        def snapshot():
            try:
                while not done.is_set():
                    depths = scheduler.queue_depth_by_shard(router)
                    # Each snapshot is internally consistent; counts across
                    # *separate* snapshots may differ (the queue moves on).
                    assert sum(depths.values()) >= 0
                    scheduler.pending()
                    scheduler.queued_by_tenant()
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        threads = ([threading.Thread(target=churn)]
                   + [threading.Thread(target=snapshot) for _ in range(2)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestLimits:
    def test_max_batch_size_bounds_the_plan(self):
        scheduler = WriteScheduler(max_batch_size=2)
        for index in range(5):
            scheduler.enqueue(_write(f"r{index}", "p", _update("T1", (index,))))
        plan = scheduler.plan()
        assert plan.size == 2
        assert scheduler.queue_depth == 3

    def test_max_edits_per_group_spills_to_next_batch(self):
        scheduler = WriteScheduler(max_edits_per_group=2)
        for index in range(3):
            scheduler.enqueue(_write(f"r{index}", "p", _update("T1", (index,))))
        plan = scheduler.plan()
        assert len(plan.groups[0].edits) == 2
        assert plan.deferred == 1

    def test_queue_metrics(self):
        scheduler = WriteScheduler()
        for index in range(4):
            scheduler.enqueue(_write(f"r{index}", "p", _update("T1", (index,))))
        assert scheduler.enqueued_total == 4
        assert scheduler.max_queue_depth == 4
        scheduler.plan()
        assert scheduler.queue_depth == 0
        assert scheduler.max_queue_depth == 4
