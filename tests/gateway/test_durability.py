"""Gateway durability: response journaling, retention-cap eviction, restart
recovery of ``get_response``, and the journal/listener happens-before."""

from __future__ import annotations

import asyncio

import pytest

from repro.config import DurabilityConfig, SystemConfig
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, build_paper_scenario
from repro.gateway import AsyncSharingGateway, SharingGateway
from repro.gateway.requests import (
    ReadViewRequest,
    UpdateEntryRequest,
)


def _fresh_system():
    return build_paper_scenario(SystemConfig.private_chain(1.0))


def _read():
    return ReadViewRequest(metadata_id=DOCTOR_RESEARCHER_TABLE)


def _update(suffix):
    return UpdateEntryRequest(metadata_id=DOCTOR_RESEARCHER_TABLE,
                              key=("Ibuprofen",),
                              updates={"mechanism_of_action": f"MeA-{suffix}"})


class TestJournaling:
    def test_terminal_responses_reach_the_journal(self, tmp_path):
        gateway = SharingGateway(_fresh_system(), state_dir=tmp_path)
        session = gateway.open_session("researcher")
        read = gateway.submit(session, _read())
        write = gateway.submit(session, _update(1))
        gateway.drain()
        for response in (read, write):
            journaled = gateway.journal.lookup(response.request_id)
            assert journaled is not None
            assert journaled.canonical() == response.canonical()
        assert gateway.responses_journaled == 2

    def test_journal_happens_before_terminal_listeners(self, tmp_path):
        """A listener woken by a terminal response must already be able to
        read that response from the WAL (the async transport resolves
        futures there; a future holder may immediately crash-restart)."""
        gateway = SharingGateway(_fresh_system(), state_dir=tmp_path)
        session = gateway.open_session("researcher")
        seen = []

        def listener(response):
            seen.append(gateway.journal.lookup(response.request_id) is not None)

        gateway.subscribe_terminal(listener)
        gateway.submit(session, _update(1))
        gateway.drain()
        assert seen and all(seen)

    def test_no_state_dir_means_no_journal(self):
        gateway = SharingGateway(_fresh_system())
        assert gateway.journal is None
        session = gateway.open_session("researcher")
        response = gateway.submit(session, _read())
        assert gateway.get_response(response.request_id) is response
        assert gateway.get_response("req-999999") is None

    def test_metrics_expose_durability_section(self, tmp_path):
        gateway = SharingGateway(_fresh_system(), state_dir=tmp_path)
        session = gateway.open_session("researcher")
        gateway.submit(session, _update(1))
        gateway.drain()
        durability = gateway.metrics()["durability"]
        assert durability["enabled"]
        assert durability["responses_journaled"] == 1
        assert durability["wal_bytes"] > 0
        assert durability["journal_syncs"] >= 1
        assert durability["recovery_seconds"] >= 0.0

    def test_config_defaults_flow_from_system(self, tmp_path):
        config = SystemConfig(
            ledger=SystemConfig.private_chain(1.0).ledger,
            durability=DurabilityConfig(state_dir=str(tmp_path / "gw"),
                                        fsync_policy="always",
                                        response_retention=5))
        gateway = SharingGateway(build_paper_scenario(config))
        assert gateway.journal is not None
        assert gateway.fsync_policy == "always"
        assert gateway.max_responses == 5


class TestRetentionCap:
    def test_journaled_terminals_evicted_and_still_answerable(self, tmp_path):
        gateway = SharingGateway(_fresh_system(), state_dir=tmp_path,
                                 max_responses=2)
        session = gateway.open_session("researcher")
        responses = [gateway.submit(session, _read()) for _ in range(5)]
        metrics = gateway.metrics()
        assert metrics["durability"]["responses_in_memory"] <= 2
        assert metrics["durability"]["responses_evicted"] >= 3
        for response in responses:
            recovered = gateway.get_response(response.request_id)
            assert recovered is not None
            assert recovered.canonical() == response.canonical()
        # The in-memory store forgot the evicted ones (result() still
        # answers them — it falls back to the journal like get_response).
        assert responses[0].request_id not in gateway._responses
        assert gateway.result(responses[0].request_id) is not None

    def test_queued_writes_never_evicted(self, tmp_path):
        gateway = SharingGateway(_fresh_system(), state_dir=tmp_path,
                                 max_responses=1)
        session = gateway.open_session("researcher")
        queued = gateway.submit(session, _update(1))
        for _ in range(3):
            gateway.submit(session, _read())
        assert gateway.result(queued.request_id) is queued  # still in memory
        gateway.drain()
        assert queued.terminal

    def test_unjournaled_gateway_cap_drops(self):
        gateway = SharingGateway(_fresh_system(), max_responses=2)
        session = gateway.open_session("researcher")
        first = gateway.submit(session, _read())
        for _ in range(4):
            gateway.submit(session, _read())
        assert len(gateway._responses) <= 2
        assert gateway.responses_evicted >= 3
        assert gateway.get_response(first.request_id) is None

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            SharingGateway(_fresh_system(), max_responses=0)


def _durable_config(tmp_path, **durability_kwargs):
    return SystemConfig(
        ledger=SystemConfig.private_chain(1.0).ledger,
        durability=DurabilityConfig(state_dir=str(tmp_path / "state"),
                                    **durability_kwargs))


class TestBackgroundMaintenance:
    """WAL-size / sim-time triggered checkpoints and response-journal
    compaction, run inline at the gateway's commit boundaries."""

    def test_wal_size_trigger_checkpoints_peer_databases(self, tmp_path):
        config = _durable_config(tmp_path, checkpoint_wal_bytes=256)
        gateway = SharingGateway(build_paper_scenario(config))
        session = gateway.open_session("researcher")
        for i in range(4):
            gateway.submit(session, _update(i))
            gateway.drain()
        durability = gateway.metrics()["durability"]
        assert durability["checkpoints"] >= 1
        # Checkpointing truncated the covered WAL prefix.
        assert durability["checkpoint_segments_removed"] >= 1

    def test_interval_trigger_checkpoints_on_sim_time(self, tmp_path):
        # block_interval=1.0 advances the simulated clock past 0.5s per
        # drain, so the second commit boundary is due even with a WAL far
        # below any byte threshold.
        config = _durable_config(tmp_path, checkpoint_interval=0.5)
        gateway = SharingGateway(build_paper_scenario(config))
        session = gateway.open_session("researcher")
        gateway.submit(session, _update(1))
        gateway.drain()  # first boundary: baselines the per-peer timer
        gateway.submit(session, _update(2))
        gateway.drain()  # second boundary: >= 0.5 sim-seconds later
        assert gateway.metrics()["durability"]["checkpoints"] >= 1

    def test_crash_window_after_checkpoint_recovers_exactly(self, tmp_path):
        """Writes committed *after* the last checkpoint live only in the WAL
        tail; a crash-restart must replay them on top of the snapshot."""
        config = _durable_config(tmp_path, checkpoint_wal_bytes=256)
        gateway = SharingGateway(build_paper_scenario(config))
        session = gateway.open_session("researcher")
        for i in range(4):
            gateway.submit(session, _update(i))
            gateway.drain()
        assert gateway.metrics()["durability"]["checkpoints"] >= 1
        # The crash window: one more committed write, no checkpoint after
        # (the fresh post-truncate WAL is far below the byte threshold).
        final = gateway.submit(session, _update("final"))
        gateway.drain()
        assert final.ok
        gateway.system.sync_durability()
        # Crash: abandon the gateway/system, recover each peer from disk
        # alone (checkpoint snapshot + WAL-tail replay).
        from repro.relational.durability import recover
        for peer in gateway.system.peers:
            peer_dir = tmp_path / "state" / "peers" / peer.name
            recovered = recover(peer_dir).database
            assert set(recovered.table_names) == set(peer.database.table_names)
            for name in sorted(peer.database.table_names):
                assert (recovered.table(name).fingerprint()
                        == peer.database.table(name).fingerprint()), (
                    f"peer {peer.name} table {name} diverged after recovery")

    def test_journal_compaction_triggers_and_keeps_answerability(self, tmp_path):
        config = _durable_config(tmp_path, journal_compact_bytes=512)
        gateway = SharingGateway(build_paper_scenario(config), max_responses=4)
        session = gateway.open_session("researcher")
        responses = []
        for i in range(8):
            responses.append(gateway.submit(session, _read()))
            responses.append(gateway.submit(session, _update(i)))
            gateway.drain()
        durability = gateway.metrics()["durability"]
        assert durability["journal_compactions"] >= 1
        assert durability["journal_bytes_reclaimed"] > 0
        # The newest ``max_responses`` responses survive compaction — across
        # a crash-restart too (the journal recovers independently of the
        # peer databases).
        restarted = SharingGateway(_fresh_system(),
                                   state_dir=tmp_path / "state",
                                   max_responses=4)
        for response in responses[-4:]:
            recovered = restarted.get_response(response.request_id)
            assert recovered is not None
            assert recovered.canonical() == response.canonical()

    def test_maintenance_disabled_by_default(self, tmp_path):
        gateway = SharingGateway(_fresh_system(), state_dir=tmp_path)
        session = gateway.open_session("researcher")
        gateway.submit(session, _update(1))
        gateway.drain()
        durability = gateway.metrics()["durability"]
        assert durability["checkpoints"] == 0
        assert durability["journal_compactions"] == 0
        assert durability["journal_bytes_reclaimed"] == 0


class TestRestartRecovery:
    def test_recovered_gateway_answers_old_request_ids(self, tmp_path):
        gateway = SharingGateway(_fresh_system(), state_dir=tmp_path)
        session = gateway.open_session("researcher")
        responses = [gateway.submit(session, _read()),
                     gateway.submit(session, _update(1))]
        gateway.drain()
        responses.append(gateway.submit(session, _read()))
        gateway.close()  # clean shutdown; crash-style restarts live in
        # tests/integration/test_crash_recovery.py

        restarted = SharingGateway(_fresh_system(), state_dir=tmp_path)
        for response in responses:
            recovered = restarted.get_response(response.request_id)
            assert recovered is not None
            assert recovered.canonical() == response.canonical()
        assert restarted.journal.recovered_responses == 3

    def test_request_ids_continue_after_restart(self, tmp_path):
        gateway = SharingGateway(_fresh_system(), state_dir=tmp_path)
        session = gateway.open_session("researcher")
        last = gateway.submit(session, _read())
        gateway.close()
        restarted = SharingGateway(_fresh_system(), state_dir=tmp_path)
        fresh = restarted.submit(restarted.open_session("researcher"), _read())
        last_number = int(last.request_id.rsplit("-", 1)[-1])
        fresh_number = int(fresh.request_id.rsplit("-", 1)[-1])
        assert fresh_number == last_number + 1

    def test_async_gateway_state_dir_round_trip(self, tmp_path):
        async def scenario():
            system = _fresh_system()
            async with AsyncSharingGateway(system, state_dir=tmp_path,
                                           idle_timeout=0.01) as front:
                session = front.open_session("researcher")
                response = await front.submit(session, _update(1))
                assert response.ok
                return response

        response = asyncio.run(scenario())
        restarted = SharingGateway(_fresh_system(), state_dir=tmp_path)
        recovered = restarted.get_response(response.request_id)
        assert recovered is not None
        assert recovered.canonical() == response.canonical()
