"""The view cache: read-through behaviour and propagation-driven invalidation."""

import pytest

from repro.core.scenario import (
    CARE_TABLE,
    PATIENT_DOCTOR_TABLE,
    STUDY_TABLE,
)
from repro.gateway.cache import ViewCache
from repro.gateway.requests import ReadViewRequest, UpdateEntryRequest
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def _table(name="V", rows=((1, "a"),)):
    schema = Schema(columns=(Column("id", DataType.INTEGER, nullable=False),
                             Column("v", DataType.STRING)), primary_key=("id",))
    return Table(name, schema, [{"id": i, "v": v} for i, v in rows])


class TestViewCacheUnit:
    def test_read_through_and_hit_rate(self):
        cache = ViewCache()
        loads = []

        def loader():
            loads.append(1)
            return _table()

        first = cache.get("doctor", "T1", loader)
        second = cache.get("doctor", "T1", loader)
        assert first is second
        assert len(loads) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_entries_are_per_peer(self):
        cache = ViewCache()
        cache.get("doctor", "T1", _table)
        cache.get("patient", "T1", _table)
        assert cache.misses == 2
        assert len(cache) == 2

    def test_invalidate_drops_every_peer_view_of_the_table(self):
        cache = ViewCache()
        cache.get("doctor", "T1", _table)
        cache.get("patient", "T1", _table)
        cache.get("doctor", "T2", _table)
        assert cache.invalidate("T1") == 2
        assert len(cache) == 1
        assert cache.peek("doctor", "T2") is not None
        assert cache.invalidations == 2

    def test_disabled_cache_always_loads(self):
        cache = ViewCache(enabled=False)
        loads = []
        for _ in range(3):
            cache.get("doctor", "T1", lambda: loads.append(1) or _table())
        assert len(loads) == 3
        assert len(cache) == 0

    def test_patch_rewrites_only_touched_rows(self):
        from repro.relational.diff import RowChange, TableDiff

        cache = ViewCache()
        cache.get("doctor", "T1", lambda: _table(rows=((1, "a"), (2, "b"))))
        cache.get("patient", "T1", lambda: _table(rows=((1, "a"), (2, "b"))))
        diff = TableDiff("T1", (
            RowChange("update", (1,), {"id": 1, "v": "a"}, {"id": 1, "v": "a2"}, ("v",)),
            RowChange("insert", (3,), None, {"id": 3, "v": "c"}),
        ))
        assert cache.patch("T1", diff) == 2
        assert cache.patches == 2
        for peer in ("doctor", "patient"):
            patched = cache.peek(peer, "T1")
            assert patched.get((1,))["v"] == "a2"
            assert patched.get((3,))["v"] == "c"
            assert len(patched) == 3
        assert cache.invalidations == 0

    def test_patch_drops_entries_the_diff_conflicts_with(self):
        from repro.relational.diff import RowChange, TableDiff

        cache = ViewCache()
        cache.get("doctor", "T1", lambda: _table(rows=((1, "a"),)))
        conflicting = TableDiff("T1", (
            RowChange("delete", (99,), {"id": 99, "v": "?"}, None),))
        assert cache.patch("T1", conflicting) == 0
        assert cache.peek("doctor", "T1") is None   # dropped, never stale
        assert cache.invalidations == 1

    def test_on_shared_diff_without_diff_invalidates(self):
        cache = ViewCache()
        cache.get("doctor", "T1", _table)
        cache.on_shared_diff("T1", "update", ("doctor", "patient"), None)
        assert cache.peek("doctor", "T1") is None
        assert cache.invalidations == 1


class TestPatchingThroughWorkflow:
    def test_update_patches_both_peers_views_in_place(self, paper_gateway):
        """A committed update hands its TableDiff to the cache, which rewrites
        only the touched rows of both peers' cached views — the entries stay
        resident and the next read is a warm hit on fresh data."""
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        patient = gateway.open_session("patient")
        read = ReadViewRequest(PATIENT_DOCTOR_TABLE)
        gateway.submit(doctor, read)
        gateway.submit(patient, read)
        assert len(gateway.cache) == 2
        gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "two tablets every 6h"}))
        gateway.drain()
        for peer in ("doctor", "patient"):
            cached = gateway.cache.peek(peer, PATIENT_DOCTOR_TABLE)
            assert cached is not None
            assert cached.get((188,))["dosage"] == "two tablets every 6h"
        assert gateway.cache.patches == 2
        # The next read is a *hit* and still sees the committed value.
        hits_before = gateway.cache.hits
        response = gateway.submit(patient, read)
        assert gateway.cache.hits == hits_before + 1
        rows = response.payload["table"]["rows"]
        assert rows[0]["dosage"] == "two tablets every 6h"

    def test_cascaded_propagation_patches_dependent_views(self, extended_gateway):
        """A researcher dosage update cascades STUDY → doctor's D3 → CARE
        (Fig. 5 step 6); the patient's cached CARE view is patched with the
        cascaded diff rather than dropped."""
        gateway = extended_gateway
        researcher = gateway.open_session("researcher")
        patient = gateway.open_session("patient")
        gateway.submit(patient, ReadViewRequest(CARE_TABLE))
        gateway.submit(researcher, ReadViewRequest(STUDY_TABLE))
        assert gateway.cache.peek("patient", CARE_TABLE) is not None
        update = gateway.submit(researcher, UpdateEntryRequest(
            STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"}))
        gateway.drain()
        assert update.ok
        assert CARE_TABLE in update.payload["cascaded_metadata_ids"]
        # Both the updated table's view and the cascaded table's view were
        # patched in place and carry the committed dosage.
        study = gateway.cache.peek("researcher", STUDY_TABLE)
        assert study is not None and study.get((188,))["dosage"] == "two tablets every 12h"
        care = gateway.cache.peek("patient", CARE_TABLE)
        assert care is not None and care.get((188,))["dosage"] == "two tablets every 12h"
        assert gateway.cache.patches >= 2
        assert gateway.cache.invalidations == 0
        # A warm read sees the cascaded dosage without reloading.
        response = gateway.submit(patient, ReadViewRequest(CARE_TABLE))
        by_id = {row["patient_id"]: row for row in response.payload["table"]["rows"]}
        assert by_id[188]["dosage"] == "two tablets every 12h"


class TestGenerationGuard:
    """The miss path loads outside the cache lock; a load superseded by a
    patch/invalidation must not be installed (it could be stale)."""

    def test_plain_miss_installs(self):
        cache = ViewCache()
        view = cache.get("p", "m", _table)
        assert cache.peek("p", "m") is view
        assert cache.stale_loads_discarded == 0

    def test_load_superseded_by_invalidation_is_not_cached(self):
        cache = ViewCache()

        def loader():
            # A commit completes between the miss and the install.
            cache.invalidate("m")
            return _table()

        view = cache.get("p", "m", loader)
        assert view is not None          # the caller still gets the view ...
        assert cache.peek("p", "m") is None  # ... but it is not cached
        assert cache.stale_loads_discarded == 1

    def test_load_superseded_by_patch_is_not_cached(self):
        cache = ViewCache()
        from repro.relational.diff import diff_tables

        before = _table(rows=((1, "a"),))
        after = _table(rows=((1, "b"),))
        diff = diff_tables(before, after)

        def loader():
            cache.patch("m", diff)  # no entries yet, but the generation bumps
            return _table()

        cache.get("p", "m", loader)
        assert cache.peek("p", "m") is None
        assert cache.stale_loads_discarded == 1

    def test_unrelated_table_change_does_not_discard(self):
        cache = ViewCache()

        def loader():
            cache.invalidate("other")
            return _table()

        cache.get("p", "m", loader)
        assert cache.peek("p", "m") is not None
        assert cache.stale_loads_discarded == 0

    def test_patch_is_copy_on_write(self):
        from repro.relational.diff import diff_tables

        cache = ViewCache()
        held = cache.get("p", "m", lambda: _table(rows=((1, "a"),)))
        diff = diff_tables(_table(rows=((1, "a"),)), _table(rows=((1, "b"),)))
        assert cache.patch("m", diff) == 1
        # The reader's reference still shows the pre-patch snapshot; the
        # cache serves the patched copy.
        assert held.get((1,))["v"] == "a"
        assert cache.peek("p", "m").get((1,))["v"] == "b"

    def test_statistics_include_stale_loads(self):
        cache = ViewCache()
        assert "stale_loads_discarded" in cache.statistics()

    def test_flush_supersedes_in_flight_load_of_uncached_table(self):
        """invalidate_all() must also discard a miss load that was in flight
        for a table with no cached entry yet — otherwise a pre-flush view
        would be installed and served forever."""
        cache = ViewCache()

        def loader():
            cache.invalidate_all()  # the flush lands mid-load
            return _table()

        cache.get("p", "never-cached", loader)
        assert cache.peek("p", "never-cached") is None
        assert cache.stale_loads_discarded == 1


class TestStalenessSemantics:
    """Regression: a clock-less cache must report entry ages as *unknown*
    (None), never 0.0 — an unknown age has to fail a bounded-staleness
    cutoff, not trivially pass it."""

    def test_age_unknown_without_clock(self):
        cache = ViewCache()  # no clock attached
        cache.get("p", "m", _table)
        view, age = cache.peek_entry("p", "m")
        assert view is not None
        assert age is None

    def test_age_unknown_when_installed_before_clock(self):
        from repro.ledger.clock import SimClock

        cache = ViewCache()
        cache.get("p", "m", _table)  # installed clock-less
        cache.clock = SimClock(100.0)
        _, age = cache.peek_entry("p", "m")
        assert age is None  # install time was never measured

    def test_age_measured_with_clock(self):
        from repro.ledger.clock import SimClock

        cache = ViewCache()
        clock = SimClock()
        cache.clock = clock
        cache.get("p", "m", _table)
        clock.advance(3.5)
        _, age = cache.peek_entry("p", "m")
        assert age == pytest.approx(3.5)


class TestPrewarm:
    def test_prewarm_installs_and_counts(self):
        cache = ViewCache()
        assert cache.prewarm("p", "m", _table())
        assert cache.peek("p", "m") is not None
        assert cache.prewarms == 1
        assert cache.statistics()["prewarms"] == 1
        assert cache.misses == 0  # never counted as read traffic

    def test_prewarm_supersedes_in_flight_load(self):
        """A read-through load racing the commit's pre-warm must not
        overwrite the fresher pre-warmed copy."""
        cache = ViewCache()
        fresh = _table(rows=((1, "fresh"),))

        def loader():
            cache.prewarm("p", "m", fresh)  # the commit lands mid-load
            return _table(rows=((1, "stale"),))

        cache.get("p", "m", loader)
        assert cache.peek("p", "m").get((1,))["v"] == "fresh"
        assert cache.stale_loads_discarded == 1

    def test_disabled_cache_ignores_prewarm(self):
        cache = ViewCache(enabled=False)
        assert not cache.prewarm("p", "m", _table())
        assert cache.prewarms == 0
