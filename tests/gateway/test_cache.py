"""The view cache: read-through behaviour and propagation-driven invalidation."""

import pytest

from repro.core.scenario import (
    CARE_TABLE,
    PATIENT_DOCTOR_TABLE,
    STUDY_TABLE,
)
from repro.gateway.cache import ViewCache
from repro.gateway.requests import ReadViewRequest, UpdateEntryRequest
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


def _table(name="V", rows=((1, "a"),)):
    schema = Schema(columns=(Column("id", DataType.INTEGER, nullable=False),
                             Column("v", DataType.STRING)), primary_key=("id",))
    return Table(name, schema, [{"id": i, "v": v} for i, v in rows])


class TestViewCacheUnit:
    def test_read_through_and_hit_rate(self):
        cache = ViewCache()
        loads = []

        def loader():
            loads.append(1)
            return _table()

        first = cache.get("doctor", "T1", loader)
        second = cache.get("doctor", "T1", loader)
        assert first is second
        assert len(loads) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_entries_are_per_peer(self):
        cache = ViewCache()
        cache.get("doctor", "T1", _table)
        cache.get("patient", "T1", _table)
        assert cache.misses == 2
        assert len(cache) == 2

    def test_invalidate_drops_every_peer_view_of_the_table(self):
        cache = ViewCache()
        cache.get("doctor", "T1", _table)
        cache.get("patient", "T1", _table)
        cache.get("doctor", "T2", _table)
        assert cache.invalidate("T1") == 2
        assert len(cache) == 1
        assert cache.peek("doctor", "T2") is not None
        assert cache.invalidations == 2

    def test_disabled_cache_always_loads(self):
        cache = ViewCache(enabled=False)
        loads = []
        for _ in range(3):
            cache.get("doctor", "T1", lambda: loads.append(1) or _table())
        assert len(loads) == 3
        assert len(cache) == 0


class TestInvalidationThroughWorkflow:
    def test_update_invalidates_both_peers_views(self, paper_gateway):
        gateway = paper_gateway
        doctor = gateway.open_session("doctor")
        patient = gateway.open_session("patient")
        read = ReadViewRequest(PATIENT_DOCTOR_TABLE)
        gateway.submit(doctor, read)
        gateway.submit(patient, read)
        assert len(gateway.cache) == 2
        gateway.submit(doctor, UpdateEntryRequest(
            PATIENT_DOCTOR_TABLE, (188,), {"dosage": "two tablets every 6h"}))
        gateway.drain()
        assert gateway.cache.peek("doctor", PATIENT_DOCTOR_TABLE) is None
        assert gateway.cache.peek("patient", PATIENT_DOCTOR_TABLE) is None
        # The next read re-materialises the fresh view.
        response = gateway.submit(patient, read)
        rows = response.payload["table"]["rows"]
        assert rows[0]["dosage"] == "two tablets every 6h"

    def test_cascaded_propagation_invalidates_dependent_views(self, extended_gateway):
        """A researcher dosage update cascades STUDY → doctor's D3 → CARE
        (Fig. 5 step 6); the patient's cached CARE view must be dropped."""
        gateway = extended_gateway
        researcher = gateway.open_session("researcher")
        patient = gateway.open_session("patient")
        gateway.submit(patient, ReadViewRequest(CARE_TABLE))
        gateway.submit(researcher, ReadViewRequest(STUDY_TABLE))
        assert gateway.cache.peek("patient", CARE_TABLE) is not None
        update = gateway.submit(researcher, UpdateEntryRequest(
            STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"}))
        gateway.drain()
        assert update.ok
        assert CARE_TABLE in update.payload["cascaded_metadata_ids"]
        # Both the updated table's views and the cascaded table's views are gone.
        assert gateway.cache.peek("researcher", STUDY_TABLE) is None
        assert gateway.cache.peek("patient", CARE_TABLE) is None
        # A fresh read sees the cascaded dosage.
        response = gateway.submit(patient, ReadViewRequest(CARE_TABLE))
        by_id = {row["patient_id"]: row for row in response.payload["table"]["rows"]}
        assert by_id[188]["dosage"] == "two tablets every 12h"
        assert gateway.cache.invalidations >= 2
