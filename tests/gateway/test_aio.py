"""The asyncio gateway transport: futures, commit pump, triggers, parity."""

import asyncio

import pytest

from repro.config import SystemConfig
from repro.core.scenario import PATIENT_DOCTOR_TABLE, build_paper_scenario
from repro.gateway import (
    AsyncSharingGateway,
    ReadViewRequest,
    SharingGateway,
    STATUS_OK,
    STATUS_QUEUED,
    STATUS_REJECTED,
    STATUS_SHED,
    STATUS_THROTTLED,
    UpdateEntryRequest,
)
from repro.workloads.topology import TopologySpec, build_topology_system

#: Generous real-time bound for awaiting pump-driven commits in tests.
WAIT = 30.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=WAIT * 2))


async def wait_for_seals(front, trigger):
    """Await the pump's stats catching up: futures resolve a beat before the
    pump coroutine increments ``sealed_by`` (bounded by the scenario timeout)."""
    while front.sealed_by[trigger] == 0:
        await asyncio.sleep(0.001)
    return front.sealed_by[trigger]


def build_system(patients=2, interval=1.0):
    return build_topology_system(TopologySpec(patients=patients, researchers=0),
                                 SystemConfig.private_chain(interval))


def tenant_tables(system):
    return {f"patient-{mid.split(':')[1]}": mid for mid in system.agreement_ids}


def update_for(metadata_id, tag):
    patient_id = int(metadata_id.split(":")[1])
    return UpdateEntryRequest(metadata_id=metadata_id, key=(patient_id,),
                              updates={"clinical_data": tag})


class TestConstruction:
    def test_validation(self):
        system = build_paper_scenario(SystemConfig.private_chain(1.0))
        gateway = SharingGateway(system)
        with pytest.raises(ValueError):
            AsyncSharingGateway(gateway, seal_depth=0)
        with pytest.raises(ValueError):
            AsyncSharingGateway(gateway, max_delay=-1.0)
        with pytest.raises(ValueError):
            AsyncSharingGateway(gateway, idle_timeout=0.0)
        # Gateway kwargs are only for building a gateway from a system.
        with pytest.raises(ValueError):
            AsyncSharingGateway(gateway, max_batch_size=4)

    def test_builds_gateway_from_system(self):
        system = build_paper_scenario(SystemConfig.private_chain(1.0))
        front = AsyncSharingGateway(system, max_batch_size=4)
        assert isinstance(front.gateway, SharingGateway)
        assert front.gateway.scheduler.max_batch_size == 4
        assert front.seal_depth == 4

    def test_seal_depth_defaults_to_batch_size(self):
        system = build_paper_scenario(SystemConfig.private_chain(1.0))
        front = AsyncSharingGateway(SharingGateway(system, max_batch_size=7))
        assert front.seal_depth == 7

    def test_submit_requires_running_pump(self):
        system = build_paper_scenario(SystemConfig.private_chain(1.0))
        front = AsyncSharingGateway(SharingGateway(system))
        session = front.open_session("patient")
        with pytest.raises(RuntimeError):
            front.submit_nowait(session, ReadViewRequest(PATIENT_DOCTOR_TABLE))

    def test_double_start_refused(self):
        async def scenario():
            system = build_paper_scenario(SystemConfig.private_chain(1.0))
            async with AsyncSharingGateway(SharingGateway(system)) as front:
                with pytest.raises(RuntimeError):
                    await front.start()

        run(scenario())


class TestSubmit:
    def test_write_future_resolves_ok(self):
        async def scenario():
            system = build_system()
            tables = tenant_tables(system)
            async with AsyncSharingGateway(system) as front:
                peer, metadata_id = sorted(tables.items())[0]
                session = front.open_session(peer)
                future = front.submit_nowait(session, update_for(metadata_id, "async-1"))
                assert not future.done()  # queued, not yet committed
                await front.drain()
                response = await future
                assert response.status == STATUS_OK
                assert response.payload["metadata_id"] == metadata_id
            view = system.peer(peer).shared_table(metadata_id)
            patient_id = int(metadata_id.split(":")[1])
            assert view.get((patient_id,))["clinical_data"] == "async-1"
            assert system.all_shared_tables_consistent()

        run(scenario())

    def test_submit_coroutine_awaits_terminal(self):
        async def scenario():
            system = build_system()
            tables = tenant_tables(system)
            peer, metadata_id = sorted(tables.items())[0]
            # seal_depth 1: the pump commits as soon as the write lands.
            async with AsyncSharingGateway(system, seal_depth=1) as front:
                session = front.open_session(peer)
                response = await front.submit(session, update_for(metadata_id, "await"))
                assert response.status == STATUS_OK

        run(scenario())

    def test_read_served_with_payload(self):
        async def scenario():
            system = build_system()
            tables = tenant_tables(system)
            peer, metadata_id = sorted(tables.items())[0]
            async with AsyncSharingGateway(system) as front:
                session = front.open_session(peer)
                response = await front.submit(session, ReadViewRequest(metadata_id))
                assert response.status == STATUS_OK
                assert response.payload["rows"] >= 1
                # Second read is a cache hit.
                await front.submit(session, ReadViewRequest(metadata_id))
                assert front.gateway.cache.hits >= 1
                assert front.statistics()["reads_in_flight"] == 0

        run(scenario())

    def test_throttled_resolves_immediately(self):
        async def scenario():
            system = build_system()
            tables = tenant_tables(system)
            peer, metadata_id = sorted(tables.items())[0]
            async with AsyncSharingGateway(system) as front:
                session = front.open_session(peer, rate=0.001, burst=1.0)
                first = front.submit_nowait(session, ReadViewRequest(metadata_id))
                second = front.submit_nowait(session, ReadViewRequest(metadata_id))
                assert (await second).status == STATUS_THROTTLED
                assert (await first).status == STATUS_OK

        run(scenario())

    def test_unauthorised_write_resolves_immediately(self):
        async def scenario():
            system = build_paper_scenario(SystemConfig.private_chain(1.0))
            async with AsyncSharingGateway(system) as front:
                session = front.open_session("patient")
                # The patient may not write 'dosage' on the Fig. 1 contract.
                future = front.submit_nowait(session, UpdateEntryRequest(
                    PATIENT_DOCTOR_TABLE, (188,), {"dosage": "blocked"}))
                assert future.done()
                response = await future
                assert response.status == STATUS_REJECTED
                assert "may not write" in response.error

        run(scenario())

    def test_session_delegation(self):
        async def scenario():
            system = build_system()
            async with AsyncSharingGateway(system) as front:
                session = front.open_session("patient-188")
                assert front.gateway.session_count == 1
                front.close_session(session)
                assert front.gateway.session_count == 0

        run(scenario())


class TestPumpTriggers:
    def test_depth_trigger_seals_without_drain(self):
        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            async with AsyncSharingGateway(system, seal_depth=2,
                                           max_delay=0.0) as front:
                futures = []
                for peer, metadata_id in sorted(tables.items()):
                    session = front.open_session(peer)
                    futures.append(front.submit_nowait(
                        session, update_for(metadata_id, "depth")))
                # No drain: the pump must seal on its own once depth hits 2.
                responses = await asyncio.wait_for(asyncio.gather(*futures), WAIT)
                assert all(response.status == STATUS_OK for response in responses)
                assert await wait_for_seals(front, "depth") >= 1

        run(scenario())

    def test_deadline_trigger_seals_waiting_write(self):
        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            (peer_a, table_a), (peer_b, table_b) = sorted(tables.items())
            clock = system.simulator.clock
            async with AsyncSharingGateway(system, seal_depth=50,
                                           max_delay=1.0) as front:
                session_a = front.open_session(peer_a)
                session_b = front.open_session(peer_b)
                first = front.submit_nowait(session_a, update_for(table_a, "old"))
                # A later arrival advances the simulated clock past the
                # deadline and wakes the pump (depth stays below 50).
                clock.advance(5.0)
                second = front.submit_nowait(session_b, update_for(table_b, "new"))
                responses = await asyncio.wait_for(asyncio.gather(first, second), WAIT)
                assert all(response.status == STATUS_OK for response in responses)
                assert await wait_for_seals(front, "deadline") >= 1

        run(scenario())

    def test_idle_trigger_seals_quiet_queue(self):
        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            peer, metadata_id = sorted(tables.items())[0]
            async with AsyncSharingGateway(system, seal_depth=50, max_delay=0.0,
                                           idle_timeout=0.01) as front:
                session = front.open_session(peer)
                future = front.submit_nowait(session, update_for(metadata_id, "idle"))
                # No more arrivals, no deadline: only the idle timer fires.
                response = await asyncio.wait_for(future, WAIT)
                assert response.status == STATUS_OK
                assert await wait_for_seals(front, "idle") >= 1

        run(scenario())

    def test_drain_counts_flush_seals(self):
        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            peer, metadata_id = sorted(tables.items())[0]
            async with AsyncSharingGateway(system, seal_depth=50,
                                           idle_timeout=5.0) as front:
                session = front.open_session(peer)
                future = front.submit_nowait(session, update_for(metadata_id, "flush"))
                await front.drain()
                assert future.done()
                assert front.sealed_by["flush"] >= 1

        run(scenario())

    def test_drain_on_empty_gateway_returns(self):
        async def scenario():
            system = build_system(patients=2)
            async with AsyncSharingGateway(system) as front:
                await front.drain()  # nothing queued — must not block

        run(scenario())

    def test_stop_without_flush_then_restart(self):
        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            peer, metadata_id = sorted(tables.items())[0]
            front = AsyncSharingGateway(system, seal_depth=50, idle_timeout=5.0)
            await front.start()
            session = front.open_session(peer)
            future = front.submit_nowait(session, update_for(metadata_id, "later"))
            # stop(flush=True) is the default and must resolve the write even
            # though no trigger fired yet.
            await front.stop()
            assert not front.running
            assert future.done()
            assert (await future).status == STATUS_OK
            # The transport is restartable.
            await front.start()
            assert front.running
            response = await front.submit(session, ReadViewRequest(metadata_id))
            assert response.status == STATUS_OK
            await front.stop()

        run(scenario())


class TestInterleaving:
    def test_arrivals_admitted_while_commit_in_flight(self):
        async def scenario():
            system = build_system(patients=3)
            tables = tenant_tables(system)
            gateway = SharingGateway(system, max_batch_size=16)
            async with AsyncSharingGateway(gateway, seal_depth=1) as front:
                sessions = {peer: front.open_session(peer) for peer in tables}
                futures = []
                # seal_depth 1 makes the pump commit eagerly; later arrivals
                # land while those commits mine in the executor.
                for round_index in range(4):
                    for peer, metadata_id in sorted(tables.items()):
                        futures.append(front.submit_nowait(
                            sessions[peer],
                            update_for(metadata_id, f"r{round_index}")))
                        await asyncio.sleep(0)
                await front.drain()
                responses = await asyncio.gather(*futures)
            assert all(response.status == STATUS_OK for response in responses)
            transport = gateway.metrics()["transport"]
            assert transport["admitted_during_commit"] > 0
            assert transport["commits_in_flight"] == 0
            assert system.all_shared_tables_consistent()

        run(scenario())

    def test_matches_sync_transport_fingerprints(self):
        def fingerprints(system):
            return {
                f"{peer.name}:{name}": peer.database.table(name).fingerprint()
                for peer in system.peers
                for name in sorted(peer.database.table_names)
            }

        def workload(tables):
            plan = []
            for round_index in range(3):
                for peer, metadata_id in sorted(tables.items()):
                    plan.append((peer, metadata_id, f"v{round_index}"))
            return plan

        # Sync transport: submit then drain.
        sync_system = build_system(patients=2)
        sync_tables = tenant_tables(sync_system)
        sync_gateway = SharingGateway(sync_system)
        sessions = {peer: sync_gateway.open_session(peer) for peer in sync_tables}
        for peer, metadata_id, tag in workload(sync_tables):
            sync_gateway.submit(sessions[peer], update_for(metadata_id, tag))
        sync_gateway.drain()

        # Async transport: same writes through the pump.
        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            async with AsyncSharingGateway(system, seal_depth=3) as front:
                sessions = {peer: front.open_session(peer) for peer in tables}
                futures = [front.submit_nowait(sessions[peer],
                                               update_for(metadata_id, tag))
                           for peer, metadata_id, tag in workload(tables)]
                await front.drain()
                responses = await asyncio.gather(*futures)
                assert all(response.status == STATUS_OK for response in responses)
            return system

        async_system = run(scenario())
        assert fingerprints(sync_system) == fingerprints(async_system)

    def test_per_tenant_same_key_order_preserved(self):
        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            peer, metadata_id = sorted(tables.items())[0]
            patient_id = int(metadata_id.split(":")[1])
            async with AsyncSharingGateway(system, seal_depth=2) as front:
                session = front.open_session(peer)
                futures = [front.submit_nowait(
                    session, update_for(metadata_id, f"seq-{index}"))
                    for index in range(5)]
                await front.drain()
                responses = await asyncio.gather(*futures)
                assert all(response.status == STATUS_OK for response in responses)
            # Same-key writes commit in submission order: last one wins.
            view = system.peer(peer).shared_table(metadata_id)
            assert view.get((patient_id,))["clinical_data"] == "seq-4"

        run(scenario())


class TestStatistics:
    def test_statistics_and_metrics_shape(self):
        async def scenario():
            system = build_system(patients=2)
            tables = tenant_tables(system)
            peer, metadata_id = sorted(tables.items())[0]
            async with AsyncSharingGateway(system, seal_depth=1) as front:
                session = front.open_session(peer)
                await front.submit(session, update_for(metadata_id, "stats"))
                await front.submit(session, ReadViewRequest(metadata_id))
                await front.drain()
                stats = front.statistics()
                assert stats["transport"] == "async"
                assert stats["running"] is True
                assert stats["commits"] >= 1
                assert stats["pending_futures"] == 0
                assert stats["pending_futures_peak"] >= 1
                assert set(stats["sealed_by"]) == {"depth", "deadline", "idle", "flush"}
                merged = front.metrics()
                assert merged["async_transport"] == stats
                assert "batches" in merged and "transport" in merged

        run(scenario())
