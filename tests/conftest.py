"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.records import doctor_schema, patient_schema, researcher_schema
from repro.core.scenario import PAPER_RECORDS, build_paper_scenario
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


@pytest.fixture
def people_schema() -> Schema:
    """A small generic keyed schema used across relational/bx tests."""
    return Schema(
        columns=(
            Column("id", DataType.INTEGER, nullable=False),
            Column("name", DataType.STRING),
            Column("city", DataType.STRING),
            Column("age", DataType.INTEGER),
        ),
        primary_key=("id",),
    )


@pytest.fixture
def people_table(people_schema) -> Table:
    return Table(
        "people",
        people_schema,
        [
            {"id": 1, "name": "Aiko", "city": "Sapporo", "age": 34},
            {"id": 2, "name": "Ben", "city": "Osaka", "age": 41},
            {"id": 3, "name": "Chie", "city": "Kyoto", "age": 29},
        ],
    )


@pytest.fixture
def doctor_table() -> Table:
    """The paper's D3 table (doctor's local data) with the Fig. 1 rows."""
    columns = ("patient_id", "medication_name", "clinical_data", "dosage",
               "mechanism_of_action")
    rows = [{c: record[c] for c in columns} for record in PAPER_RECORDS]
    return Table("D3", doctor_schema(), rows)


@pytest.fixture
def patient_table() -> Table:
    """The paper's D1 table (patient 188's local data)."""
    columns = ("patient_id", "medication_name", "clinical_data", "address", "dosage")
    rows = [{c: record[c] for c in columns}
            for record in PAPER_RECORDS if record["patient_id"] == 188]
    return Table("D1", patient_schema(), rows)


@pytest.fixture
def researcher_table() -> Table:
    """The paper's D2 table (researcher's local data)."""
    columns = ("medication_name", "mechanism_of_action", "mode_of_action")
    rows = [{c: record[c] for c in columns} for record in PAPER_RECORDS]
    return Table("D2", researcher_schema(), rows)


@pytest.fixture(scope="module")
def paper_system():
    """A fully established Fig. 1 system (module-scoped: building it mines blocks)."""
    return build_paper_scenario()


@pytest.fixture
def fresh_paper_system():
    """A function-scoped Fig. 1 system for tests that mutate shared data."""
    return build_paper_scenario()
