"""``Query.from_dict`` round-trips for every AST node kind.

View specs travel on-chain (the Fig. 3 metadata entry) and through the
gateway's request model, so query serialisation must reconstruct every node
kind faithfully — including nested compositions.
"""

import pytest

from repro.relational.predicates import And, Eq, Gt, In, Not, TruePredicate
from repro.relational.query import Join, Project, Query, Rename, Scan, Select


class TestEveryNodeKind:
    @pytest.mark.parametrize("query", [
        Scan("people"),
        Project(Scan("people"), ("id", "city")),
        Project(Scan("people"), ("city",), distinct=False),
        Select(Scan("people"), Eq("city", "Osaka")),
        Select(Scan("people")),  # default TruePredicate
        Rename(Scan("people"), {"city": "location"}),
        Join(Scan("people"), Scan("visits"), ("id",)),
    ], ids=["scan", "project", "project-keep-dups", "select", "select-true",
            "rename", "join"])
    def test_round_trip(self, query):
        payload = query.to_dict()
        rebuilt = Query.from_dict(payload)
        assert rebuilt == query
        assert rebuilt.to_dict() == payload

    def test_nested_composition_round_trips(self):
        query = Project(
            Select(
                Rename(
                    Join(Scan("people"), Scan("visits"), ("id",)),
                    {"city": "location"},
                ),
                And(Eq("location", "Osaka"), Not(In("id", (1, 2)))),
            ),
            ("id", "location"),
        )
        payload = query.to_dict()
        rebuilt = Query.from_dict(payload)
        assert rebuilt == query

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Query.from_dict({"kind": "cartesian-product"})

    def test_select_default_predicate_serialises_as_true(self):
        payload = Select(Scan("people")).to_dict()
        assert payload["predicate"] == {"kind": "true"}
        rebuilt = Query.from_dict(payload)
        assert isinstance(rebuilt.predicate, TruePredicate)


class TestRoundTripExecutesIdentically:
    def test_rebuilt_query_produces_the_same_rows(self, people_table):
        query = Select(Project(Scan("people"), ("id", "city", "age")),
                       Gt("age", 30))
        rebuilt = Query.from_dict(query.to_dict())
        tables = {"people": people_table}
        original_rows = [row.to_dict() for row in query.execute(tables)]
        rebuilt_rows = [row.to_dict() for row in rebuilt.execute(tables)]
        assert original_rows == rebuilt_rows

    def test_rebuilt_select_still_uses_index_fast_path(self, people_table):
        people_table.add_index(["city"])
        query = Query.from_dict(Select(Scan("people"), Eq("city", "Osaka")).to_dict())
        result = query.execute({"people": people_table})
        assert [row["id"] for row in result] == [2]
