"""Tests for database persistence (save/load round trips)."""

import json

import pytest

from repro.errors import RelationalError
from repro.relational.database import Database
from repro.relational.persistence import (
    database_from_dict,
    database_to_dict,
    databases_identical,
    load_database,
    save_database,
)
from repro.relational.predicates import Gt
from repro.relational.query import Project, Scan, Select


@pytest.fixture
def populated_db(people_table):
    database = Database("peer_db")
    database.create_table("people", people_table.schema,
                          (row.to_dict() for row in people_table))
    database.register_view("adults", Select(Scan("people"), Gt("age", 30)))
    database.register_view("ids", Project(Scan("people"), ("id",)))
    return database


class TestRoundTrip:
    def test_save_and_load(self, populated_db, tmp_path):
        path = save_database(populated_db, tmp_path / "db.json")
        restored = load_database(path)
        assert restored.name == "peer_db"
        assert databases_identical(populated_db, restored)

    def test_views_survive(self, populated_db, tmp_path):
        path = save_database(populated_db, tmp_path / "db.json")
        restored = load_database(path)
        assert set(restored.view_names) == {"adults", "ids"}
        assert len(restored.view("adults")) == 2

    def test_written_file_is_plain_json(self, populated_db, tmp_path):
        path = save_database(populated_db, tmp_path / "db.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["name"] == "peer_db"
        assert payload["format_version"] == 1

    def test_nested_directory_created(self, populated_db, tmp_path):
        path = save_database(populated_db, tmp_path / "deep" / "nested" / "db.json")
        assert path.exists()

    def test_restored_database_is_independent(self, populated_db, tmp_path):
        path = save_database(populated_db, tmp_path / "db.json")
        restored = load_database(path)
        restored.update_by_key("people", (1,), {"name": "Changed"})
        assert populated_db.table("people").get(1)["name"] == "Aiko"

    def test_paper_peer_database_round_trips(self, fresh_paper_system, tmp_path):
        doctor_db = fresh_paper_system.peer("doctor").database
        path = save_database(doctor_db, tmp_path / "doctor.json")
        restored = load_database(path)
        assert databases_identical(doctor_db, restored)
        assert set(restored.table_names) == set(doctor_db.table_names)


class TestAtomicWrites:
    def test_failure_mid_write_leaves_previous_copy(self, populated_db, tmp_path,
                                                    monkeypatch):
        """A crash mid-write (simulated as fsync blowing up while the temp
        file is being written) must leave the previous snapshot intact — the
        in-place write it replaces corrupted the only copy."""
        import os

        path = save_database(populated_db, tmp_path / "db.json")
        before = path.read_text(encoding="utf-8")
        populated_db.update_by_key("people", (1,), {"age": 99})

        def explode(_fd):
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(os, "fsync", explode)
        with pytest.raises(OSError):
            save_database(populated_db, tmp_path / "db.json")
        assert path.read_text(encoding="utf-8") == before
        load_database(path)  # still a complete, parseable snapshot

    def test_failed_replace_leaves_previous_copy(self, populated_db, tmp_path,
                                                 monkeypatch):
        import os

        path = save_database(populated_db, tmp_path / "db.json")
        before = path.read_text(encoding="utf-8")

        def explode(_src, _dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            save_database(populated_db, tmp_path / "db.json")
        assert path.read_text(encoding="utf-8") == before

    def test_no_temp_files_left_behind(self, populated_db, tmp_path):
        save_database(populated_db, tmp_path / "db.json")
        assert [p.name for p in tmp_path.iterdir()] == ["db.json"]


class TestIndexRoundTrip:
    def test_index_columns_survive_save_load(self, populated_db, tmp_path):
        populated_db.create_index("people", ["city"])
        populated_db.create_index("people", ["city", "age"])
        path = save_database(populated_db, tmp_path / "db.json")
        restored = load_database(path)
        assert set(restored.table("people").indexed_columns) == {
            ("city",), ("city", "age")}
        # The restored index answers lookups (the Eq fast path is live).
        assert restored.table("people").index_on(("city",)).lookup("Osaka")

    def test_restored_index_registered_with_database(self, populated_db, tmp_path):
        populated_db.create_index("people", ["city"])
        path = save_database(populated_db, tmp_path / "db.json")
        restored = load_database(path)
        assert restored.index("people", ("city",)) is not None

    def test_unindexed_table_round_trips_without_index_key(self, populated_db,
                                                           tmp_path):
        path = save_database(populated_db, tmp_path / "db.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert "indexes" not in payload["tables"][0]


class TestViewsInIdentityCheck:
    def test_lost_view_detected(self, populated_db, tmp_path):
        path = save_database(populated_db, tmp_path / "db.json")
        restored = load_database(path)
        restored._views.pop("adults")
        assert not databases_identical(populated_db, restored)

    def test_changed_view_definition_detected(self, populated_db, tmp_path):
        from repro.relational.query import Scan

        path = save_database(populated_db, tmp_path / "db.json")
        restored = load_database(path)
        restored.register_view("adults", Select(Scan("people"), Gt("age", 99)))
        assert not databases_identical(populated_db, restored)

    def test_identical_views_pass(self, populated_db, tmp_path):
        path = save_database(populated_db, tmp_path / "db.json")
        assert databases_identical(populated_db, load_database(path))


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(RelationalError):
            load_database(tmp_path / "missing.json")

    def test_unsupported_version(self, populated_db):
        payload = database_to_dict(populated_db)
        payload["format_version"] = 99
        with pytest.raises(RelationalError):
            database_from_dict(payload)

    def test_identity_check_detects_differences(self, populated_db, tmp_path):
        path = save_database(populated_db, tmp_path / "db.json")
        restored = load_database(path)
        restored.update_by_key("people", (1,), {"age": 99})
        assert not databases_identical(populated_db, restored)

    def test_identity_check_detects_missing_tables(self, populated_db, tmp_path):
        path = save_database(populated_db, tmp_path / "db.json")
        restored = load_database(path)
        restored.drop_table("people")
        assert not databases_identical(populated_db, restored)
