"""Table-attached secondary indexes and the equality-selection fast path."""

import pytest

from repro.errors import UnknownColumnError
from repro.relational.predicates import Eq, Gt
from repro.relational.query import Scan, Select


class TestTableIndexes:
    def test_add_index_is_idempotent(self, people_table):
        first = people_table.add_index(["city"])
        second = people_table.add_index(["city"])
        assert first is second
        assert people_table.has_index(["city"])
        assert people_table.indexed_columns == (("city",),)

    def test_index_on_unknown_column_rejected(self, people_table):
        with pytest.raises(UnknownColumnError):
            people_table.add_index(["missing"])
        with pytest.raises(UnknownColumnError):
            people_table.index_on(["missing"])

    def test_select_uses_index_and_matches_scan(self, people_table):
        scan_result = people_table.select(Eq("city", "Osaka"))
        people_table.add_index(["city"])
        indexed_result = people_table.select(Eq("city", "Osaka"))
        assert indexed_result == scan_result
        assert [row["id"] for row in indexed_result] == [2]

    def test_non_equality_predicates_fall_back_to_scan(self, people_table):
        people_table.add_index(["city"])
        assert [row["id"] for row in people_table.select(Gt("age", 30))] == [1, 2]

    def test_index_stays_fresh_across_mutations(self, people_table):
        people_table.add_index(["city"])
        people_table.insert({"id": 9, "name": "Iku", "city": "Osaka", "age": 51})
        assert [row["id"] for row in people_table.select(Eq("city", "Osaka"))] == [2, 9]
        people_table.update_by_key((2,), {"city": "Kyoto"})
        assert [row["id"] for row in people_table.select(Eq("city", "Osaka"))] == [9]
        people_table.delete_by_key((9,))
        assert people_table.select(Eq("city", "Osaka")) == []
        people_table.replace_all([{"id": 1, "name": "A", "city": "Osaka", "age": 20}])
        assert [row["id"] for row in people_table.select(Eq("city", "Osaka"))] == [1]

    def test_point_writes_maintain_index_in_place(self, people_table):
        """Point writes update the index immediately; there is no staleness
        window between a write and the next indexed read."""
        index = people_table.add_index(["city"])
        assert not index.is_stale
        people_table.insert({"id": 10, "name": "J", "city": "Nara", "age": 30})
        assert not index.is_stale      # maintained from the write itself
        assert index.contains("Nara")
        people_table.delete_by_key((10,))
        assert not index.is_stale
        assert not index.contains("Nara")

    def test_replace_all_marks_stale_for_lazy_rebuild(self, people_table):
        """Wholesale replacement still uses the lazy rebuild path."""
        index = people_table.add_index(["city"])
        people_table.replace_all([{"id": 1, "name": "A", "city": "Nara", "age": 20}])
        assert index.is_stale
        assert index.contains("Nara")
        assert not index.is_stale

    def test_interleaved_writes_and_indexed_selects(self, people_table):
        """Regression: interleaving writes with indexed equality selects must
        always observe the freshest rows, in table order (no staleness
        window, no ordering drift when a row moves between buckets)."""
        people_table.add_index(["city"])

        def osaka_ids():
            return [row["id"] for row in people_table.select(Eq("city", "Osaka"))]

        people_table.insert({"id": 4, "name": "Dai", "city": "Osaka", "age": 50})
        assert osaka_ids() == [2, 4]
        people_table.update_by_key((1,), {"city": "Osaka"})      # moves bucket
        assert osaka_ids() == [1, 2, 4]                          # table order kept
        people_table.update_by_key((2,), {"age": 42})            # same bucket
        assert osaka_ids() == [1, 2, 4]
        assert people_table.select(Eq("city", "Osaka"))[1]["age"] == 42
        people_table.delete_by_key((2,))
        assert osaka_ids() == [1, 4]
        people_table.update_by_key((4,), {"city": "Kobe"})       # leaves bucket
        assert osaka_ids() == [1]
        # Every answer above equals what a fresh scan computes.
        scan = [row["id"] for row in people_table.rows if row["city"] == "Osaka"]
        assert osaka_ids() == scan


class TestQueryAstFastPath:
    def test_select_over_scan_answers_from_index(self, people_table):
        people_table.add_index(["city"])
        query = Select(Scan("people"), Eq("city", "Sapporo"))
        result = query.execute({"people": people_table})
        assert [row["id"] for row in result] == [1]
        assert result.schema.column_names == people_table.schema.column_names

    def test_select_over_scan_without_index_matches_indexed_result(self, people_table):
        query = Select(Scan("people"), Eq("city", "Sapporo"))
        plain = [r.to_dict() for r in query.execute({"people": people_table})]
        people_table.add_index(["city"])
        indexed = [r.to_dict() for r in query.execute({"people": people_table})]
        assert plain == indexed


class TestDatabaseIntegration:
    def test_database_index_serves_equality_selects(self, people_table):
        from repro.relational.database import Database
        from repro.relational.schema import Schema

        db = Database("test")
        db.create_table("people", people_table.schema,
                        (row.to_dict() for row in people_table))
        db.create_index("people", ["city"])
        assert db.table("people").has_index(["city"])
        db.insert("people", {"id": 11, "name": "K", "city": "Osaka", "age": 44})
        rows = db.select("people", Eq("city", "Osaka"))
        assert [row["id"] for row in rows] == [2, 11]
        # The Database-level handle is the same lazily-refreshed index object.
        assert db.index("people", ["city"]).contains("Osaka")
