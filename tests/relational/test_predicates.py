"""Tests for composable predicates."""

import pytest

from repro.relational.predicates import (
    And, Between, Contains, Eq, Ge, Gt, In, IsNull, Le, Lt, Ne, Not, Or,
    Predicate, TruePredicate, columns_referenced,
)

ROW = {"age": 30, "city": "Osaka", "note": None, "tags": ["x", "y"]}


class TestBasicPredicates:
    @pytest.mark.parametrize("predicate,expected", [
        (TruePredicate(), True),
        (Eq("city", "Osaka"), True),
        (Eq("city", "Kyoto"), False),
        (Ne("city", "Kyoto"), True),
        (Lt("age", 31), True),
        (Lt("age", 30), False),
        (Le("age", 30), True),
        (Gt("age", 29), True),
        (Ge("age", 30), True),
        (Ge("age", 31), False),
        (In("city", ("Osaka", "Kyoto")), True),
        (In("city", ("Nara",)), False),
        (Between("age", 20, 40), True),
        (Between("age", 31, 40), False),
        (Contains("tags", "x"), True),
        (Contains("tags", "z"), False),
        (Contains("city", "sak"), True),
        (IsNull("note"), True),
        (IsNull("age"), False),
    ])
    def test_evaluate(self, predicate, expected):
        assert predicate.evaluate(ROW) is expected

    def test_missing_column_behaves_as_none(self):
        assert not Eq("missing", 1).evaluate(ROW)
        assert IsNull("missing").evaluate(ROW)
        assert not Lt("missing", 10).evaluate(ROW)

    def test_contains_on_non_container(self):
        assert not Contains("age", 3).evaluate(ROW)

    def test_callable(self):
        assert Eq("age", 30)(ROW)


class TestComposition:
    def test_and_or_not(self):
        predicate = (Eq("city", "Osaka") & Gt("age", 20)) | Eq("city", "Nara")
        assert predicate.evaluate(ROW)
        assert not (~predicate).evaluate(ROW)

    def test_and_requires_all(self):
        assert not And(Eq("city", "Osaka"), Eq("age", 31)).evaluate(ROW)

    def test_or_requires_any(self):
        assert Or(Eq("city", "Nara"), Eq("age", 30)).evaluate(ROW)

    def test_empty_and_is_true(self):
        assert And().evaluate(ROW)

    def test_empty_or_is_false(self):
        assert not Or().evaluate(ROW)


class TestSerialisation:
    @pytest.mark.parametrize("predicate", [
        TruePredicate(),
        Eq("a", 1),
        Ne("a", "x"),
        Lt("a", 5),
        Le("a", 5),
        Gt("a", 5),
        Ge("a", 5),
        In("a", (1, 2, 3)),
        Between("a", 1, 9),
        Contains("a", "sub"),
        IsNull("a"),
        And(Eq("a", 1), Or(Eq("b", 2), Not(IsNull("c")))),
    ])
    def test_round_trip(self, predicate):
        restored = Predicate.from_dict(predicate.to_dict())
        row_yes = {"a": 1, "b": 2, "c": 3}
        row_no = {"a": 99, "b": 99, "c": None}
        assert restored.evaluate(row_yes) == predicate.evaluate(row_yes)
        assert restored.evaluate(row_no) == predicate.evaluate(row_no)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Predicate.from_dict({"kind": "mystery"})


class TestColumnsReferenced:
    def test_collects_unique_columns_in_order(self):
        predicate = And(Eq("a", 1), Or(Gt("b", 2), Eq("a", 3)), Not(IsNull("c")))
        assert columns_referenced(predicate) == ("a", "b", "c")

    def test_true_predicate_references_nothing(self):
        assert columns_referenced(TruePredicate()) == ()
