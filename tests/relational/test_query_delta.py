"""Incremental evaluation of the query AST (``get_delta``/``put_delta``).

The same row-level translation that powers the lens stack works over query
trees: key-preserving Project/Select/Rename chains translate a base-table
diff into the result diff without re-executing, while joins and key-erasing
projections refuse (:class:`~repro.errors.DeltaUnsupported`).
"""

import pytest

from repro.errors import DeltaUnsupported
from repro.relational.diff import diff_tables
from repro.relational.predicates import Gt
from repro.relational.query import Join, Project, Rename, Scan, Select
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table

CITY_SCHEMA = Schema(
    columns=(Column("city", DataType.STRING, nullable=False),
             Column("region", DataType.STRING)),
    primary_key=("city",),
)


@pytest.fixture
def cities_table():
    return Table("cities", CITY_SCHEMA, [
        {"city": "Sapporo", "region": "Hokkaido"},
        {"city": "Osaka", "region": "Kansai"},
        {"city": "Kyoto", "region": "Kansai"},
        {"city": "Kobe", "region": "Kansai"},
    ])


@pytest.fixture
def tables(people_table):
    return {"people": people_table}


def _edited(people_table):
    updated = people_table.snapshot()
    updated.update_by_key((1,), {"age": 44})          # visible-set entry/exit
    updated.delete_by_key((2,))
    updated.insert({"id": 7, "name": "Gen", "city": "Kobe", "age": 61})
    return updated


QUERIES = {
    "scan": Scan("people"),
    "select": Select(Scan("people"), Gt("age", 30)),
    "project": Project(Scan("people"), ("id", "name", "age")),
    "rename": Rename(Scan("people"), {"city": "town"}),
    "select-project-rename": Rename(
        Project(Select(Scan("people"), Gt("age", 30)), ("id", "name", "age")),
        {"name": "label"}),
}


class TestQueryGetDelta:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_matches_reexecution(self, name, tables, people_table):
        query = QUERIES[name]
        before = query.execute(tables)
        updated = _edited(people_table)
        diff = diff_tables(people_table, updated)

        view_delta = query.get_delta(tables, diff)
        patched = before.snapshot()
        patched.apply_diff(view_delta)
        assert patched.fingerprint() == query.execute({"people": updated}).fingerprint()

    def test_unrelated_table_diff_is_empty(self, tables, people_table):
        updated = _edited(people_table)
        diff = diff_tables(people_table, updated)
        other = Table("other", people_table.schema,
                      (row.to_dict() for row in people_table))
        unrelated = diff_tables(other, other.snapshot())
        assert Scan("people").get_delta(tables, unrelated).is_empty
        renamed = diff_tables(other, Table("other", people_table.schema,
                                           [r.to_dict() for r in updated]))
        assert Scan("people").get_delta(tables, renamed).is_empty

    def test_output_schema_without_materialising(self, tables):
        query = QUERIES["select-project-rename"]
        assert query.output_schema(tables).column_names == ("id", "label", "age")
        assert query.output_schema(tables).primary_key == ("id",)


class TestQueryPutDelta:
    def test_translates_view_edit_back_to_base(self, tables, people_table):
        query = QUERIES["project"]
        view = query.execute(tables)
        edited = view.snapshot()
        edited.update_by_key((3,), {"age": 30})
        view_diff = diff_tables(view, edited)

        base_diff = query.put_delta(tables, view_diff)
        people_table.apply_diff(base_diff)
        assert people_table.get((3,))["age"] == 30
        assert people_table.get((3,))["city"] == "Kyoto"  # hidden column kept
        assert query.execute(tables).fingerprint() == edited.fingerprint()


class TestKeyedJoinDelta:
    """A join whose reference side's primary key is contained in ``on`` keeps
    the left key and translates diffs row by row instead of re-executing."""

    def _join(self):
        return Join(Scan("people"), Scan("cities"), ("city",))

    def _tables(self, people_table, cities_table):
        return {"people": people_table, "cities": cities_table}

    def test_output_is_keyed(self, people_table, cities_table):
        tables = self._tables(people_table, cities_table)
        schema = self._join().output_schema(tables)
        assert schema.primary_key == ("id",)
        assert "region" in schema.column_names

    def test_get_delta_matches_reexecution(self, people_table, cities_table):
        tables = self._tables(people_table, cities_table)
        join = self._join()
        before = join.execute(tables)
        updated = _edited(people_table)
        # One more transition: Chie moves to a city the reference does not
        # know, so her row leaves the join's visible set.
        updated.update_by_key((3,), {"city": "Nara"})
        diff = diff_tables(people_table, updated)

        view_delta = join.get_delta(tables, diff)
        patched = before.snapshot()
        patched.apply_diff(view_delta)
        reexecuted = join.execute({"people": updated, "cities": cities_table})
        assert patched.fingerprint() == reexecuted.fingerprint()

    def test_put_delta_translates_view_edit_back(self, people_table, cities_table):
        tables = self._tables(people_table, cities_table)
        join = self._join()
        view = join.execute(tables)
        edited = view.snapshot()
        edited.update_by_key((3,), {"age": 30})
        edited.delete_by_key((2,))
        view_diff = diff_tables(view, edited)

        base_diff = join.put_delta(tables, view_diff)
        people_table.apply_diff(base_diff)
        assert people_table.get((3,))["age"] == 30
        assert not people_table.contains_key((2,))
        assert (join.execute(tables).fingerprint() == edited.fingerprint())

    def test_reference_side_diff_falls_back(self, people_table, cities_table):
        tables = self._tables(people_table, cities_table)
        changed = cities_table.snapshot()
        changed.update_by_key(("Osaka",), {"region": "Kinki"})
        diff = diff_tables(cities_table, changed)
        with pytest.raises(DeltaUnsupported):
            self._join().get_delta(tables, diff)

    def test_derived_reference_side_falls_back(self, people_table, cities_table):
        tables = self._tables(people_table, cities_table)
        join = Join(Scan("people"),
                    Select(Scan("cities"), Gt("city", "A")), ("city",))
        diff = diff_tables(people_table, _edited(people_table))
        with pytest.raises(DeltaUnsupported):
            join.get_delta(tables, diff)
        with pytest.raises(DeltaUnsupported):
            join.put_delta(tables, diff)


class TestQueryDeltaFallbacks:
    def test_join_is_unsupported(self, tables, people_table):
        updated = _edited(people_table)
        diff = diff_tables(people_table, updated)
        join = Join(Scan("people"), Scan("people"), ("city",))
        with pytest.raises(DeltaUnsupported):
            join.get_delta(tables, diff)
        with pytest.raises(DeltaUnsupported):
            join.put_delta(tables, diff)

    def test_key_erasing_projection_is_unsupported(self, tables, people_table):
        updated = _edited(people_table)
        diff = diff_tables(people_table, updated)
        query = Project(Scan("people"), ("city", "age"))  # drops the key
        with pytest.raises(DeltaUnsupported):
            query.get_delta(tables, diff)
        with pytest.raises(DeltaUnsupported):
            query.put_delta(tables, diff)

    def test_keyless_child_selection_is_unsupported(self):
        schema = Schema.build(["v"])
        table = Table("t", schema, [{"v": "a"}])
        diff = diff_tables(table, table.snapshot())
        with pytest.raises(DeltaUnsupported):
            Select(Scan("t"), Gt("v", "a")).get_delta({"t": table}, diff)
