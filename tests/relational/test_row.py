"""Tests for immutable rows."""

import pytest

from repro.errors import UnknownColumnError
from repro.relational.row import Row


class TestRow:
    def test_mapping_access(self):
        row = Row({"a": 1, "b": "x"})
        assert row["a"] == 1
        assert len(row) == 2
        assert set(row) == {"a", "b"}

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            Row({"a": 1})["b"]

    def test_equality_with_dict(self):
        assert Row({"a": 1}) == {"a": 1}
        assert Row({"a": 1}) != {"a": 2}

    def test_hashable(self):
        assert len({Row({"a": 1}), Row({"a": 1}), Row({"a": 2})}) == 2

    def test_project(self):
        row = Row({"a": 1, "b": 2, "c": 3})
        assert row.project(["c", "a"]) == {"c": 3, "a": 1}

    def test_rename(self):
        row = Row({"a": 1, "b": 2})
        assert row.rename({"a": "x"}) == {"x": 1, "b": 2}

    def test_merged_does_not_mutate(self):
        row = Row({"a": 1, "b": 2})
        merged = row.merged({"b": 5, "a": 9})
        assert merged == {"a": 9, "b": 5}
        assert row == {"a": 1, "b": 2}

    def test_key(self):
        row = Row({"a": 1, "b": 2, "c": 3})
        assert row.key(["b", "a"]) == (2, 1)

    def test_to_dict_is_copy(self):
        row = Row({"a": 1})
        payload = row.to_dict()
        payload["a"] = 99
        assert row["a"] == 1

    def test_repr_contains_values(self):
        assert "a=1" in repr(Row({"a": 1}))
