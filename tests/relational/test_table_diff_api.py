"""``Table.apply_diff`` / ``Table.diff_for_*``: the O(changed rows) diff API.

These are the primitives of the delta-propagation engine: applying a diff
must validate it against the current contents (typed
:class:`~repro.errors.DiffConflictError` on key mismatches), maintain every
secondary index in place, and the ``diff_for_*`` constructors must agree
with the snapshot-and-diff path while validating exactly like the mutating
operations they describe.
"""

import pytest

from repro.errors import (
    ConstraintViolation,
    DiffConflictError,
    RowNotFoundError,
    SchemaError,
    UnknownColumnError,
)
from repro.relational.diff import RowChange, TableDiff, diff_tables
from repro.relational.predicates import Eq
from repro.relational.schema import Schema
from repro.relational.table import Table


class TestApplyDiffValidation:
    def test_insert_existing_key_conflicts(self, people_table):
        diff = TableDiff("people", (RowChange(
            "insert", (1,), None,
            {"id": 1, "name": "Dup", "city": "Kobe", "age": 1}),))
        with pytest.raises(DiffConflictError):
            people_table.apply_diff(diff)

    def test_update_missing_key_conflicts(self, people_table):
        diff = TableDiff("people", (RowChange(
            "update", (99,), None, {"id": 99, "age": 50}, ("age",)),))
        with pytest.raises(DiffConflictError):
            people_table.apply_diff(diff)

    def test_delete_missing_key_conflicts(self, people_table):
        diff = TableDiff("people", (RowChange("delete", (99,), None, None),))
        with pytest.raises(DiffConflictError):
            people_table.apply_diff(diff)

    def test_update_missing_changed_column_value_conflicts(self, people_table):
        # ``after`` lacks the value for a column listed in changed_columns —
        # previously a bare KeyError, now a typed conflict.
        diff = TableDiff("people", (RowChange(
            "update", (1,), None, {"id": 1}, ("age",)),))
        with pytest.raises(DiffConflictError):
            people_table.apply_diff(diff)

    def test_update_unknown_changed_column_rejected(self, people_table):
        diff = TableDiff("people", (RowChange(
            "update", (1,), None, {"id": 1, "missing": "x"}, ("missing",)),))
        with pytest.raises(UnknownColumnError):
            people_table.apply_diff(diff)

    def test_keyless_table_rejected(self):
        table = Table("t", Schema.build(["v"]), [{"v": "a"}])
        diff = TableDiff("t", (RowChange("insert", (0,), None, {"v": "b"}),))
        with pytest.raises(SchemaError):
            table.apply_diff(diff)

    def test_apply_is_atomic_on_mid_diff_conflict(self, people_table):
        """A conflict on a later change rolls back the already-applied prefix
        — matching the seed path, whose whole-table replace never installed
        on failure."""
        people_table.add_index(["city"])
        before = people_table.fingerprint()
        diff = TableDiff("people", (
            RowChange("update", (1,), None, {"id": 1, "city": "Nagoya"}, ("city",)),
            RowChange("delete", (3,), None, None),
            RowChange("insert", (9,), None,
                      {"id": 9, "name": "Iku", "city": "Nara", "age": 51}),
            RowChange("delete", (99,), None, None),      # conflicts
        ))
        with pytest.raises(DiffConflictError):
            people_table.apply_diff(diff)
        assert people_table.fingerprint() == before
        assert people_table.get((1,))["city"] == "Sapporo"
        assert people_table.contains_key((3,))
        assert not people_table.contains_key((9,))
        # The secondary index followed the rollback too.
        assert [row["id"] for row in people_table.select(Eq("city", "Sapporo"))] == [1]
        assert people_table.select(Eq("city", "Nagoya")) == []

    def test_apply_rolls_back_key_changing_update(self, people_table):
        before = people_table.fingerprint()
        diff = TableDiff("people", (
            RowChange("update", (2,), None, {"id": 20}, ("id",)),   # pk move
            RowChange("insert", (1,), None,
                      {"id": 1, "name": "Dup", "city": "Kobe", "age": 1}),  # conflicts
        ))
        with pytest.raises(DiffConflictError):
            people_table.apply_diff(diff)
        assert people_table.fingerprint() == before
        assert people_table.contains_key((2,)) and not people_table.contains_key((20,))

    def test_apply_reproduces_diff_tables_target(self, people_table):
        target = people_table.snapshot()
        target.update_by_key((1,), {"city": "Nagoya"})
        target.delete_by_key((2,))
        target.insert({"id": 4, "name": "Dai", "city": "Kobe", "age": 55})
        diff = diff_tables(people_table, target)
        replica = people_table.snapshot()
        replica.apply_diff(diff)
        assert replica == target
        assert replica.fingerprint() == target.fingerprint()


class TestApplyDiffMaintainsIndexes:
    def test_secondary_indexes_follow_the_diff(self, people_table):
        index = people_table.add_index(["city"])
        diff = TableDiff("people", (
            RowChange("insert", (4,), None,
                      {"id": 4, "name": "Dai", "city": "Osaka", "age": 55}),
            RowChange("update", (1,), None,
                      {"id": 1, "city": "Osaka"}, ("city",)),
            RowChange("delete", (2,), None, None),
        ))
        people_table.apply_diff(diff)
        assert not index.is_stale  # maintained in place, not rebuilt
        assert [row["id"] for row in people_table.select(Eq("city", "Osaka"))] == [1, 4]
        assert not index.contains("Sapporo")


class TestDiffForConstructors:
    def test_diff_for_update_matches_snapshot_diff(self, people_table):
        direct = people_table.diff_for_update((2,), {"city": "Tokyo", "age": 42})
        candidate = people_table.snapshot()
        candidate.update_by_key((2,), {"city": "Tokyo", "age": 42})
        via_snapshot = diff_tables(people_table, candidate)
        assert direct.to_dict()["changes"] == via_snapshot.to_dict()["changes"]

    def test_diff_for_update_noop_is_empty(self, people_table):
        assert people_table.diff_for_update((2,), {"city": "Osaka"}).is_empty

    def test_diff_for_update_key_change_is_delete_insert(self, people_table):
        diff = people_table.diff_for_update((2,), {"id": 20})
        assert [c.kind for c in diff.changes] == ["delete", "insert"]
        assert diff.changes[0].key == (2,)
        assert diff.changes[1].key == (20,)

    def test_diff_for_update_validates_like_update_by_key(self, people_table):
        with pytest.raises(RowNotFoundError):
            people_table.diff_for_update((99,), {"age": 1})
        with pytest.raises(ConstraintViolation):
            people_table.diff_for_update((2,), {"id": 1})  # key collision
        with pytest.raises(ConstraintViolation):
            people_table.diff_for_update((2,), {"id": None})  # NOT NULL key

    def test_diff_for_insert_and_delete(self, people_table):
        insert = people_table.diff_for_insert(
            {"id": 9, "name": "Iku", "city": "Nara", "age": 51})
        assert [c.kind for c in insert.changes] == ["insert"]
        delete = people_table.diff_for_delete((3,))
        assert [c.kind for c in delete.changes] == ["delete"]
        assert delete.changes[0].before["name"] == "Chie"
        with pytest.raises(ConstraintViolation):
            people_table.diff_for_insert({"id": 1, "name": "Dup"})
        with pytest.raises(RowNotFoundError):
            people_table.diff_for_delete((99,))

    def test_constructors_leave_table_untouched(self, people_table):
        before = people_table.fingerprint()
        people_table.diff_for_update((1,), {"age": 99})
        people_table.diff_for_insert({"id": 9, "name": "Iku", "city": "Nara", "age": 51})
        people_table.diff_for_delete((1,))
        assert people_table.fingerprint() == before
