"""Property-based tests for diffs, apply_diff and table invariants.

The update workflow transmits diffs between peers and applies them to the
receiving peer's stored shared table; these properties guarantee that a diff
always reconstructs the sender's state exactly, for arbitrary combinations of
inserts, updates and deletes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational.diff import TableDiff, apply_diff, diff_tables
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table

SCHEMA = Schema(
    columns=(
        Column("id", DataType.INTEGER, nullable=False),
        Column("value", DataType.STRING),
        Column("count", DataType.INTEGER),
    ),
    primary_key=("id",),
)

_values = st.text(alphabet="abcxyz", min_size=0, max_size=5)


@st.composite
def tables(draw, min_rows=0, max_rows=10):
    ids = draw(st.lists(st.integers(min_value=0, max_value=30), unique=True,
                        min_size=min_rows, max_size=max_rows))
    rows = [{"id": identifier, "value": draw(_values),
             "count": draw(st.integers(min_value=0, max_value=9))}
            for identifier in ids]
    return Table("t", SCHEMA, rows)


@st.composite
def table_pairs(draw):
    """A (before, after) pair where after is an arbitrary mutation of before."""
    before = draw(tables())
    after = before.snapshot()
    for row in list(after):
        action = draw(st.sampled_from(["keep", "update", "delete"]))
        if action == "delete":
            after.delete_by_key((row["id"],))
        elif action == "update":
            after.update_by_key((row["id"],), {"value": draw(_values),
                                               "count": draw(st.integers(0, 9))})
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        new_id = draw(st.integers(min_value=31, max_value=60))
        if not after.contains_key(new_id):
            after.insert({"id": new_id, "value": draw(_values), "count": 0})
    return before, after


class TestDiffProperties:
    @given(table_pairs())
    @settings(max_examples=60, deadline=None)
    def test_apply_diff_reconstructs_target(self, pair):
        before, after = pair
        diff = diff_tables(before, after)
        replica = before.snapshot()
        apply_diff(replica, diff)
        assert replica == after

    @given(table_pairs())
    @settings(max_examples=60, deadline=None)
    def test_diff_round_trips_through_serialisation(self, pair):
        before, after = pair
        diff = diff_tables(before, after)
        restored = TableDiff.from_dict(diff.to_dict())
        replica = before.snapshot()
        apply_diff(replica, restored)
        assert replica == after

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_self_diff_is_empty(self, table):
        assert diff_tables(table, table.snapshot()).is_empty

    @given(table_pairs())
    @settings(max_examples=60, deadline=None)
    def test_diff_summary_matches_changes(self, pair):
        before, after = pair
        diff = diff_tables(before, after)
        summary = diff.summary()
        before_keys = {row["id"] for row in before}
        after_keys = {row["id"] for row in after}
        assert summary["inserted"] == len(after_keys - before_keys)
        assert summary["deleted"] == len(before_keys - after_keys)

    @given(table_pairs())
    @settings(max_examples=60, deadline=None)
    def test_reverse_diff_restores_original(self, pair):
        before, after = pair
        forward = diff_tables(before, after)
        backward = diff_tables(after, before)
        replica = before.snapshot()
        apply_diff(replica, forward)
        apply_diff(replica, backward)
        assert replica == before

    @given(tables(min_rows=1))
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_invariant_under_row_order(self, table):
        rows = [row.to_dict() for row in table]
        reversed_table = Table("t", SCHEMA, list(reversed(rows)))
        assert table.fingerprint() == reversed_table.fingerprint()
        assert table == reversed_table
