"""Tests for columns and schemas."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.schema import Column, DataType, Schema


class TestDataType:
    @pytest.mark.parametrize("dtype,value,expected", [
        (DataType.STRING, "hello", True),
        (DataType.STRING, 5, False),
        (DataType.INTEGER, 5, True),
        (DataType.INTEGER, True, False),
        (DataType.INTEGER, 5.5, False),
        (DataType.FLOAT, 5.5, True),
        (DataType.FLOAT, 5, True),
        (DataType.BOOLEAN, True, True),
        (DataType.BOOLEAN, 1, False),
        (DataType.DATE, "2019-04-24", True),
    ])
    def test_validates(self, dtype, value, expected):
        assert dtype.validates(value) is expected

    def test_none_is_always_type_valid(self):
        for dtype in DataType:
            assert dtype.validates(None)

    def test_coerce_int_to_float(self):
        assert DataType.FLOAT.coerce(3) == 3.0
        assert isinstance(DataType.FLOAT.coerce(3), float)

    def test_coerce_none_stays_none(self):
        assert DataType.INTEGER.coerce(None) is None


class TestColumn:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            Column(name="")

    def test_renamed_preserves_type(self):
        column = Column("age", DataType.INTEGER, nullable=False)
        renamed = column.renamed("years")
        assert renamed.name == "years"
        assert renamed.dtype is DataType.INTEGER
        assert renamed.nullable is False

    def test_round_trip_dict(self):
        column = Column("dosage", DataType.STRING, nullable=True, description="a4")
        assert Column.from_dict(column.to_dict()) == column


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema(columns=(Column("a"), Column("a")))

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema(columns=(Column("a"),), primary_key=("b",))

    def test_primary_key_becomes_not_null(self):
        schema = Schema(columns=(Column("id", DataType.INTEGER, nullable=True),),
                        primary_key=("id",))
        assert schema.column("id").nullable is False

    def test_build_from_mixed_specs(self):
        schema = Schema.build(["a", ("b", DataType.INTEGER), Column("c")], primary_key=["a"])
        assert schema.column_names == ("a", "b", "c")
        assert schema.column("b").dtype is DataType.INTEGER

    def test_build_from_string_dtype(self):
        schema = Schema.build([("n", "integer")])
        assert schema.column("n").dtype is DataType.INTEGER

    def test_build_rejects_garbage(self):
        with pytest.raises(SchemaError):
            Schema.build([42])

    def test_column_lookup_unknown(self):
        schema = Schema.build(["a"])
        with pytest.raises(UnknownColumnError):
            schema.column("missing")

    def test_contains(self):
        schema = Schema.build(["a", "b"])
        assert "a" in schema
        assert "z" not in schema
        assert 42 not in schema

    def test_project_keeps_key_if_present(self):
        schema = Schema.build([("id", DataType.INTEGER), "name", "city"], primary_key=["id"])
        projected = schema.project(["id", "city"])
        assert projected.primary_key == ("id",)
        assert projected.column_names == ("id", "city")

    def test_project_drops_key_if_missing(self):
        schema = Schema.build([("id", DataType.INTEGER), "name"], primary_key=["id"])
        assert schema.project(["name"]).primary_key == ()

    def test_project_explicit_key(self):
        schema = Schema.build([("id", DataType.INTEGER), "name"], primary_key=["id"])
        assert schema.project(["name"], primary_key=["name"]).primary_key == ("name",)

    def test_project_unknown_column(self):
        schema = Schema.build(["a"])
        with pytest.raises(UnknownColumnError):
            schema.project(["a", "b"])

    def test_rename(self):
        schema = Schema.build([("id", DataType.INTEGER), "name"], primary_key=["id"])
        renamed = schema.rename({"id": "ident"})
        assert renamed.column_names == ("ident", "name")
        assert renamed.primary_key == ("ident",)

    def test_rename_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            Schema.build(["a"]).rename({"b": "c"})

    def test_drop(self):
        schema = Schema.build(["a", "b", "c"])
        assert schema.drop(["b"]).column_names == ("a", "c")

    def test_is_projection_of(self):
        full = Schema.build([("id", DataType.INTEGER), "name", "city"])
        part = Schema.build([("id", DataType.INTEGER), "city"])
        assert part.is_projection_of(full)
        assert not full.is_projection_of(part)

    def test_is_projection_checks_types(self):
        full = Schema.build([("id", DataType.INTEGER)])
        other = Schema.build([("id", DataType.STRING)])
        assert not other.is_projection_of(full)

    def test_merge(self):
        left = Schema.build([("id", DataType.INTEGER), "name"], primary_key=["id"])
        right = Schema.build([("id", DataType.INTEGER), "city"])
        merged = left.merge(right)
        assert merged.column_names == ("id", "name", "city")
        assert merged.primary_key == ("id",)

    def test_merge_conflicting_types(self):
        left = Schema.build([("id", DataType.INTEGER)])
        right = Schema.build([("id", DataType.STRING)])
        with pytest.raises(SchemaError):
            left.merge(right)

    def test_round_trip_dict(self):
        schema = Schema.build([("id", DataType.INTEGER), "name"], primary_key=["id"])
        assert Schema.from_dict(schema.to_dict()) == schema
