"""Tests for secondary indexes and row-level diffs."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.diff import RowChange, TableDiff, apply_diff, diff_tables
from repro.relational.index import HashIndex
from repro.relational.schema import Schema
from repro.relational.table import Table


class TestHashIndex:
    def test_lookup(self, people_table):
        index = HashIndex(people_table, ["city"])
        assert [row["name"] for row in index.lookup("Osaka")] == ["Ben"]
        assert index.lookup("Nowhere") == []

    def test_contains(self, people_table):
        index = HashIndex(people_table, ["city"])
        assert index.contains("Kyoto")
        assert not index.contains("Nara")

    def test_compound_index(self, people_table):
        index = HashIndex(people_table, ["city", "age"])
        assert index.lookup("Osaka", 41)[0]["name"] == "Ben"

    def test_lookup_arity_checked(self, people_table):
        index = HashIndex(people_table, ["city", "age"])
        with pytest.raises(ValueError):
            index.lookup("Osaka")

    def test_unknown_column(self, people_table):
        with pytest.raises(UnknownColumnError):
            HashIndex(people_table, ["missing"])

    def test_rebuild_reflects_updates(self, people_table):
        index = HashIndex(people_table, ["city"])
        people_table.update_by_key((1,), {"city": "Osaka"})
        index.rebuild(people_table)
        assert len(index.lookup("Osaka")) == 2

    def test_rebuild_rejects_wrong_table(self, people_table):
        index = HashIndex(people_table, ["city"])
        other = Table("other", people_table.schema)
        with pytest.raises(ValueError):
            index.rebuild(other)

    def test_len_and_distinct(self, people_table):
        index = HashIndex(people_table, ["city"])
        assert len(index) == 3
        assert index.distinct_keys == 3


class TestDiffTables:
    def test_empty_diff_for_identical(self, people_table):
        diff = diff_tables(people_table, people_table.snapshot())
        assert diff.is_empty
        assert diff.summary() == {"inserted": 0, "deleted": 0, "updated": 0}

    def test_detects_updates(self, people_table):
        after = people_table.snapshot()
        after.update_by_key((2,), {"city": "Tokyo", "age": 42})
        diff = diff_tables(people_table, after)
        assert len(diff.updated) == 1
        change = diff.updated[0]
        assert set(change.changed_columns) == {"city", "age"}
        assert change.key == (2,)

    def test_detects_inserts_and_deletes(self, people_table):
        after = people_table.snapshot()
        after.delete_by_key((1,))
        after.insert({"id": 9, "name": "New", "city": "Kobe", "age": 20})
        diff = diff_tables(people_table, after)
        assert len(diff.inserted) == 1
        assert len(diff.deleted) == 1
        assert diff.inserted[0].key == (9,)
        assert diff.deleted[0].key == (1,)

    def test_touched_columns(self, people_table):
        after = people_table.snapshot()
        after.update_by_key((1,), {"age": 35})
        after.update_by_key((2,), {"city": "Tokyo"})
        diff = diff_tables(people_table, after)
        assert set(diff.touched_columns) == {"age", "city"}

    def test_schema_mismatch_rejected(self, people_table):
        other = people_table.project(["id", "name"])
        with pytest.raises(SchemaError):
            diff_tables(people_table, other)

    def test_keyless_positional_diff(self):
        schema = Schema.build(["v"])
        before = Table("t", schema, [{"v": "a"}, {"v": "b"}])
        after = Table("t", schema, [{"v": "a"}, {"v": "c"}, {"v": "d"}])
        diff = diff_tables(before, after)
        assert len(diff.updated) == 1
        assert len(diff.inserted) == 1

    def test_round_trip_dict(self, people_table):
        after = people_table.snapshot()
        after.update_by_key((3,), {"age": 30})
        diff = diff_tables(people_table, after)
        restored = TableDiff.from_dict(diff.to_dict())
        assert restored.summary() == diff.summary()
        assert restored.changes[0].key == diff.changes[0].key


class TestApplyDiff:
    def test_apply_reproduces_target(self, people_table):
        after = people_table.snapshot()
        after.update_by_key((1,), {"city": "Nagoya"})
        after.delete_by_key((2,))
        after.insert({"id": 4, "name": "Dai", "city": "Kobe", "age": 55})
        diff = diff_tables(people_table, after)

        replica = people_table.snapshot()
        apply_diff(replica, diff)
        assert replica == after

    def test_apply_requires_keyed_table(self):
        schema = Schema.build(["v"])
        table = Table("t", schema, [{"v": "a"}])
        diff = TableDiff(table_name="t", changes=(RowChange("insert", (1,), None, {"v": "b"}),))
        with pytest.raises(SchemaError):
            apply_diff(table, diff)
