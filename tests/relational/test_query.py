"""Tests for the relational-algebra query AST."""

import pytest

from repro.errors import SchemaError, UnknownTableError
from repro.relational.predicates import Eq, Gt
from repro.relational.query import Join, Project, Query, Rename, Scan, Select, execute_query, projection_query
from repro.relational.schema import DataType, Schema
from repro.relational.table import Table


@pytest.fixture
def tables(people_table):
    orders_schema = Schema.build(
        [("order_id", DataType.INTEGER), ("id", DataType.INTEGER), ("item", DataType.STRING)],
        primary_key=["order_id"],
    )
    orders = Table("orders", orders_schema, [
        {"order_id": 100, "id": 1, "item": "aspirin"},
        {"order_id": 101, "id": 1, "item": "ibuprofen"},
        {"order_id": 102, "id": 3, "item": "bandage"},
    ])
    return {"people": people_table, "orders": orders}


class TestScanProjectSelect:
    def test_scan_returns_snapshot(self, tables):
        result = Scan("people").execute(tables)
        result.update_by_key((1,), {"name": "Changed"})
        assert tables["people"].get(1)["name"] == "Aiko"

    def test_scan_unknown_table(self, tables):
        with pytest.raises(UnknownTableError):
            Scan("missing").execute(tables)

    def test_project(self, tables):
        result = Project(Scan("people"), ("id", "city")).execute(tables)
        assert result.schema.column_names == ("id", "city")

    def test_select(self, tables):
        result = Select(Scan("people"), Gt("age", 30)).execute(tables)
        assert len(result) == 2

    def test_select_default_predicate(self, tables):
        assert len(Select(Scan("people")).execute(tables)) == 3

    def test_rename(self, tables):
        result = Rename(Scan("people"), {"city": "location"}).execute(tables)
        assert "location" in result.schema.column_names

    def test_nested_pipeline(self, tables):
        query = Project(Select(Scan("people"), Gt("age", 30)), ("name",))
        result = query.execute(tables)
        assert {row["name"] for row in result} == {"Aiko", "Ben"}

    def test_projection_query_helper(self, tables):
        query = projection_query("people", ("id", "name"))
        assert query.execute(tables).schema.column_names == ("id", "name")


class TestJoin:
    def test_join_matches_rows(self, tables):
        query = Join(Scan("people"), Scan("orders"), ("id",))
        result = query.execute(tables)
        assert len(result) == 3
        items_for_1 = {row["item"] for row in result if row["id"] == 1}
        assert items_for_1 == {"aspirin", "ibuprofen"}

    def test_join_missing_column(self, tables):
        with pytest.raises(SchemaError):
            Join(Scan("people"), Scan("orders"), ("missing",)).execute(tables)

    def test_join_schema_merges_columns(self, tables):
        result = Join(Scan("people"), Scan("orders"), ("id",)).execute(tables)
        assert "item" in result.schema.column_names
        assert "name" in result.schema.column_names


class TestSerialisation:
    def test_round_trip(self, tables):
        query = Project(
            Select(Rename(Scan("people"), {"city": "location"}), Eq("location", "Osaka")),
            ("id", "location"),
        )
        restored = Query.from_dict(query.to_dict())
        assert restored.execute(tables).rows == query.execute(tables).rows

    def test_join_round_trip(self, tables):
        query = Join(Scan("people"), Scan("orders"), ("id",))
        restored = Query.from_dict(query.to_dict())
        assert len(restored.execute(tables)) == len(query.execute(tables))

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Query.from_dict({"kind": "mystery"})

    def test_execute_query_renames_result(self, tables):
        result = execute_query(Scan("people"), tables, name="D13")
        assert result.name == "D13"

    def test_output_schema(self, tables):
        query = Project(Scan("people"), ("id", "name"))
        assert query.output_schema(tables).column_names == ("id", "name")
