"""The WAL backend behind a pluggable wire codec: binary segments.

``JsonlWalBackend(codec="binary")`` swaps JSONL lines for length-prefixed
frames of the binary codec's bytes (``wal-*.walb``) behind the unchanged
backend API.  These tests pin the properties the swap must preserve —
round trip, rotation, torn-tail repair, truncation covering — plus the
properties it adds: framed repair semantics and the mixed-format refusal.
"""

from __future__ import annotations

import pytest

from repro.errors import WalCorruptionError
from repro.relational.durability import (
    JsonlWalBackend,
    open_durable_database,
    recover,
)
from repro.relational.schema import Schema
from repro.relational.wal import WalEntry


def _entry(sequence: int, tag: str = "x") -> WalEntry:
    return WalEntry(sequence=sequence, operation="response", table="responses",
                    payload={"tag": tag, "sequence": sequence,
                             "nested": {"ok": True, "values": [1, 2.5, None]}})


def _backend(tmp_path, **kwargs) -> JsonlWalBackend:
    kwargs.setdefault("codec", "binary")
    return JsonlWalBackend(tmp_path / "wal", **kwargs)


class TestBinarySegments:
    def test_round_trip_and_suffix(self, tmp_path):
        backend = _backend(tmp_path)
        originals = [_entry(sequence) for sequence in range(1, 21)]
        for entry in originals:
            backend.append(entry)
        backend.sync()
        assert all(path.suffix == ".walb" for path in backend.segment_paths())
        entries, torn = backend.read_entries()
        assert torn == 0
        assert [e.to_dict() for e in entries] == [e.to_dict() for e in originals]
        assert backend.statistics()["codec"] == "binary"
        backend.close()

    def test_rotation_and_reopen(self, tmp_path):
        backend = _backend(tmp_path, segment_max_bytes=200)
        for sequence in range(1, 21):
            backend.append(_entry(sequence))
        backend.sync()
        assert len(backend.segment_paths()) > 1
        assert backend.rotations > 0
        backend.close()

        reopened = _backend(tmp_path)
        entries, torn = reopened.read_entries()
        assert [e.sequence for e in entries] == list(range(1, 21))
        assert torn == 0
        reopened.close()

    def test_read_since_cursor(self, tmp_path):
        backend = _backend(tmp_path, segment_max_bytes=200)
        for sequence in range(1, 21):
            backend.append(_entry(sequence))
        backend.sync()
        entries, _ = backend.read_entries(since=15)
        assert [e.sequence for e in entries] == [16, 17, 18, 19, 20]
        backend.close()

    def test_truncate_covering_rule(self, tmp_path):
        backend = _backend(tmp_path, segment_max_bytes=200)
        for sequence in range(1, 21):
            backend.append(_entry(sequence))
        backend.sync()
        removed = backend.truncate(10)
        assert removed >= 1
        entries, _ = backend.read_entries(since=10)
        assert [e.sequence for e in entries] == list(range(11, 21))
        assert backend.covers(10)
        backend.close()


class TestTornTailRepair:
    def test_partial_frame_is_amputated_on_reopen(self, tmp_path):
        backend = _backend(tmp_path)
        for sequence in range(1, 6):
            backend.append(_entry(sequence))
        backend.sync()
        backend.close()
        segment = sorted((tmp_path / "wal").glob("wal-*.walb"))[-1]
        with open(segment, "ab") as handle:
            handle.write((500).to_bytes(4, "big") + b"only-a-few-bytes")

        reopened = _backend(tmp_path)
        assert reopened.torn_lines_repaired == 1
        entries, torn = reopened.read_entries()
        assert [e.sequence for e in entries] == [1, 2, 3, 4, 5]
        assert torn == 0
        # The repaired log appends cleanly past the amputation.
        reopened.append(_entry(6))
        reopened.sync()
        entries, _ = reopened.read_entries()
        assert [e.sequence for e in entries] == [1, 2, 3, 4, 5, 6]
        reopened.close()

    def test_torn_header_alone_is_repaired(self, tmp_path):
        backend = _backend(tmp_path)
        backend.append(_entry(1))
        backend.sync()
        backend.close()
        segment = sorted((tmp_path / "wal").glob("wal-*.walb"))[-1]
        with open(segment, "ab") as handle:
            handle.write(b"\x00\x00")  # 2 of 4 prefix bytes

        reopened = _backend(tmp_path)
        assert reopened.torn_lines_repaired == 1
        entries, _ = reopened.read_entries()
        assert [e.sequence for e in entries] == [1]
        reopened.close()

    def test_corrupt_complete_frame_is_corruption_not_tear(self, tmp_path):
        """A complete frame holds exactly what its writer framed — decode
        failure there is corruption, never a legitimate crash artefact."""
        backend = _backend(tmp_path)
        backend.append(_entry(1))
        backend.sync()
        backend.close()
        segment = sorted((tmp_path / "wal").glob("wal-*.walb"))[-1]
        with open(segment, "ab") as handle:
            garbage = b"\x7f garbage bytes"
            handle.write(len(garbage).to_bytes(4, "big") + garbage)

        reopened = _backend(tmp_path)  # framing is intact: nothing to repair
        assert reopened.torn_lines_repaired == 0
        with pytest.raises(WalCorruptionError, match="undecodable"):
            reopened.read_entries()
        reopened.close()


class TestFormatIsolation:
    def test_jsonl_directory_refuses_binary_codec(self, tmp_path):
        plain = JsonlWalBackend(tmp_path / "wal")
        plain.append(_entry(1))
        plain.sync()
        plain.close()
        with pytest.raises(WalCorruptionError, match="another"):
            _backend(tmp_path)

    def test_binary_directory_refuses_jsonl(self, tmp_path):
        backend = _backend(tmp_path)
        backend.append(_entry(1))
        backend.sync()
        backend.close()
        with pytest.raises(WalCorruptionError, match="another"):
            JsonlWalBackend(tmp_path / "wal")

    def test_canonical_json_codec_keeps_legacy_format(self, tmp_path):
        """codec='canonical-json' must stay byte-compatible with the default
        JSONL path — same suffix, interchangeable directories."""
        named = JsonlWalBackend(tmp_path / "wal", codec="canonical-json")
        named.append(_entry(1))
        named.sync()
        assert named.codec is None  # resolved to the proven JSONL fast path
        assert all(p.suffix == ".jsonl" for p in named.segment_paths())
        named.close()
        legacy = JsonlWalBackend(tmp_path / "wal")
        entries, _ = legacy.read_entries()
        assert [e.sequence for e in entries] == [1]
        legacy.close()


class TestDurableDatabaseWithCodec:
    def test_checkpoint_recover_cycle(self, tmp_path):
        state_dir = tmp_path / "db"
        database = open_durable_database("clinic", state_dir, codec="binary")
        schema = Schema.build([("id", "integer"), ("name", "string")],
                              primary_key=["id"])
        database.create_table("patients", schema)
        for row_id in range(6):
            database.insert("patients", {"id": row_id,
                                         "name": f"patient-{row_id}"})
        database.wal.sync()
        fingerprint = database.table("patients").fingerprint()
        database.wal.close()

        recovery = recover(state_dir, codec="binary")
        assert recovery.entries_replayed >= 6
        recovered = recovery.database.table("patients")
        assert recovered.fingerprint() == fingerprint
        assert recovery.database.wal.backend.statistics()["codec"] == "binary"
        recovery.database.wal.backend.close()
