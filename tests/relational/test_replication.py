"""WAL-shipping read replicas: segment-boundary shipping edges, bounded
*measured* staleness, crash restarts converging byte-identically, and
diff-driven cache pre-warming."""

from __future__ import annotations

import pytest

from repro.config import (
    ConsensusConfig,
    DurabilityConfig,
    LedgerConfig,
    ReplicationConfig,
    SystemConfig,
)
from repro.gateway import ReadViewRequest, SharingGateway, UpdateEntryRequest
from repro.relational.durability import JsonlWalBackend
from repro.relational.replication import ReadReplica, ReplicationError
from repro.relational.wal import WalEntry
from repro.workloads.topology import TopologySpec, build_topology_system


# ---------------------------------------------------------------------------
# Satellite: the truncate / read_entries(since=...) segment-boundary edge.
# Replicas replay from arbitrary cursors, so these are load-bearing.
# ---------------------------------------------------------------------------


def _entry(sequence):
    return WalEntry(sequence, "insert", "t", {"row": {"id": sequence}})


def _backend_with(tmp_path, count, per_segment=2):
    """A backend holding sequences 1..count, ``per_segment`` per segment."""
    line = len(b'{"sequence":1,"operation":"insert","table":"t",'
               b'"payload":{"row":{"id":1}}}\n')
    backend = JsonlWalBackend(tmp_path / "wal",
                              segment_max_bytes=line * per_segment)
    for sequence in range(1, count + 1):
        backend.append(_entry(sequence))
    backend.flush()
    return backend


class TestSegmentBoundaryEdges:
    def test_checkpoint_on_segment_last_entry_deletes_it_exactly(self, tmp_path):
        # Segments: [1,2] [3,4] [5,6] [7] — checkpoint exactly on 4, the
        # last entry of the second segment: both leading segments must go
        # (their contents are fully covered), nothing past 4 may go.
        backend = _backend_with(tmp_path, 7)
        assert len(backend.segment_paths()) == 4
        removed = backend.truncate(4)
        assert removed == 2
        sequences = [e.sequence for e in backend.read_entries()[0]]
        assert sequences == [5, 6, 7]

    @pytest.mark.parametrize("since", range(0, 8))
    def test_read_entries_from_every_boundary_cursor(self, tmp_path, since):
        # Every cursor — mid-segment, on a segment's last entry, at the very
        # end — yields exactly the sequences past it.
        backend = _backend_with(tmp_path, 7)
        entries, torn = backend.read_entries(since=since)
        assert torn == 0
        assert [e.sequence for e in entries] == list(range(since + 1, 8))

    @pytest.mark.parametrize("since", range(0, 8))
    def test_read_entries_after_boundary_truncation(self, tmp_path, since):
        # After a checkpoint lands exactly on a segment boundary, covered
        # cursors read a complete tail and trailing cursors are flagged as
        # uncovered rather than silently shorted.
        backend = _backend_with(tmp_path, 7)
        backend.truncate(4)
        if since >= 4:
            assert backend.covers(since)
            entries, _ = backend.read_entries(since=since)
            assert [e.sequence for e in entries] == list(range(since + 1, 8))
        else:
            # Entries (since, 4] are gone: the tail would be incomplete.
            assert not backend.covers(since)

    def test_covers_on_empty_and_fresh_backends(self, tmp_path):
        backend = JsonlWalBackend(tmp_path / "wal")
        assert backend.first_sequence() is None
        assert backend.covers(0) and backend.covers(10)
        backend.append(_entry(1))
        backend.flush()
        assert backend.first_sequence() == 1
        assert backend.covers(0) and backend.covers(5)

    def test_covers_after_full_truncation(self, tmp_path):
        # A fully-truncated WAL retains nothing, so no cursor can be shorted
        # *by the WAL* — whether the checkpoint superseded the cursor is the
        # manifest's call (the shipper checks it).
        backend = _backend_with(tmp_path, 4)
        backend.truncate(4)
        assert backend.segment_paths() == []
        assert backend.covers(0)

    def test_read_entries_skips_fully_covered_segments(self, tmp_path):
        # The shipping fast path: a cursor deep into the WAL must not
        # re-decode the segments before it.  Equivalence with filtering a
        # full read is the correctness half; the skip itself is observable
        # through covers() + the boundary parametrisation above.
        backend = _backend_with(tmp_path, 20, per_segment=3)
        full = [e.sequence for e in backend.read_entries()[0]]
        for since in (0, 5, 9, 12, 19, 20):
            tail = [e.sequence for e in backend.read_entries(since=since)[0]]
            assert tail == [s for s in full if s > since]


# ---------------------------------------------------------------------------
# Live replicas behind a gateway.
# ---------------------------------------------------------------------------


def build_replicated_gateway(tmp_path, replicas=2, ship_interval=0.0,
                             max_lag=30.0, block_interval=1.0,
                             durability=None, **gateway_kwargs):
    config = SystemConfig(
        ledger=LedgerConfig(
            consensus=ConsensusConfig(kind="poa", block_interval=block_interval)),
        durability=durability or DurabilityConfig(state_dir=str(tmp_path)),
        replication=ReplicationConfig(replicas=replicas,
                                      ship_interval=ship_interval,
                                      max_lag=max_lag),
    )
    system = build_topology_system(TopologySpec(patients=2, researchers=0),
                                   config)
    return SharingGateway(system, **gateway_kwargs), system


def patient_and_mid(system):
    peer = sorted(name for name in system.peer_names
                  if name.startswith("patient"))[0]
    metadata_id = system.peer(peer).agreement_ids[0]
    return peer, metadata_id


def update_for(metadata_id, tag):
    patient_id = int(metadata_id.split(":")[1])
    return UpdateEntryRequest(metadata_id=metadata_id, key=(patient_id,),
                              updates={"clinical_data": tag})


class TestReplicaReads:
    def test_replica_serves_reads_and_writes_stay_primary(self, tmp_path):
        gateway, system = build_replicated_gateway(tmp_path)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        assert gateway.submit(session, update_for(metadata_id, "v1")).status \
            in ("ok", "queued")
        gateway.drain()
        response = gateway.submit(session, ReadViewRequest(metadata_id=metadata_id))
        assert response.status == "ok"
        assert response.payload["replica"] == "replica-0"
        assert response.payload["staleness"] == pytest.approx(0.0)
        rows = {row["clinical_data"]
                for row in response.payload["table"]["rows"]}
        assert "v1" in rows
        metrics = gateway.metrics()["replication"]
        assert metrics["enabled"] and metrics["replica_reads"] == 1

    def test_reads_spread_across_fleet(self, tmp_path):
        gateway, system = build_replicated_gateway(tmp_path, replicas=3)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "v1"))
        gateway.drain()
        served = set()
        for _ in range(6):
            response = gateway.submit(
                session, ReadViewRequest(metadata_id=metadata_id))
            served.add(response.payload["replica"])
        # Deterministic least-loaded routing rotates the service lanes.
        assert served == {"replica-0", "replica-1", "replica-2"}

    def test_requires_durable_peers(self, tmp_path):
        from repro.errors import GatewayError
        with pytest.raises(GatewayError):
            build_replicated_gateway(
                tmp_path, durability=DurabilityConfig(state_dir=None))


class TestMeasuredStaleness:
    def test_lag_equals_commit_minus_replayed_through(self, tmp_path):
        # Property: at every commit boundary, each replica's reported lag is
        # exactly (primary's last commit sim-time − the replica's
        # replayed-through sim-time), measured against an independent oracle.
        gateway, system = build_replicated_gateway(tmp_path, ship_interval=5.0)
        clock = system.simulator.clock
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        for round_number in range(8):
            gateway.submit(session, update_for(metadata_id, f"v{round_number}"))
            gateway.commit_once()
            last_commit = clock.now()  # the oracle's reference point
            assert gateway.replica_router.last_commit_at == pytest.approx(last_commit)
            for replica in gateway.shipper.replicas:
                expected = max(0.0, last_commit - replica.replayed_through)
                assert replica.lag(last_commit) == pytest.approx(expected)
            response = gateway.submit(
                session, ReadViewRequest(metadata_id=metadata_id))
            if "replica" in response.payload:
                staleness = response.payload["staleness"]
                assert 0.0 <= staleness <= 30.0
                serving = next(r for r in gateway.shipper.replicas
                               if r.name == response.payload["replica"])
                assert staleness == pytest.approx(
                    max(0.0, gateway.replica_router.last_commit_at
                        - serving.replayed_through))

    def test_staleness_grows_between_shipments(self, tmp_path):
        gateway, system = build_replicated_gateway(tmp_path, ship_interval=100.0)
        clock = system.simulator.clock
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "v0"))
        gateway.commit_once()  # first shipment is unthrottled
        first_ship = clock.now()
        for round_number in range(3):
            gateway.submit(session, update_for(metadata_id, f"w{round_number}"))
            gateway.commit_once()  # throttled: no shipment
        lag = gateway.shipper.replicas[0].lag(clock.now())
        assert lag == pytest.approx(clock.now() - first_ship)
        assert lag > 0.0

    def test_over_lag_replicas_fall_back_to_primary(self, tmp_path):
        gateway, system = build_replicated_gateway(
            tmp_path, ship_interval=100.0, max_lag=0.5)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "v0"))
        gateway.commit_once()
        for round_number in range(3):  # push lag past max_lag
            gateway.submit(session, update_for(metadata_id, f"w{round_number}"))
            gateway.commit_once()
        response = gateway.submit(session,
                                  ReadViewRequest(metadata_id=metadata_id))
        assert response.status == "ok"
        assert "replica" not in response.payload  # primary served it
        assert gateway.replica_router.primary_fallbacks >= 1
        # The primary's answer is current, not the stale replica view.
        rows = {row["clinical_data"]
                for row in response.payload["table"]["rows"]}
        assert "w2" in rows

    def test_drain_quiesces_fleet_to_zero_lag(self, tmp_path):
        gateway, system = build_replicated_gateway(tmp_path, ship_interval=100.0)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        for round_number in range(4):
            gateway.submit(session, update_for(metadata_id, f"v{round_number}"))
            gateway.commit_once()
        gateway.drain()  # force-ships
        clock = system.simulator.clock
        for replica in gateway.shipper.replicas:
            assert replica.lag(clock.now()) == pytest.approx(0.0)
            assert replica.fingerprints() == system.state_fingerprints()


class TestReplicaRestart:
    def test_restarted_replica_converges_byte_identically(self, tmp_path):
        # A replica crashes mid-stream; its replacement bootstraps from the
        # checkpoint manifest plus the live WAL tail and must converge to
        # the primary's exact fingerprints once shipping resumes.
        gateway, system = build_replicated_gateway(tmp_path, replicas=2)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        for round_number in range(3):
            gateway.submit(session, update_for(metadata_id, f"v{round_number}"))
            gateway.commit_once()
        crashed = gateway.shipper.replicas[1]
        gateway.shipper.detach(crashed)
        replacement = ReadReplica(
            crashed.name, system.simulator.clock,
            lambda p, mid: system.peer(p).agreement(mid).view_name_for(p))
        gateway.shipper.attach(replacement)
        assert replacement.bootstraps >= 1
        for round_number in range(3):
            gateway.submit(session, update_for(metadata_id, f"w{round_number}"))
            gateway.commit_once()
        gateway.drain()
        assert replacement.fingerprints() == system.state_fingerprints()

    def test_mid_segment_restart_converges(self, tmp_path):
        # Restart while the active segment is still open (entries past the
        # last checkpoint live only in the WAL tail): the bootstrap replays
        # the live tail, not just the snapshot.
        gateway, system = build_replicated_gateway(tmp_path, replicas=1)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "only"))
        gateway.commit_once()  # no checkpoint configured: WAL tail only
        old = gateway.shipper.replicas[0]
        gateway.shipper.detach(old)
        replacement = ReadReplica(
            "replica-0", system.simulator.clock,
            lambda p, mid: system.peer(p).agreement(mid).view_name_for(p))
        gateway.shipper.attach(replacement)
        gateway.drain()
        assert replacement.fingerprints() == system.state_fingerprints()
        assert replacement.fingerprints() == old.fingerprints()

    def test_apply_unknown_peer_raises(self, tmp_path):
        replica = ReadReplica("r", None, lambda p, mid: "v")
        from repro.relational.replication import ShippedBatch
        with pytest.raises(ReplicationError):
            replica.apply(ShippedBatch(peer="ghost", entries=(),
                                       committed_at=0.0))


class TestRebootstrapAcrossCheckpoint:
    def test_lagging_cursor_rebootstraps_after_truncation(self, tmp_path):
        # Checkpoints fire at every commit boundary (1-byte trigger) and
        # truncate the shipped-from WAL while the replica's cursor lags far
        # behind (huge ship interval).  The quiesce shipment must detect the
        # lost tail and re-bootstrap from the manifest — silently shipping
        # the truncated WAL would diverge the replica forever.
        durability = DurabilityConfig(state_dir=str(tmp_path),
                                      checkpoint_wal_bytes=1)
        gateway, system = build_replicated_gateway(
            tmp_path, replicas=1, ship_interval=1000.0, durability=durability)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        for round_number in range(4):
            gateway.submit(session, update_for(metadata_id, f"v{round_number}"))
            gateway.commit_once()
        gateway.drain()
        assert gateway.shipper.rebootstraps >= 1
        replica = gateway.shipper.replicas[0]
        assert replica.fingerprints() == system.state_fingerprints()


class TestCachePrewarm:
    def test_commit_prewarms_primary_cache(self, tmp_path):
        # The long-open cache follow-up: a commit's TableDiff installs the
        # touched views for both peers before any reader asks, so the next
        # read is a hit, not a read-through miss.
        gateway, system = build_replicated_gateway(tmp_path, replicas=0)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "warm"))
        gateway.drain()
        assert gateway.cache.prewarms >= 2  # both peers of the agreement
        counterpart = [name for name
                       in system.peer(peer).agreement(metadata_id).peers
                       if name != peer][0]
        assert gateway.cache.peek(peer, metadata_id) is not None
        assert gateway.cache.peek(counterpart, metadata_id) is not None
        misses_before = gateway.cache.misses
        response = gateway.submit(session,
                                  ReadViewRequest(metadata_id=metadata_id))
        assert response.status == "ok"
        assert gateway.cache.misses == misses_before  # zero read-through
        assert gateway.cache.hits >= 1

    def test_replica_cache_prewarmed_from_shipped_notices(self, tmp_path):
        gateway, system = build_replicated_gateway(tmp_path, replicas=1)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "warm"))
        gateway.drain()
        replica = gateway.shipper.replicas[0]
        assert replica.cache.prewarms >= 1
        misses_before = replica.cache.misses
        response = gateway.submit(session,
                                  ReadViewRequest(metadata_id=metadata_id))
        assert response.payload["replica"] == replica.name
        assert replica.cache.misses == misses_before
        assert replica.cache.hits >= 1

    def test_prewarm_disabled_keeps_read_through(self, tmp_path):
        config = SystemConfig(
            ledger=LedgerConfig(
                consensus=ConsensusConfig(kind="poa", block_interval=1.0)),
            durability=DurabilityConfig(state_dir=str(tmp_path)),
            replication=ReplicationConfig(replicas=0, prewarm_cache=False),
        )
        system = build_topology_system(TopologySpec(patients=2, researchers=0),
                                       config)
        gateway = SharingGateway(system)
        peer, metadata_id = patient_and_mid(system)
        session = gateway.open_session(peer)
        gateway.submit(session, update_for(metadata_id, "cold"))
        gateway.drain()
        assert gateway.cache.prewarms == 0
        assert gateway.cache.peek(peer, metadata_id) is None
        gateway.submit(session, ReadViewRequest(metadata_id=metadata_id))
        assert gateway.cache.misses >= 1
