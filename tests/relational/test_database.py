"""Tests for the database layer: tables, views, WAL, transactions, indexes."""

import pytest

from repro.errors import (
    DuplicateTableError,
    TransactionError,
    UnknownTableError,
)
from repro.relational.database import Database
from repro.relational.predicates import Eq, Gt
from repro.relational.query import Project, Scan, Select
from repro.relational.schema import DataType, Schema


@pytest.fixture
def db(people_table):
    database = Database("test_db")
    database.create_table("people", people_table.schema,
                          (row.to_dict() for row in people_table))
    return database


class TestTables:
    def test_create_and_lookup(self, db):
        assert db.has_table("people")
        assert len(db.table("people")) == 3
        assert db.table_names == ("people",)

    def test_duplicate_table_rejected(self, db, people_schema):
        with pytest.raises(DuplicateTableError):
            db.create_table("people", people_schema)

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.table("missing")

    def test_drop_table(self, db):
        db.drop_table("people")
        assert not db.has_table("people")
        with pytest.raises(UnknownTableError):
            db.drop_table("people")


class TestWritesAndWal:
    def test_insert_logged(self, db):
        db.insert("people", {"id": 4, "name": "Dai", "city": "Kobe", "age": 55})
        assert len(db.table("people")) == 4
        assert db.wal.operation_counts()["insert"] == 1

    def test_insert_many(self, db):
        count = db.insert_many("people", [
            {"id": 5, "name": "Emi", "city": "Nara", "age": 27},
            {"id": 6, "name": "Fumi", "city": "Kobe", "age": 31},
        ])
        assert count == 2
        assert len(db.table("people")) == 5

    def test_update_by_key_logged(self, db):
        db.update_by_key("people", (1,), {"city": "Tokyo"})
        assert db.table("people").get(1)["city"] == "Tokyo"
        entries = db.wal.entries_for_table("people")
        assert entries[-1].operation == "update"

    def test_update_where(self, db):
        assert db.update_where("people", Gt("age", 30), {"city": "Tokyo"}) == 2

    def test_delete_by_key(self, db):
        db.delete_by_key("people", (2,))
        assert not db.table("people").contains_key(2)

    def test_delete_where(self, db):
        assert db.delete_where("people", Eq("city", "Kyoto")) == 1

    def test_replace_table(self, db):
        db.replace_table("people", [{"id": 10, "name": "Solo", "city": "Gifu", "age": 1}])
        assert len(db.table("people")) == 1
        assert db.wal.operation_counts()["replace"] == 1

    def test_wal_sequences_are_monotonic(self, db):
        db.insert("people", {"id": 4, "name": "Dai", "city": "Kobe", "age": 55})
        db.delete_by_key("people", (4,))
        sequences = [entry.sequence for entry in db.wal]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_wal_entries_since(self, db):
        first = db.wal.entries[-1].sequence
        db.insert("people", {"id": 4, "name": "Dai", "city": "Kobe", "age": 55})
        assert len(db.wal.entries_since(first)) == 1


class TestQueriesAndViews:
    def test_query(self, db):
        result = db.query(Project(Scan("people"), ("id", "name")))
        assert result.schema.column_names == ("id", "name")

    def test_select_shorthand(self, db):
        assert len(db.select("people", Eq("city", "Osaka"))) == 1

    def test_register_and_materialise_view(self, db):
        db.register_view("adults", Select(Scan("people"), Gt("age", 30)))
        view = db.view("adults")
        assert view.name == "adults"
        assert len(view) == 2
        assert "adults" in db.view_names

    def test_view_reflects_base_changes(self, db):
        db.register_view("adults", Select(Scan("people"), Gt("age", 30)))
        db.insert("people", {"id": 7, "name": "Gen", "city": "Kobe", "age": 70})
        assert len(db.view("adults")) == 3

    def test_unknown_view(self, db):
        with pytest.raises(UnknownTableError):
            db.view("missing")
        with pytest.raises(UnknownTableError):
            db.view_definition("missing")


class TestIndexes:
    def test_create_and_use_index(self, db):
        index = db.create_index("people", ["city"])
        assert index.contains("Osaka")

    def test_index_refreshed_after_write(self, db):
        index = db.create_index("people", ["city"])
        db.insert("people", {"id": 8, "name": "Hana", "city": "Osaka", "age": 23})
        assert len(index.lookup("Osaka")) == 2

    def test_index_lookup_requires_creation(self, db):
        with pytest.raises(UnknownTableError):
            db.index("people", ["age"])

    def test_create_index_is_idempotent(self, db):
        first = db.create_index("people", ["city"])
        second = db.create_index("people", ["city"])
        assert first is second


class TestTransactions:
    def test_commit_keeps_changes(self, db):
        db.transactions.begin()
        db.insert("people", {"id": 4, "name": "Dai", "city": "Kobe", "age": 55})
        db.transactions.commit()
        assert db.table("people").contains_key(4)

    def test_rollback_restores_all_tables(self, db):
        db.transactions.begin()
        db.insert("people", {"id": 4, "name": "Dai", "city": "Kobe", "age": 55})
        db.update_by_key("people", (1,), {"city": "Tokyo"})
        db.transactions.rollback()
        assert not db.table("people").contains_key(4)
        assert db.table("people").get(1)["city"] == "Sapporo"

    def test_nested_begin_rejected(self, db):
        db.transactions.begin()
        with pytest.raises(TransactionError):
            db.transactions.begin()
        db.transactions.rollback()

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.transactions.commit()

    def test_rollback_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.transactions.rollback()

    def test_wal_records_transaction_id(self, db):
        txn_id = db.transactions.begin()
        db.insert("people", {"id": 4, "name": "Dai", "city": "Kobe", "age": 55})
        db.transactions.commit()
        assert db.wal.entries[-1].transaction_id == txn_id

    def test_statistics(self, db):
        db.transactions.begin()
        db.transactions.commit()
        db.transactions.begin()
        db.transactions.rollback()
        assert db.transactions.statistics == {"committed": 1, "rolled_back": 1}

    def test_table_created_inside_transaction_rolls_back_contents(self, db):
        schema = Schema.build([("k", DataType.INTEGER)], primary_key=["k"])
        db.transactions.begin()
        db.create_table("scratch", schema, [{"k": 1}])
        db.insert("scratch", {"k": 2})
        db.transactions.rollback()
        assert len(db.table("scratch")) == 1


class TestStorage:
    def test_storage_bytes_grows_with_data(self, db):
        before = db.storage_bytes()
        db.insert_many("people", [
            {"id": 100 + i, "name": f"p{i}", "city": "Kobe", "age": i} for i in range(20)
        ])
        assert db.storage_bytes() > before

    def test_snapshot_is_independent(self, db):
        snapshot = db.snapshot()
        db.update_by_key("people", (1,), {"name": "Changed"})
        assert snapshot["people"].get(1)["name"] == "Aiko"
