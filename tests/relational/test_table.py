"""Tests for tables: constraints, CRUD, derivation."""

import pytest

from repro.errors import (
    ConstraintViolation,
    RowNotFoundError,
    SchemaError,
    UnknownColumnError,
)
from repro.relational.predicates import Eq, Gt
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table


class TestConstruction:
    def test_requires_name(self, people_schema):
        with pytest.raises(SchemaError):
            Table("", people_schema)

    def test_initial_rows_validated(self, people_schema):
        with pytest.raises(ConstraintViolation):
            Table("t", people_schema, [{"id": None, "name": "x"}])

    def test_len_and_iter(self, people_table):
        assert len(people_table) == 3
        assert {row["name"] for row in people_table} == {"Aiko", "Ben", "Chie"}


class TestConstraints:
    def test_unknown_column_rejected(self, people_table):
        with pytest.raises(UnknownColumnError):
            people_table.insert({"id": 9, "nickname": "x"})

    def test_type_violation_rejected(self, people_table):
        with pytest.raises(ConstraintViolation):
            people_table.insert({"id": 9, "age": "not a number"})

    def test_not_null_key_enforced(self, people_table):
        with pytest.raises(ConstraintViolation):
            people_table.insert({"id": None, "name": "x"})

    def test_duplicate_key_rejected(self, people_table):
        with pytest.raises(ConstraintViolation):
            people_table.insert({"id": 1, "name": "dup"})

    def test_missing_optional_columns_become_null(self, people_table):
        row = people_table.insert({"id": 9})
        assert row["name"] is None


class TestKeyedOperations:
    def test_get(self, people_table):
        assert people_table.get((2,))["name"] == "Ben"
        assert people_table.get(2)["name"] == "Ben"

    def test_get_missing(self, people_table):
        with pytest.raises(RowNotFoundError):
            people_table.get((99,))

    def test_contains_key(self, people_table):
        assert people_table.contains_key(1)
        assert not people_table.contains_key(42)

    def test_update_by_key(self, people_table):
        people_table.update_by_key((1,), {"city": "Nagoya"})
        assert people_table.get(1)["city"] == "Nagoya"

    def test_update_missing_key(self, people_table):
        with pytest.raises(RowNotFoundError):
            people_table.update_by_key((99,), {"city": "Nagoya"})

    def test_update_changing_key(self, people_table):
        people_table.update_by_key((1,), {"id": 10})
        assert people_table.contains_key(10)
        assert not people_table.contains_key(1)

    def test_update_key_collision(self, people_table):
        with pytest.raises(ConstraintViolation):
            people_table.update_by_key((1,), {"id": 2})

    def test_delete_by_key(self, people_table):
        removed = people_table.delete_by_key((3,))
        assert removed["name"] == "Chie"
        assert len(people_table) == 2
        assert not people_table.contains_key(3)

    def test_delete_missing_key(self, people_table):
        with pytest.raises(RowNotFoundError):
            people_table.delete_by_key((42,))

    def test_keyless_table_rejects_keyed_ops(self):
        table = Table("t", Schema.build(["a"]), [{"a": "x"}])
        with pytest.raises(ConstraintViolation):
            table.get(("x",))
        with pytest.raises(ConstraintViolation):
            table.delete_by_key(("x",))


class TestPredicateOperations:
    def test_select(self, people_table):
        rows = people_table.select(Gt("age", 30))
        assert {row["name"] for row in rows} == {"Aiko", "Ben"}

    def test_select_all_by_default(self, people_table):
        assert len(people_table.select()) == 3

    def test_first(self, people_table):
        assert people_table.first(Eq("city", "Kyoto"))["name"] == "Chie"
        assert people_table.first(Eq("city", "Nowhere")) is None

    def test_update_where(self, people_table):
        count = people_table.update_where(Gt("age", 30), {"city": "Tokyo"})
        assert count == 2
        assert people_table.get(3)["city"] == "Kyoto"

    def test_delete_where(self, people_table):
        assert people_table.delete_where(Eq("city", "Osaka")) == 1
        assert len(people_table) == 2
        # index is rebuilt correctly after deletion
        assert people_table.get(3)["name"] == "Chie"

    def test_column_values(self, people_table):
        assert people_table.column_values("age") == [34, 41, 29]
        with pytest.raises(UnknownColumnError):
            people_table.column_values("missing")

    def test_keys(self, people_table):
        assert people_table.keys() == [(1,), (2,), (3,)]


class TestDerivation:
    def test_snapshot_is_independent(self, people_table):
        snapshot = people_table.snapshot()
        people_table.update_by_key((1,), {"name": "Changed"})
        assert snapshot.get(1)["name"] == "Aiko"

    def test_project(self, people_table):
        projected = people_table.project(["id", "city"])
        assert projected.schema.column_names == ("id", "city")
        assert len(projected) == 3
        assert projected.schema.primary_key == ("id",)

    def test_project_distinct_collapses_duplicates(self, people_table):
        people_table.insert({"id": 4, "name": "Dai", "city": "Osaka", "age": 50})
        projected = people_table.project(["city"])
        assert len(projected) == 3  # Sapporo, Osaka, Kyoto

    def test_project_not_distinct(self, people_table):
        people_table.insert({"id": 4, "name": "Dai", "city": "Osaka", "age": 50})
        assert len(people_table.project(["city"], distinct=False)) == 4

    def test_where(self, people_table):
        filtered = people_table.where(Eq("city", "Osaka"))
        assert len(filtered) == 1
        assert filtered.schema == people_table.schema

    def test_rename_columns(self, people_table):
        renamed = people_table.rename_columns({"city": "location"})
        assert "location" in renamed.schema.column_names
        assert renamed.get(1)["location"] == "Sapporo"

    def test_order_by(self, people_table):
        ordered = people_table.order_by(["age"])
        assert [row["name"] for row in ordered] == ["Chie", "Aiko", "Ben"]
        reverse = people_table.order_by(["age"], reverse=True)
        assert [row["name"] for row in reverse] == ["Ben", "Aiko", "Chie"]

    def test_order_by_handles_nulls(self, people_table):
        people_table.insert({"id": 7, "name": "Null", "city": None, "age": None})
        ordered = people_table.order_by(["age"])
        assert ordered[0]["name"] == "Null"

    def test_map_rows(self, people_table):
        bumped = people_table.map_rows(lambda row: row.merged({"age": row["age"] + 1}))
        assert bumped.get(1)["age"] == 35
        assert people_table.get(1)["age"] == 34

    def test_replace_all(self, people_table):
        people_table.replace_all([{"id": 5, "name": "Eri", "city": "Kobe", "age": 22}])
        assert len(people_table) == 1
        assert people_table.get(5)["name"] == "Eri"

    def test_replace_all_invalid_rows_leave_table_unchanged(self, people_table):
        with pytest.raises(ConstraintViolation):
            people_table.replace_all([{"id": 5}, {"id": 5}])
        assert len(people_table) == 3


class TestEqualityAndFingerprint:
    def test_keyed_equality_ignores_order(self, people_schema):
        rows = [
            {"id": 1, "name": "Aiko", "city": "Sapporo", "age": 34},
            {"id": 2, "name": "Ben", "city": "Osaka", "age": 41},
        ]
        a = Table("t", people_schema, rows)
        b = Table("t", people_schema, list(reversed(rows)))
        assert a == b

    def test_different_rows_not_equal(self, people_schema):
        a = Table("t", people_schema, [{"id": 1, "name": "A", "city": "X", "age": 1}])
        b = Table("t", people_schema, [{"id": 1, "name": "B", "city": "X", "age": 1}])
        assert a != b

    def test_fingerprint_stable_under_row_order(self, people_schema):
        rows = [
            {"id": 1, "name": "Aiko", "city": "Sapporo", "age": 34},
            {"id": 2, "name": "Ben", "city": "Osaka", "age": 41},
        ]
        a = Table("t", people_schema, rows)
        b = Table("t", people_schema, list(reversed(rows)))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_content(self, people_table):
        before = people_table.fingerprint()
        people_table.update_by_key((1,), {"age": 99})
        assert people_table.fingerprint() != before

    def test_round_trip_dict(self, people_table):
        restored = Table.from_dict(people_table.to_dict())
        assert restored == people_table

    def test_pretty_mentions_rows(self, people_table):
        text = people_table.pretty()
        assert "people" in text
        assert "Aiko" in text
