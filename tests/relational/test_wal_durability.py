"""Unit tests for the durable WAL: checkpoint sequences, JSONL segments,
torn-tail tolerance, fsync policies, checkpoint/recovery round trips."""

from __future__ import annotations

import json

import pytest

from repro.errors import RecoveryError, WalCorruptionError, WalTruncatedError
from repro.relational import Column, DataType, Database, Schema
from repro.relational.durability import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_NEVER,
    JsonlWalBackend,
    open_durable_database,
    read_manifest,
    recover,
)
from repro.relational.wal import WalEntry, WriteAheadLog


@pytest.fixture
def schema():
    return Schema(
        [Column("id", DataType.INTEGER, nullable=False),
         Column("value", DataType.STRING)],
        primary_key=("id",),
    )


def _entry(sequence, operation="insert", table="t", payload=None):
    return WalEntry(sequence, operation, table, payload or {"row": {"id": sequence}})


class TestCheckpointSequence:
    def test_truncate_records_checkpoint_sequence(self):
        wal = WriteAheadLog()
        for _ in range(3):
            wal.append("insert", "t", {"row": {}})
        assert wal.checkpoint_sequence == 0
        wal.truncate()
        assert wal.checkpoint_sequence == 3
        assert len(wal) == 0

    def test_entries_since_below_checkpoint_raises(self):
        wal = WriteAheadLog()
        for _ in range(3):
            wal.append("insert", "t", {"row": {}})
        wal.truncate()
        with pytest.raises(WalTruncatedError):
            wal.entries_since(0)
        with pytest.raises(WalTruncatedError):
            wal.entries_since(2)
        # At or above the checkpoint is fine.
        assert wal.entries_since(3) == ()

    def test_partial_truncate_keeps_tail(self):
        wal = WriteAheadLog()
        for _ in range(5):
            wal.append("insert", "t", {"row": {}})
        wal.truncate(3)
        assert [e.sequence for e in wal] == [4, 5]
        assert wal.checkpoint_sequence == 3

    def test_sequences_continue_after_truncate(self):
        wal = WriteAheadLog()
        for _ in range(3):
            wal.append("insert", "t", {"row": {}})
        wal.truncate()
        entry = wal.append("insert", "t", {"row": {}})
        assert entry.sequence == 4

    def test_checkpoint_cannot_move_backwards(self):
        wal = WriteAheadLog()
        for _ in range(5):
            wal.append("insert", "t", {"row": {}})
        wal.truncate(4)
        with pytest.raises(WalTruncatedError):
            wal.truncate(2)

    def test_suspended_drops_appends(self):
        wal = WriteAheadLog()
        wal.append("insert", "t", {"row": {}})
        with wal.suspended():
            wal.append("insert", "t", {"row": {}})
        assert len(wal) == 1
        assert wal.append("insert", "t", {"row": {}}).sequence == 2

    def test_restore_sets_counter_past_entries(self):
        wal = WriteAheadLog()
        wal.restore([_entry(7), _entry(9)], checkpoint_sequence=5)
        assert wal.checkpoint_sequence == 5
        assert [e.sequence for e in wal] == [7, 9]
        assert wal.append("insert", "t", {}).sequence == 10


class TestJsonlBackend:
    def test_append_read_round_trip(self, tmp_path):
        backend = JsonlWalBackend(tmp_path)
        for i in range(1, 6):
            backend.append(_entry(i))
        entries, torn = backend.read_entries()
        assert torn == 0
        assert [e.sequence for e in entries] == [1, 2, 3, 4, 5]
        assert entries[0].payload == {"row": {"id": 1}}

    def test_lines_are_plain_json_objects(self, tmp_path):
        backend = JsonlWalBackend(tmp_path)
        backend.append(_entry(1, table='odd "name"', payload={"k": [1, 2]}))
        backend.append(WalEntry(2, "update", "t", {"key": [1]}, transaction_id=9))
        backend.sync()
        lines = backend.segment_paths()[0].read_text().splitlines()
        first = json.loads(lines[0])
        assert first["table"] == 'odd "name"'
        assert first["payload"] == {"k": [1, 2]}
        assert json.loads(lines[1])["transaction_id"] == 9

    def test_read_since_filters(self, tmp_path):
        backend = JsonlWalBackend(tmp_path)
        for i in range(1, 6):
            backend.append(_entry(i))
        entries, _ = backend.read_entries(since=3)
        assert [e.sequence for e in entries] == [4, 5]

    def test_segment_rotation(self, tmp_path):
        backend = JsonlWalBackend(tmp_path, segment_max_bytes=200)
        for i in range(1, 21):
            backend.append(_entry(i))
        assert len(backend.segment_paths()) > 1
        entries, _ = backend.read_entries()
        assert [e.sequence for e in entries] == list(range(1, 21))

    def test_reopen_continues_appending(self, tmp_path):
        backend = JsonlWalBackend(tmp_path)
        backend.append(_entry(1))
        backend.close()
        reopened = JsonlWalBackend(tmp_path)
        reopened.append(_entry(2))
        entries, _ = reopened.read_entries()
        assert [e.sequence for e in entries] == [1, 2]

    def test_torn_tail_is_repaired_on_open(self, tmp_path):
        backend = JsonlWalBackend(tmp_path)
        for i in range(1, 4):
            backend.append(_entry(i))
        backend.close()
        segment = backend.segment_paths()[-1]
        with open(segment, "ab") as handle:
            handle.write(b'{"sequence": 4, "operation": "ins')  # torn write
        reopened = JsonlWalBackend(tmp_path)
        assert reopened.torn_lines_repaired == 1
        entries, torn = reopened.read_entries()
        assert torn == 0  # amputated at open, nothing left to tolerate
        assert [e.sequence for e in entries] == [1, 2, 3]

    def test_append_after_torn_tail_survives_reopen(self, tmp_path):
        """A restarted writer must not concatenate onto a torn partial line:
        entries appended after the crash are durable across a further
        restart, not swallowed by (or corrupted into) the torn tail."""
        backend = JsonlWalBackend(tmp_path, fsync_policy=FSYNC_ALWAYS)
        for i in range(1, 4):
            backend.append(_entry(i))
        backend.close()
        segment = backend.segment_paths()[-1]
        with open(segment, "r+b") as handle:
            handle.truncate(segment.stat().st_size - 10)  # tear the last line
        survivor = JsonlWalBackend(tmp_path, fsync_policy=FSYNC_ALWAYS)
        survivor.append(_entry(3))  # sequence 3 again: entry 3 was torn away
        survivor.append(_entry(4))
        survivor.close()
        entries, torn = JsonlWalBackend(tmp_path).read_entries()
        assert torn == 0
        assert [e.sequence for e in entries] == [1, 2, 3, 4]

    def test_mid_file_corruption_raises(self, tmp_path):
        backend = JsonlWalBackend(tmp_path)
        for i in range(1, 4):
            backend.append(_entry(i))
        backend.close()
        segment = backend.segment_paths()[-1]
        lines = segment.read_bytes().split(b"\n")
        lines[1] = b"garbage"
        segment.write_bytes(b"\n".join(lines))
        with pytest.raises(WalCorruptionError):
            JsonlWalBackend(tmp_path).read_entries()

    def test_out_of_order_entries_raise(self, tmp_path):
        backend = JsonlWalBackend(tmp_path)
        backend.append(_entry(5))
        backend.append(_entry(6))
        backend.close()
        segment = backend.segment_paths()[-1]
        with open(segment, "ab") as handle:
            handle.write(json.dumps(_entry(2).to_dict()).encode() + b"\n"
                         + json.dumps(_entry(3).to_dict()).encode() + b"\n")
        with pytest.raises(WalCorruptionError):
            JsonlWalBackend(tmp_path).read_entries()

    def test_truncate_drops_covered_segments(self, tmp_path):
        backend = JsonlWalBackend(tmp_path, segment_max_bytes=120)
        for i in range(1, 11):
            backend.append(_entry(i))
        segments_before = len(backend.segment_paths())
        assert segments_before > 2
        backend.truncate(10)
        assert backend.segment_paths() == []
        # Appends keep working after a full truncation.
        backend.append(_entry(11))
        entries, _ = backend.read_entries()
        assert [e.sequence for e in entries] == [11]

    def test_truncate_keeps_straddling_segment(self, tmp_path):
        backend = JsonlWalBackend(tmp_path, segment_max_bytes=120)
        for i in range(1, 11):
            backend.append(_entry(i))
        backend.truncate(3)
        entries, _ = backend.read_entries(since=3)
        assert entries[0].sequence >= 4
        assert [e.sequence for e in entries][-1] == 10

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlWalBackend(tmp_path, fsync_policy="sometimes")

    def test_fsync_policy_sync_counts(self, tmp_path):
        always = JsonlWalBackend(tmp_path / "a", fsync_policy=FSYNC_ALWAYS)
        for i in range(1, 4):
            always.append(_entry(i))
        assert always.statistics()["syncs"] == 3

        batch = JsonlWalBackend(tmp_path / "b", fsync_policy=FSYNC_BATCH)
        for i in range(1, 4):
            batch.append(_entry(i))
        assert batch.statistics()["syncs"] == 0
        batch.sync()
        assert batch.statistics()["syncs"] == 1

        never = JsonlWalBackend(tmp_path / "n", fsync_policy=FSYNC_NEVER)
        never.append(_entry(1))
        never.sync()
        assert never.statistics()["syncs"] == 0
        # sync still flushes so readers observe the entry.
        entries, _ = never.read_entries()
        assert len(entries) == 1

    def test_wal_bytes_reported(self, tmp_path):
        backend = JsonlWalBackend(tmp_path)
        backend.append(_entry(1))
        backend.sync()
        assert backend.wal_bytes() > 0
        assert backend.statistics()["segments"] == 1


class TestDurableDatabase:
    def test_database_appends_reach_disk(self, tmp_path, schema):
        database = open_durable_database("peer", tmp_path)
        database.create_table("t", schema, [{"id": 1, "value": "a"}])
        database.insert("t", {"id": 2, "value": "b"})
        database.wal.sync()
        entries, _ = database.wal.backend.read_entries()
        assert [e.operation for e in entries] == ["create_table", "insert"]

    def test_open_existing_recovers(self, tmp_path, schema):
        database = open_durable_database("peer", tmp_path)
        database.create_table("t", schema, [{"id": 1, "value": "a"}])
        database.wal.close()
        reopened = open_durable_database("peer", tmp_path)
        assert reopened.table("t").get(1)["value"] == "a"
        # And keeps journaling where the first process stopped.
        reopened.insert("t", {"id": 2, "value": "b"})
        reopened.wal.close()
        third = open_durable_database("peer", tmp_path)
        assert len(third.table("t")) == 2

    def test_open_existing_name_mismatch(self, tmp_path):
        open_durable_database("peer", tmp_path)
        with pytest.raises(RecoveryError):
            open_durable_database("other", tmp_path)

    def test_recover_missing_directory(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(tmp_path / "nope")

    def test_recover_requires_manifest(self, tmp_path):
        (tmp_path / "stray").mkdir()
        with pytest.raises(RecoveryError):
            recover(tmp_path / "stray")

    def test_checkpoint_writes_manifest_and_truncates(self, tmp_path, schema):
        database = open_durable_database("peer", tmp_path)
        database.create_table("t", schema, [{"id": 1, "value": "a"}])
        database.insert("t", {"id": 2, "value": "b"})
        result = database.checkpoint(tmp_path)
        assert result.checkpoint_sequence == 2
        manifest = read_manifest(tmp_path)
        assert manifest["checkpoint_sequence"] == 2
        assert manifest["checkpoints"] == 1
        assert database.wal.checkpoint_sequence == 2
        # A second checkpoint bumps the count and supersedes the snapshot.
        database.insert("t", {"id": 3, "value": "c"})
        second = database.checkpoint(tmp_path)
        assert second.checkpoint_count == 2
        assert len(list(tmp_path.glob("snapshot-*.json"))) == 1

    def test_checkpoint_then_recover_replays_only_tail(self, tmp_path, schema):
        database = open_durable_database("peer", tmp_path)
        database.create_table("t", schema, [{"id": 1, "value": "a"}])
        database.checkpoint(tmp_path)
        database.insert("t", {"id": 2, "value": "b"})
        database.update_by_key("t", (1,), {"value": "z"})
        database.wal.sync()
        result = recover(tmp_path)
        assert result.snapshot_loaded
        assert result.entries_replayed == 2
        assert result.database.table("t").fingerprint() == database.table("t").fingerprint()

    def test_recovery_restores_views_and_indexes(self, tmp_path, schema):
        from repro.relational.predicates import Gt
        from repro.relational.query import Scan, Select

        database = open_durable_database("peer", tmp_path)
        database.create_table("t", schema, [{"id": 1, "value": "a"}])
        database.create_index("t", ["value"])
        database.register_view("big", Select(Scan("t"), Gt("id", 0)))
        database.checkpoint(tmp_path)
        # Post-checkpoint registrations replay from the WAL tail.
        database.create_index("t", ["id", "value"])
        database.register_view("all", Select(Scan("t"), Gt("id", -1)))
        database.wal.sync()
        recovered = recover(tmp_path).database
        assert set(recovered.table("t").indexed_columns) == {("value",), ("id", "value")}
        assert set(recovered.view_names) == {"big", "all"}

    def test_writes_after_torn_crash_recovery_are_not_lost(self, tmp_path, schema):
        """Recover from a torn WAL, write more, recover again: the
        post-recovery writes survive (regression: appending onto the torn
        line used to swallow them)."""
        database = open_durable_database("peer", tmp_path,
                                         fsync_policy=FSYNC_ALWAYS)
        database.create_table("t", schema, [{"id": 1, "value": "a"}])
        database.insert("t", {"id": 2, "value": "b"})
        database.wal.close()
        segment = sorted((tmp_path / "wal").glob("wal-*.jsonl"))[-1]
        with open(segment, "r+b") as handle:
            handle.truncate(segment.stat().st_size - 7)  # tear the insert
        recovered = recover(tmp_path, fsync_policy=FSYNC_ALWAYS)
        assert len(recovered.database.table("t")) == 1
        recovered.database.insert("t", {"id": 3, "value": "c"})
        recovered.database.wal.close()
        second = recover(tmp_path)
        assert sorted(row["id"] for row in second.database.table("t")) == [1, 3]

    def test_rollback_survives_replay(self, tmp_path, schema):
        database = open_durable_database("peer", tmp_path)
        database.create_table("t", schema, [{"id": 1, "value": "a"}])
        database.transactions.begin()
        database.insert("t", {"id": 2, "value": "doomed"})
        database.update_by_key("t", (1,), {"value": "doomed-too"})
        database.transactions.rollback()
        database.wal.sync()
        recovered = recover(tmp_path).database
        assert recovered.table("t").fingerprint() == database.table("t").fingerprint()
        assert len(recovered.table("t")) == 1
        assert recovered.table("t").get(1)["value"] == "a"
