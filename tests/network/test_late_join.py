"""Tests for late-joining nodes and peers (replica sync)."""

import pytest

from repro.core.scenario import (
    DOCTOR_RESEARCHER_TABLE,
    PATIENT_DOCTOR_TABLE,
    build_paper_scenario,
)
from repro.errors import UpdateRejected


class TestLateJoiningNode:
    def test_new_node_syncs_to_current_height(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-revised"})
        established = system.server_app("doctor").node
        newcomer = system.simulator.add_node("node-late")
        assert newcomer.chain.height == established.chain.height
        assert newcomer.state_root() == established.state_root()

    def test_new_node_sees_contract_history(self, fresh_paper_system):
        system = fresh_paper_system
        system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-revised"})
        newcomer = system.simulator.add_node("node-late")
        history = newcomer.static_call(system.contract_address, "update_history",
                                       metadata_id=DOCTOR_RESEARCHER_TABLE)
        assert len(history) == 1
        assert history[0]["requester_role"] == "Researcher"

    def test_network_stays_in_consensus_after_join(self, fresh_paper_system):
        system = fresh_paper_system
        system.simulator.add_node("node-late")
        assert system.simulator.in_consensus()
        trace = system.coordinator.update_shared_entry(
            "doctor", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "two tablets every 6h"})
        assert trace.succeeded
        assert system.simulator.in_consensus()


class TestLateJoiningPeer:
    def test_outsider_peer_gets_a_synced_replica(self, fresh_paper_system):
        system = fresh_paper_system
        system.add_peer("insurer", "Insurer")
        app = system.server_app("insurer")
        assert app.node.chain.height == system.server_app("doctor").node.chain.height
        # The insurer can query the contract from its own replica but cannot
        # operate on shared data it is not a peer of.
        metadata = app.query_contract("get_metadata", metadata_id=PATIENT_DOCTOR_TABLE)
        assert metadata["authority_role"] == "Doctor"
        tx = app.build_contract_call(
            "request_update",
            {"metadata_id": PATIENT_DOCTOR_TABLE,
             "changed_attributes": ["dosage"], "diff_hash": "h"})
        system.simulator.submit_transaction(app.node.name, tx)
        system.simulator.mine()
        receipt = app.node.chain.receipt(tx.tx_hash)
        assert not receipt.success

    def test_late_peer_can_join_new_agreement(self, fresh_paper_system):
        """A pharmacist joins later and establishes a new fine-grained share
        with the doctor (dosage only)."""
        from repro.bx.dsl import ViewSpec
        from repro.core.records import schema_for_attributes
        from repro.core.sharing import SharingAgreement

        system = fresh_paper_system
        pharmacist = system.add_peer("pharmacist", "Pharmacist")
        pharmacy_schema = schema_for_attributes(["patient_id", "dosage"],
                                                primary_key=["patient_id"])
        pharmacist.database.create_table("DP", pharmacy_schema, [
            {"patient_id": 188, "dosage": "one tablet every 4h"},
            {"patient_id": 189, "dosage": "100 mg twice daily"},
        ])
        agreement = SharingAgreement.build(
            metadata_id="D3P&DP3",
            peer_a="doctor", role_a="Doctor",
            spec_a=ViewSpec(source_table="D3", view_name="D3P",
                            columns=("patient_id", "dosage"), view_key=("patient_id",)),
            peer_b="pharmacist", role_b="Pharmacist",
            spec_b=ViewSpec(source_table="DP", view_name="DP3",
                            columns=("patient_id", "dosage"), view_key=("patient_id",)),
            write_permission={"patient_id": ("Doctor",),
                              "dosage": ("Doctor", "Pharmacist")},
            authority_role="Doctor",
            initiator="doctor",
        )
        system.establish_sharing(agreement)
        assert system.shared_tables_consistent("D3P&DP3")
        trace = system.coordinator.update_shared_entry(
            "pharmacist", "D3P&DP3", (188,), {"dosage": "dispensed: one tablet every 4h"})
        assert trace.succeeded
        assert system.peer("doctor").local_table("D3").get(188)[
            "dosage"] == "dispensed: one tablet every 4h"
        assert system.all_shared_tables_consistent()
