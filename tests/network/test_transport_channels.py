"""Tests for the transport and the pairwise data channels."""

import pytest

from repro.config import NetworkConfig
from repro.errors import ChannelClosedError, UnknownPeerError
from repro.ledger.clock import SimClock
from repro.network.channels import ChannelRegistry, DataChannel
from repro.network.transport import SimTransport
from repro.relational.diff import diff_tables


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def transport(clock):
    return SimTransport(clock, NetworkConfig(base_latency=0.1, latency_jitter=0.0, seed=1))


class TestTransport:
    def test_register_and_send(self, transport):
        received = []
        transport.register("alice", received.append)
        transport.register("bob", received.append)
        transport.send("alice", "bob", "ping", {"n": 1})
        assert transport.flush() == 1
        assert received[0].kind == "ping"
        assert received[0].payload == {"n": 1}

    def test_unknown_recipient_rejected(self, transport):
        transport.register("alice", lambda m: None)
        with pytest.raises(UnknownPeerError):
            transport.send("alice", "ghost", "ping")

    def test_latency_advances_clock(self, transport, clock):
        transport.register("alice", lambda m: None)
        transport.register("bob", lambda m: None)
        transport.send("alice", "bob", "ping")
        transport.flush()
        assert clock.now() == pytest.approx(0.1)

    def test_message_latency_recorded(self, transport):
        transport.register("a", lambda m: None)
        transport.register("b", lambda m: None)
        message = transport.send("a", "b", "ping")
        transport.flush()
        assert message.latency == pytest.approx(0.1)

    def test_broadcast_excludes_sender(self, transport):
        seen = {"a": [], "b": [], "c": []}
        for name in seen:
            transport.register(name, (lambda n: (lambda m: seen[n].append(m)))(name))
        transport.broadcast("a", "block", {"number": 1})
        transport.flush()
        assert len(seen["a"]) == 0
        assert len(seen["b"]) == 1 and len(seen["c"]) == 1

    def test_handler_reply_is_also_delivered(self, transport):
        log = []

        def bob_handler(message):
            log.append(("bob", message.kind))
            if message.kind == "ping":
                transport.send("bob", "alice", "pong")

        transport.register("alice", lambda m: log.append(("alice", m.kind)))
        transport.register("bob", bob_handler)
        transport.send("alice", "bob", "ping")
        transport.flush()
        assert ("bob", "ping") in log and ("alice", "pong") in log

    def test_drop_rate_drops_messages(self, clock):
        transport = SimTransport(clock, NetworkConfig(drop_rate=0.9, seed=3))
        transport.register("a", lambda m: None)
        transport.register("b", lambda m: None)
        for _ in range(30):
            transport.send("a", "b", "ping")
        transport.flush()
        stats = transport.statistics
        assert stats["dropped"] > 0
        assert stats["delivered"] + stats["dropped"] == stats["sent"]

    def test_exposure_log(self, transport):
        transport.register("a", lambda m: None)
        transport.register("b", lambda m: None)
        transport.send("a", "b", "data", {"secret": 1})
        transport.flush()
        assert len(transport.messages_seen_by("b")) == 1
        assert len(transport.messages_seen_by("a")) == 0
        assert len(transport.messages_of_kind("data")) == 1
        assert transport.bytes_transferred() > 0


class TestDataChannel:
    def test_requires_two_distinct_peers(self, clock):
        with pytest.raises(UnknownPeerError):
            DataChannel("alice", "alice", clock)

    def test_snapshot_transfer(self, clock, patient_table):
        channel = DataChannel("doctor", "patient", clock)
        transfer = channel.send_snapshot("doctor", "patient", patient_table)
        assert transfer.kind == "snapshot"
        assert transfer.size_bytes > 0
        assert channel.tables_seen_by("patient") == ("D1",)
        assert channel.tables_seen_by("doctor") == ()

    def test_diff_transfer(self, clock, patient_table):
        channel = DataChannel("doctor", "patient", clock)
        after = patient_table.snapshot()
        after.update_by_key((188,), {"dosage": "changed"})
        transfer = channel.send_diff("doctor", "patient", diff_tables(patient_table, after))
        assert transfer.kind == "diff"

    def test_request_and_latency(self, clock):
        channel = DataChannel("doctor", "patient", clock, latency=0.2)
        channel.request_data("patient", "doctor", "D31", since_update=3)
        assert clock.now() == pytest.approx(0.2)

    def test_third_party_rejected(self, clock, patient_table):
        channel = DataChannel("doctor", "patient", clock)
        with pytest.raises(UnknownPeerError):
            channel.send_snapshot("doctor", "researcher", patient_table)

    def test_closed_channel_rejected(self, clock, patient_table):
        channel = DataChannel("doctor", "patient", clock)
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.send_snapshot("doctor", "patient", patient_table)

    def test_bytes_transferred_accumulates(self, clock, patient_table):
        channel = DataChannel("doctor", "patient", clock)
        channel.send_snapshot("doctor", "patient", patient_table)
        channel.send_snapshot("patient", "doctor", patient_table)
        assert channel.bytes_transferred() > 0
        assert len(channel.transfers) == 2


class TestChannelRegistry:
    def test_channel_is_shared_between_orderings(self, clock):
        registry = ChannelRegistry(clock)
        first = registry.channel_between("a", "b")
        second = registry.channel_between("b", "a")
        assert first is second
        assert registry.has_channel("a", "b")

    def test_distinct_peers_required(self, clock):
        registry = ChannelRegistry(clock)
        with pytest.raises(UnknownPeerError):
            registry.channel_between("a", "a")

    def test_exposure_report(self, clock, patient_table, researcher_table):
        registry = ChannelRegistry(clock)
        registry.channel_between("doctor", "patient").send_snapshot(
            "doctor", "patient", patient_table)
        registry.channel_between("doctor", "researcher").send_snapshot(
            "researcher", "doctor", researcher_table)
        report = registry.exposure_report()
        assert report["patient"] == ("D1",)
        assert report["doctor"] == ("D2",)
        assert "researcher" not in report
        assert len(registry.all_transfers()) == 2
