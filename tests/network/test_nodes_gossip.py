"""Tests for blockchain nodes, gossip and the network simulator."""

import pytest

from repro.config import ConsensusConfig, LedgerConfig, NetworkConfig
from repro.contracts.sharing_contract import SharedDataContract
from repro.crypto.keys import generate_keypair
from repro.ledger.transaction import Transaction
from repro.network.simulator import NetworkSimulator

KEY = generate_keypair(seed=77)


def _simulator(node_count=3):
    simulator = NetworkSimulator(
        ledger_config=LedgerConfig(consensus=ConsensusConfig(kind="poa", block_interval=1.0)),
        network_config=NetworkConfig(base_latency=0.01, latency_jitter=0.0),
        contract_classes=(SharedDataContract,),
    )
    for index in range(node_count):
        simulator.add_node(f"node-{index}", is_miner=(index == 0))
    return simulator


def _deploy_tx(nonce=0):
    return Transaction(sender=KEY.address, kind="deploy", nonce=nonce,
                       method="SharedDataContract", timestamp=0.0).signed_by(KEY)


def _call_tx(contract, nonce, method="register_shared_table", **args):
    defaults = {
        "metadata_id": "T1",
        "sharing_peers": {KEY.address: "Doctor"},
        "write_permission": {"dosage": ["Doctor"]},
        "authority_role": "Doctor",
    }
    defaults.update(args)
    return Transaction(sender=KEY.address, kind="call", nonce=nonce, contract=contract,
                       method=method, args=defaults, timestamp=0.0).signed_by(KEY)


class TestGossipAndConsensus:
    def test_transaction_gossips_to_all_mempools(self):
        simulator = _simulator()
        simulator.submit_transaction("node-0", _deploy_tx())
        for node in simulator.nodes:
            assert len(node.mempool) == 1

    def test_transaction_batch_gossips_to_all_mempools(self):
        """A tx-batch flood lands every transaction in every replica with one
        message per link (half the per-tx latency charges of two floods)."""
        simulator = _simulator()
        first, second = _deploy_tx(nonce=0), _deploy_tx(nonce=1)
        hashes = simulator.submit_transaction_batch(
            [("node-0", first), ("node-1", second)])
        assert hashes == [first.tx_hash, second.tx_hash]
        for node in simulator.nodes:
            assert len(node.mempool) == 2
        per_tx_messages = 2 * (len(simulator.nodes) - 1)
        batch_messages = sum(
            1 for message in simulator.transport.log if message.kind == "tx-batch")
        assert batch_messages == len(simulator.nodes) - 1 < per_tx_messages

    def test_transaction_batch_skips_invalid_members(self):
        simulator = _simulator()
        unsigned = Transaction(sender=KEY.address, kind="deploy", nonce=5,
                               method="SharedDataContract", timestamp=0.0)
        simulator.submit_transaction_batch(
            [("node-0", _deploy_tx()), ("node-0", unsigned)])
        for node in simulator.nodes:
            assert len(node.mempool) == 1

    def test_mined_block_reaches_every_replica(self):
        simulator = _simulator()
        simulator.submit_and_mine("node-1", _deploy_tx())
        heights = {node.chain.height for node in simulator.nodes}
        assert heights == {1}
        assert simulator.in_consensus()

    def test_contract_state_identical_across_nodes(self):
        simulator = _simulator()
        blocks = simulator.submit_and_mine("node-0", _deploy_tx())
        address = simulator.node("node-0").chain.receipt(
            blocks[0].transactions[0].tx_hash).contract_address
        simulator.submit_and_mine("node-2", _call_tx(address, nonce=1))
        roots = {node.state_root() for node in simulator.nodes}
        assert len(roots) == 1
        for node in simulator.nodes:
            contract = node.contract_at(address)
            assert "T1" in contract.entries

    def test_duplicate_gossip_is_idempotent(self):
        simulator = _simulator()
        tx = _deploy_tx()
        simulator.submit_transaction("node-0", tx)
        # Re-broadcasting the same transaction must not duplicate it.
        simulator.gossip.broadcast_transaction("node-0", tx)
        for node in simulator.nodes:
            assert len(node.mempool) == 1

    def test_stale_block_is_ignored(self):
        simulator = _simulator()
        blocks = simulator.submit_and_mine("node-0", _deploy_tx())
        node = simulator.node("node-1")
        assert node.receive_block(blocks[0]) is False  # already applied via gossip
        assert node.chain.height == 1

    def test_events_observed_on_every_node(self):
        simulator = _simulator()
        blocks = simulator.submit_and_mine("node-0", _deploy_tx())
        address = simulator.node("node-0").chain.receipt(
            blocks[0].transactions[0].tx_hash).contract_address
        observed = []
        simulator.node("node-2").subscribe_events(lambda e: observed.append(e.name))
        simulator.submit_and_mine("node-0", _call_tx(address, nonce=1))
        assert "SharedTableRegistered" in observed

    def test_static_call_on_replica(self):
        simulator = _simulator()
        blocks = simulator.submit_and_mine("node-0", _deploy_tx())
        address = simulator.node("node-0").chain.receipt(
            blocks[0].transactions[0].tx_hash).contract_address
        simulator.submit_and_mine("node-0", _call_tx(address, nonce=1))
        listing = simulator.node("node-2").static_call(address, "list_metadata_ids")
        assert listing == ["T1"]

    def test_statistics(self):
        simulator = _simulator()
        simulator.submit_and_mine("node-0", _deploy_tx())
        stats = simulator.statistics()
        assert stats["chain_height"] == 1
        assert stats["in_consensus"] is True
        assert stats["transport"]["delivered"] > 0

    def test_mining_without_transactions_produces_nothing(self):
        simulator = _simulator()
        assert simulator.mine() == []

    def test_single_node_network_is_trivially_consistent(self):
        simulator = _simulator(node_count=1)
        simulator.submit_and_mine("node-0", _deploy_tx())
        assert simulator.in_consensus()
