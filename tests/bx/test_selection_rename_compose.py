"""Tests for selection, rename and composed lenses."""

import pytest

from repro.bx.compose import ComposeLens, IdentityLens
from repro.bx.lens import DeletePolicy
from repro.bx.laws import check_get_put, check_put_get
from repro.bx.projection import ProjectionLens
from repro.bx.rename import RenameLens
from repro.bx.selection import SelectionLens
from repro.errors import PutConflictError, SchemaError, ViewShapeError
from repro.relational.predicates import Eq, Gt
from repro.relational.table import Table


class TestSelectionLens:
    def test_get_filters_rows(self, doctor_table):
        lens = SelectionLens(Eq("patient_id", 188), view_name="D3_188")
        view = lens.get(doctor_table)
        assert len(view) == 1
        assert view.name == "D3_188"

    def test_laws_hold(self, doctor_table):
        lens = SelectionLens(Eq("patient_id", 188))
        assert check_get_put(lens, doctor_table)
        view = lens.get(doctor_table)
        view.update_by_key((188,), {"dosage": "changed"})
        assert check_put_get(lens, doctor_table, view)

    def test_put_preserves_hidden_rows(self, doctor_table):
        lens = SelectionLens(Eq("patient_id", 188))
        view = lens.get(doctor_table)
        view.update_by_key((188,), {"clinical_data": "CliD1-new"})
        new_source = lens.put(doctor_table, view)
        assert new_source.get(188)["clinical_data"] == "CliD1-new"
        assert new_source.get(189)["clinical_data"] == "CliD2"

    def test_put_rejects_rows_escaping_predicate(self, doctor_table):
        lens = SelectionLens(Eq("patient_id", 188))
        view = lens.get(doctor_table)
        view.update_by_key((188,), {"patient_id": 500})
        with pytest.raises(ViewShapeError):
            lens.put(doctor_table, view)

    def test_put_insert_visible_row(self, doctor_table):
        lens = SelectionLens(Gt("patient_id", 100))
        view = lens.get(doctor_table)
        view.insert({"patient_id": 200, "medication_name": "Aspirin",
                     "clinical_data": "CliD9", "dosage": "x",
                     "mechanism_of_action": "MeA9"})
        new_source = lens.put(doctor_table, view)
        assert new_source.contains_key(200)

    def test_put_delete_forbidden_policy(self, doctor_table):
        lens = SelectionLens(Gt("patient_id", 100), on_delete=DeletePolicy.FORBID)
        view = lens.get(doctor_table)
        view.delete_by_key((189,))
        with pytest.raises(PutConflictError):
            lens.put(doctor_table, view)

    def test_requires_keyed_source(self, people_table):
        keyless = people_table.project(["name", "city"])
        lens = SelectionLens(Eq("city", "Osaka"))
        with pytest.raises(SchemaError):
            lens.get(keyless)

    def test_put_rejects_wrong_columns(self, doctor_table):
        lens = SelectionLens(Eq("patient_id", 188))
        wrong = doctor_table.project(["patient_id", "dosage"])
        with pytest.raises(ViewShapeError):
            lens.put(doctor_table, wrong)


class TestRenameLens:
    def test_get_renames(self, patient_table):
        lens = RenameLens({"dosage": "dose"}, view_name="shared")
        view = lens.get(patient_table)
        assert "dose" in view.schema.column_names
        assert "dosage" not in view.schema.column_names

    def test_laws_hold(self, patient_table):
        lens = RenameLens({"dosage": "dose", "address": "city"})
        assert check_get_put(lens, patient_table)
        view = lens.get(patient_table)
        view.update_by_key((188,), {"dose": "changed"})
        assert check_put_get(lens, patient_table, view)

    def test_put_maps_back(self, patient_table):
        lens = RenameLens({"dosage": "dose"})
        view = lens.get(patient_table)
        view.update_by_key((188,), {"dose": "new dose"})
        new_source = lens.put(patient_table, view)
        assert new_source.get(188)["dosage"] == "new dose"

    def test_non_injective_mapping_rejected(self):
        with pytest.raises(SchemaError):
            RenameLens({"a": "x", "b": "x"})

    def test_put_rejects_unrenamed_view(self, patient_table):
        lens = RenameLens({"dosage": "dose"})
        with pytest.raises(ViewShapeError):
            lens.put(patient_table, patient_table.snapshot())


class TestIdentityLens:
    def test_get_is_copy(self, patient_table):
        lens = IdentityLens(view_name="full")
        view = lens.get(patient_table)
        assert view == patient_table
        assert view.name == "full"

    def test_put_replaces_source(self, patient_table):
        lens = IdentityLens()
        view = lens.get(patient_table)
        view.update_by_key((188,), {"address": "Tokyo"})
        assert lens.put(patient_table, view).get(188)["address"] == "Tokyo"

    def test_laws_hold(self, patient_table):
        lens = IdentityLens()
        assert check_get_put(lens, patient_table)
        assert check_put_get(lens, patient_table, lens.get(patient_table))


class TestComposition:
    def _composed(self):
        selection = SelectionLens(Eq("patient_id", 188))
        projection = ProjectionLens(("patient_id", "medication_name", "dosage"),
                                    view_name="D31")
        return ComposeLens(selection, projection, view_name="D31")

    def test_get_applies_both(self, doctor_table):
        view = self._composed().get(doctor_table)
        assert len(view) == 1
        assert view.schema.column_names == ("patient_id", "medication_name", "dosage")

    def test_put_composes_correctly(self, doctor_table):
        lens = self._composed()
        view = lens.get(doctor_table)
        view.update_by_key((188,), {"dosage": "two tablets"})
        new_source = lens.put(doctor_table, view)
        assert new_source.get(188)["dosage"] == "two tablets"
        assert new_source.get(189)["dosage"] == "100 mg twice daily"

    def test_composition_is_well_behaved(self, doctor_table):
        lens = self._composed()
        assert check_get_put(lens, doctor_table)
        view = lens.get(doctor_table)
        view.update_by_key((188,), {"medication_name": "Naproxen"})
        assert check_put_get(lens, doctor_table, view)

    def test_rshift_operator(self, doctor_table):
        lens = SelectionLens(Eq("patient_id", 188)) >> ProjectionLens(
            ("patient_id", "dosage"))
        assert len(lens.get(doctor_table)) == 1

    def test_three_level_composition(self, doctor_table):
        lens = ComposeLens(
            ComposeLens(SelectionLens(Eq("patient_id", 188)),
                        ProjectionLens(("patient_id", "dosage"))),
            RenameLens({"dosage": "dose"}),
            view_name="shared",
        )
        view = lens.get(doctor_table)
        assert view.schema.column_names == ("patient_id", "dose")
        view.update_by_key((188,), {"dose": "updated"})
        new_source = lens.put(doctor_table, view)
        assert new_source.get(188)["dosage"] == "updated"

    def test_describe_nests(self, doctor_table):
        description = self._composed().describe()
        assert description["inner"]["kind"] == "SelectionLens"
        assert description["outer"]["kind"] == "ProjectionLens"
