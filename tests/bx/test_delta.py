"""Delta round-trips: ``get_delta``/``put_delta`` agree with full ``get``/``put``.

Property-style tests over seeded random edit sequences: for every lens
combinator, translating a diff through the lens and applying it must land on
exactly the table (``Table.fingerprint()``) the full recomputation produces.
The fallback conditions (functional projections, hidden-column predicates,
keyless sources) must raise :class:`~repro.errors.DeltaUnsupported` so
callers can fall back instead of silently diverging.
"""

import random

import pytest

from repro.bx import (
    ComposeLens,
    DeletePolicy,
    IdentityLens,
    InsertPolicy,
    JoinLens,
    ProjectionLens,
    RenameLens,
    SelectionLens,
)
from repro.errors import DeltaUnsupported, PutConflictError, ViewShapeError
from repro.relational.diff import RowChange, TableDiff, diff_tables
from repro.relational.predicates import Gt, In
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table

SOURCE_SCHEMA = Schema(
    columns=(
        Column("id", DataType.INTEGER, nullable=False),
        Column("city", DataType.STRING),
        Column("age", DataType.INTEGER),
        Column("score", DataType.FLOAT),
        Column("note", DataType.STRING),
    ),
    primary_key=("id",),
)

CITIES = ("Sapporo", "Osaka", "Kyoto", "Kobe", "Nara")

#: Reference table for the keyed-join lens variants: primary key = the join
#: column, one enrichment column ("region") appended to the view.
REFERENCE_SCHEMA = Schema(
    columns=(
        Column("city", DataType.STRING, nullable=False),
        Column("region", DataType.STRING),
    ),
    primary_key=("city",),
)
REFERENCE_ROWS = (
    {"city": "Sapporo", "region": "Hokkaido"},
    {"city": "Osaka", "region": "Kansai"},
    {"city": "Kyoto", "region": "Kansai"},
    {"city": "Kobe", "region": "Kansai"},
    # "Nara" deliberately missing: sources citing it are hidden by the
    # inner join, exercising the visibility-transition cases.
)


def _reference_table():
    return Table("cities", REFERENCE_SCHEMA, REFERENCE_ROWS)


def _random_row(rng, row_id):
    return {
        "id": row_id,
        "city": rng.choice(CITIES),
        "age": rng.randint(20, 80),
        "score": round(rng.uniform(0, 10), 2),
        "note": f"n{rng.randint(0, 99)}",
    }


def _random_source(rng, rows=12):
    return Table("S", SOURCE_SCHEMA,
                 [_random_row(rng, row_id) for row_id in range(1, rows + 1)])


def _random_edits(rng, table, count, fresh_ids, value_domains=None,
                  frozen_columns=()):
    """Apply ``count`` random inserts/updates/deletes to ``table`` in place.

    ``value_domains`` optionally constrains generated values per column (used
    to keep view edits inside a selection predicate's visible set);
    ``frozen_columns`` are never chosen as update targets (used to keep the
    read-only enrichment columns of a join view untouched).
    """
    key_columns = table.schema.primary_key

    def value_for(column):
        if value_domains and column.name in value_domains:
            return value_domains[column.name](rng)
        if column.dtype is DataType.INTEGER:
            return rng.randint(20, 80)
        if column.dtype is DataType.FLOAT:
            return round(rng.uniform(0, 10), 2)
        return f"{column.name[0]}{rng.randint(0, 99)}"

    for _ in range(count):
        keys = table.keys()
        op = rng.choice(("insert", "update", "update", "delete"))
        if op == "insert" or not keys:
            row_id = next(fresh_ids)
            values = {c.name: value_for(c) for c in table.schema.columns
                      if c.name not in key_columns}
            values[key_columns[0]] = row_id
            table.insert(values)
        elif op == "delete":
            table.delete_by_key(rng.choice(keys))
        else:
            key = rng.choice(keys)
            candidates = [c for c in table.schema.columns
                          if c.name not in key_columns
                          and c.name not in frozen_columns]
            column = rng.choice(candidates)
            table.update_by_key(key, {column.name: value_for(column)})


def _join_lens(**kwargs):
    reference = _reference_table()
    return JoinLens("cities", on=("city",), columns=("region",),
                    resolve_table=lambda name: reference, **kwargs)


def _keyed_lenses():
    projection = ProjectionLens(["id", "city", "age"], view_name="V")
    selection = SelectionLens(Gt("age", 30), view_name="V")
    rename = RenameLens({"city": "town", "age": "years"}, view_name="V")
    return {
        "projection": projection,
        "selection": selection,
        "rename": rename,
        "identity": IdentityLens(view_name="V"),
        "join": _join_lens(view_name="V"),
        "selection;join": ComposeLens(
            SelectionLens(Gt("age", 30)), _join_lens(), view_name="V"),
        "join;projection": ComposeLens(
            _join_lens(), ProjectionLens(["id", "city", "age", "region"]),
            view_name="V"),
        "selection;projection": ComposeLens(
            SelectionLens(Gt("age", 30)), ProjectionLens(["id", "city", "age"]),
            view_name="V"),
        "selection;projection;rename": ComposeLens(
            ComposeLens(SelectionLens(Gt("age", 30)),
                        ProjectionLens(["id", "city", "age"])),
            RenameLens({"city": "town", "age": "years"}),
            view_name="V"),
    }


#: Keeps every generated view-side age/years value inside Gt("age", 30) (so
#: random view edits are legal for the selection-based combinators) and
#: view-side cities inside the reference table (so inserted join-view rows
#: always join a reference row).
VIEW_DOMAINS = {
    "age": lambda rng: rng.randint(31, 90),
    "years": lambda rng: rng.randint(31, 90),
    "city": lambda rng: rng.choice(CITIES[:-1]),  # every joined city
    "region": lambda rng: None,  # read-only; None = "no opinion" through put
}

#: The join's read-only enrichment column and the column that picks the
#: matched reference row: random *updates* to either would (correctly)
#: raise ViewShapeError through put, so the put-direction harness freezes
#: them for the join variants and exercises them via insert/delete instead.
JOIN_FROZEN = ("city", "region")


@pytest.mark.parametrize("lens_name", sorted(_keyed_lenses()))
@pytest.mark.parametrize("seed", range(8))
class TestDeltaRoundTrips:
    def test_get_delta_matches_full_get(self, lens_name, seed):
        rng = random.Random(1000 + seed)
        lens = _keyed_lenses()[lens_name]
        source = _random_source(rng)
        view = lens.get(source)

        updated = source.snapshot()
        fresh_ids = iter(range(100, 200))
        _random_edits(rng, updated, count=6, fresh_ids=fresh_ids)
        source_diff = diff_tables(source, updated)

        view_delta = lens.get_delta(source.schema, source_diff)
        patched = view.snapshot()
        patched.apply_diff(view_delta)
        assert patched.fingerprint() == lens.get(updated).fingerprint()

    def test_put_delta_matches_full_put(self, lens_name, seed):
        rng = random.Random(2000 + seed)
        lens = _keyed_lenses()[lens_name]
        source = _random_source(rng)
        view = lens.get(source)

        edited = view.snapshot()
        fresh_ids = iter(range(100, 200))
        frozen = JOIN_FROZEN if "join" in lens_name else ()
        _random_edits(rng, edited, count=5, fresh_ids=fresh_ids,
                      value_domains=VIEW_DOMAINS, frozen_columns=frozen)
        view_diff = diff_tables(view, edited)

        source_delta = lens.put_delta(source.schema, view_diff)
        patched = source.snapshot()
        patched.apply_diff(source_delta)
        assert patched.fingerprint() == lens.put(source, edited).fingerprint()


class TestFallbackConditions:
    def test_functional_projection_get_delta_unsupported(self, people_table):
        lens = ProjectionLens(["city", "age"], view_key=("city",))
        diff = TableDiff("people", (RowChange(
            "update", (1,),
            {"id": 1, "name": "Aiko", "city": "Sapporo", "age": 34},
            {"id": 1, "name": "Aiko", "city": "Sapporo", "age": 35},
            ("age",)),))
        with pytest.raises(DeltaUnsupported):
            lens.get_delta(people_table.schema, diff)
        with pytest.raises(DeltaUnsupported):
            lens.put_delta(people_table.schema, diff)

    def test_keyless_source_unsupported_for_selection(self):
        schema = Schema.build(["v"])
        lens = SelectionLens(Gt("v", "a"))
        diff = TableDiff("t", ())
        with pytest.raises(DeltaUnsupported):
            lens.get_delta(schema, diff)

    def test_hidden_predicate_column_unsupported_in_put(self, people_schema):
        # The selection filters on "age" but the outer projection hides it, so
        # the backward delta cannot check the predicate on view changes.
        lens = ComposeLens(SelectionLens(Gt("age", 30)),
                           ProjectionLens(["id", "city"]))
        view_diff = TableDiff("V", (RowChange(
            "update", (1,), {"id": 1, "city": "Sapporo"},
            {"id": 1, "city": "Osaka"}, ("city",)),))
        with pytest.raises(DeltaUnsupported):
            lens.put_delta(people_schema, view_diff)

    def test_base_lens_has_no_delta(self, people_schema):
        from repro.bx.lens import Lens

        with pytest.raises(DeltaUnsupported):
            Lens().get_delta(people_schema, TableDiff("t", ()))
        with pytest.raises(DeltaUnsupported):
            Lens().put_delta(people_schema, TableDiff("t", ()))


class TestPoliciesAndPredicates:
    def _update_change(self):
        return TableDiff("V", (RowChange(
            "update", (1,),
            {"id": 1, "city": "Sapporo", "age": 34},
            {"id": 1, "city": "Sapporo", "age": 20},
            ("age",)),))

    def test_put_delta_rejects_predicate_violation(self, people_schema):
        lens = SelectionLens(Gt("age", 30))
        with pytest.raises(ViewShapeError):
            lens.put_delta(people_schema, self._update_change())

    def test_put_delta_honours_forbid_delete(self, people_schema):
        lens = ProjectionLens(["id", "city", "age"], on_delete=DeletePolicy.FORBID)
        diff = TableDiff("V", (RowChange(
            "delete", (1,), {"id": 1, "city": "Sapporo", "age": 34}, None),))
        with pytest.raises(PutConflictError):
            lens.put_delta(people_schema, diff)

    def test_put_delta_honours_forbid_insert(self, people_schema):
        lens = ProjectionLens(["id", "city", "age"], on_insert=InsertPolicy.FORBID)
        diff = TableDiff("V", (RowChange(
            "insert", (9,), None, {"id": 9, "city": "Kobe", "age": 50}),))
        with pytest.raises(PutConflictError):
            lens.put_delta(people_schema, diff)

    def test_get_delta_translates_visibility_transitions(self, people_schema):
        lens = SelectionLens(Gt("age", 30))
        before = {"id": 3, "name": "Chie", "city": "Kyoto", "age": 29}
        after = dict(before, age=31)
        diff = TableDiff("people", (RowChange("update", (3,), before, after, ("age",)),))
        translated = lens.get_delta(people_schema, diff)
        assert [c.kind for c in translated.changes] == ["insert"]
        reverse = TableDiff("people", (RowChange("update", (3,), after, before, ("age",)),))
        translated = lens.get_delta(people_schema, reverse)
        assert [c.kind for c in translated.changes] == ["delete"]

    def test_get_delta_drops_hidden_column_updates(self, people_schema):
        lens = ProjectionLens(["id", "city"])
        before = {"id": 1, "name": "Aiko", "city": "Sapporo", "age": 34}
        diff = TableDiff("people", (RowChange(
            "update", (1,), before, dict(before, age=35), ("age",)),))
        assert lens.get_delta(people_schema, diff).is_empty
