"""Property-based tests of the lens laws on randomly generated tables.

The paper's consistency guarantee rests entirely on lens well-behavedness, so
these hypothesis tests exercise GetPut and PutGet over random sources, random
view edits, and random lens shapes (projection / selection / composition).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bx.compose import ComposeLens
from repro.bx.laws import check_get_put, check_put_get
from repro.bx.projection import ProjectionLens
from repro.bx.selection import SelectionLens
from repro.relational.predicates import Ge
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table

SCHEMA = Schema(
    columns=(
        Column("id", DataType.INTEGER, nullable=False),
        Column("name", DataType.STRING),
        Column("grade", DataType.INTEGER),
        Column("city", DataType.STRING),
    ),
    primary_key=("id",),
)

_names = st.text(alphabet="abcdef", min_size=1, max_size=6)
_cities = st.sampled_from(["Sapporo", "Osaka", "Kyoto", "Tokyo"])


@st.composite
def source_tables(draw, min_rows=0, max_rows=8):
    ids = draw(st.lists(st.integers(min_value=0, max_value=50), unique=True,
                        min_size=min_rows, max_size=max_rows))
    rows = [
        {"id": identifier,
         "name": draw(_names),
         "grade": draw(st.integers(min_value=0, max_value=100)),
         "city": draw(_cities)}
        for identifier in ids
    ]
    return Table("source", SCHEMA, rows)


@st.composite
def edited_view(draw, view: Table):
    """Apply a random batch of updates/deletes/inserts to a copy of ``view``."""
    result = view.snapshot()
    editable = [c for c in view.schema.column_names if c not in view.schema.primary_key]
    for row in list(result):
        action = draw(st.sampled_from(["keep", "update", "delete"]))
        key = row.key(result.schema.primary_key)
        if action == "delete":
            result.delete_by_key(key)
        elif action == "update" and editable:
            column = draw(st.sampled_from(editable))
            if column == "grade":
                value = draw(st.integers(min_value=0, max_value=100))
            elif column == "city":
                value = draw(_cities)
            else:
                value = draw(_names)
            result.update_by_key(key, {column: value})
    if draw(st.booleans()):
        new_id = draw(st.integers(min_value=100, max_value=200))
        if not result.contains_key(new_id):
            fresh = {c: None for c in result.schema.column_names}
            fresh["id"] = new_id
            if "grade" in fresh:
                fresh["grade"] = draw(st.integers(min_value=0, max_value=100))
            if "name" in fresh:
                fresh["name"] = draw(_names)
            if "city" in fresh:
                fresh["city"] = draw(_cities)
            result.insert({k: v for k, v in fresh.items() if k in result.schema.column_names})
    return result


PROJECTION = ProjectionLens(("id", "name", "grade"))
SELECTION = SelectionLens(Ge("grade", 50))
COMPOSED = ComposeLens(SelectionLens(Ge("grade", 50)), ProjectionLens(("id", "grade")))


class TestGetPutProperty:
    @given(source_tables())
    @settings(max_examples=40, deadline=None)
    def test_projection_get_put(self, source):
        assert check_get_put(PROJECTION, source)

    @given(source_tables())
    @settings(max_examples=40, deadline=None)
    def test_selection_get_put(self, source):
        assert check_get_put(SELECTION, source)

    @given(source_tables())
    @settings(max_examples=40, deadline=None)
    def test_composition_get_put(self, source):
        assert check_get_put(COMPOSED, source)


class TestPutGetProperty:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_projection_put_get_after_random_edits(self, data):
        source = data.draw(source_tables(min_rows=1))
        view = data.draw(edited_view(PROJECTION.get(source)))
        assert check_put_get(PROJECTION, source, view)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_composition_put_get_after_value_edits(self, data):
        source = data.draw(source_tables(min_rows=1))
        view = COMPOSED.get(source)
        # Edit only non-key values that keep the selection predicate satisfied.
        for row in list(view):
            if data.draw(st.booleans()):
                view.update_by_key(row.key(view.schema.primary_key),
                                   {"grade": data.draw(st.integers(min_value=50, max_value=100))})
        assert check_put_get(COMPOSED, source, view)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_put_is_idempotent_on_same_view(self, data):
        source = data.draw(source_tables(min_rows=1))
        view = data.draw(edited_view(PROJECTION.get(source)))
        once = PROJECTION.put(source, view)
        twice = PROJECTION.put(once, view)
        assert once == twice


class TestFunctionalLensProperty:
    LENS = ProjectionLens(("city", "grade"), view_key=("city",))

    @given(source_tables())
    @settings(max_examples=40, deadline=None)
    def test_functional_laws_when_fd_holds(self, source):
        # Force the functional dependency city -> grade before checking laws.
        by_city = {}
        rows = []
        for row in source:
            grade = by_city.setdefault(row["city"], row["grade"])
            rows.append(row.merged({"grade": grade}).to_dict())
        normalised = Table("source", SCHEMA, rows)
        assert check_get_put(self.LENS, normalised)
        view = self.LENS.get(normalised)
        assert check_put_get(self.LENS, normalised, view)
