"""Tests for law checking, the view-spec DSL and the BX registry."""

import pytest

from repro.bx.dsl import ViewSpec, lens_from_spec
from repro.bx.laws import LawReport, assert_well_behaved, check_well_behaved
from repro.bx.lens import DeletePolicy, InsertPolicy, Lens
from repro.bx.projection import ProjectionLens
from repro.bx.registry import BXRegistry
from repro.errors import AgreementError, LensLawViolation, UnknownLensError
from repro.relational.predicates import Eq
from repro.relational.table import Table


class _BrokenLens(Lens):
    """A deliberately ill-behaved lens: put ignores the view entirely."""

    name = "broken"

    def view_schema(self, source_schema):
        return source_schema

    def get(self, source):
        return source.snapshot()

    def put(self, source, view):
        return source.snapshot()


class TestLawChecking:
    def test_well_behaved_lens_passes(self, patient_table):
        lens = ProjectionLens(("patient_id", "dosage"))
        report = check_well_behaved(lens, patient_table)
        assert report.well_behaved
        assert report.get_put_holds and report.put_get_holds
        assert report.detail == ""

    def test_broken_lens_fails_put_get(self, patient_table):
        lens = _BrokenLens()
        view = patient_table.snapshot()
        view.update_by_key((188,), {"dosage": "changed"})
        report = check_well_behaved(lens, patient_table, view)
        assert report.get_put_holds is True
        assert report.put_get_holds is False
        assert "PutGet" in report.detail

    def test_assert_well_behaved_raises(self, patient_table):
        lens = _BrokenLens()
        view = patient_table.snapshot()
        view.update_by_key((188,), {"dosage": "changed"})
        with pytest.raises(LensLawViolation):
            assert_well_behaved(lens, patient_table, view)

    def test_assert_well_behaved_passes_silently(self, patient_table):
        assert_well_behaved(ProjectionLens(("patient_id", "dosage")), patient_table)

    def test_report_with_no_checks_is_not_well_behaved(self):
        report = LawReport(lens_name="x", get_put_holds=None, put_get_holds=None)
        assert not report.well_behaved

    def test_check_handles_put_errors(self, patient_table):
        # A lens that forbids insertions reports a PutGet failure (raised) when
        # the view introduces a new key, rather than crashing the checker.
        lens = ProjectionLens(("patient_id", "dosage"), on_insert=InsertPolicy.FORBID)
        view = lens.get(patient_table)
        view.insert({"patient_id": 999, "dosage": "x"})
        report = check_well_behaved(lens, patient_table, view)
        assert report.put_get_holds is False
        assert "raised" in report.detail


class TestViewSpecDsl:
    def test_spec_requires_columns(self):
        with pytest.raises(AgreementError):
            ViewSpec(source_table="D1", view_name="V", columns=())

    def test_shared_columns_apply_rename(self):
        spec = ViewSpec(source_table="D1", view_name="V", columns=("a", "b"),
                        rename={"a": "alpha"})
        assert spec.shared_columns == ("alpha", "b")

    def test_round_trip_dict(self):
        spec = ViewSpec(
            source_table="D3", view_name="D31",
            columns=("patient_id", "dosage"),
            view_key=("patient_id",),
            where=Eq("patient_id", 188),
            rename={"dosage": "dose"},
            on_delete=DeletePolicy.FORBID,
            on_insert=InsertPolicy.FORBID,
        )
        restored = ViewSpec.from_dict(spec.to_dict())
        assert restored.columns == spec.columns
        assert restored.on_delete is DeletePolicy.FORBID
        assert restored.where.to_dict() == spec.where.to_dict()
        assert restored.rename == {"dosage": "dose"}

    def test_lens_from_simple_spec(self, patient_table):
        spec = ViewSpec(source_table="D1", view_name="D13",
                        columns=("patient_id", "medication_name", "dosage"),
                        view_key=("patient_id",))
        lens = lens_from_spec(spec)
        view = lens.get(patient_table)
        assert view.name == "D13"
        assert view.schema.column_names == ("patient_id", "medication_name", "dosage")

    def test_lens_from_spec_with_filter_and_rename(self, doctor_table):
        spec = ViewSpec(
            source_table="D3", view_name="D31",
            columns=("patient_id", "dosage"),
            view_key=("patient_id",),
            where=Eq("patient_id", 188),
            rename={"dosage": "dose"},
        )
        lens = lens_from_spec(spec)
        view = lens.get(doctor_table)
        assert view.name == "D31"
        assert len(view) == 1
        assert "dose" in view.schema.column_names
        view.update_by_key((188,), {"dose": "two tablets"})
        new_source = lens.put(doctor_table, view)
        assert new_source.get(188)["dosage"] == "two tablets"
        assert new_source.get(189)["dosage"] == "100 mg twice daily"

    def test_lens_name_matches_view(self):
        spec = ViewSpec(source_table="D2", view_name="D23",
                        columns=("medication_name", "mechanism_of_action"),
                        view_key=("medication_name",))
        assert lens_from_spec(spec).name == "D23"


class TestBXRegistry:
    def _registry(self):
        registry = BXRegistry()
        registry.register_spec("BX13", ViewSpec(
            source_table="D1", view_name="D13",
            columns=("patient_id", "medication_name", "dosage"),
            view_key=("patient_id",),
        ))
        registry.register_spec("BX12", ViewSpec(
            source_table="D1", view_name="D12",
            columns=("patient_id", "clinical_data"),
            view_key=("patient_id",),
        ))
        registry.register_spec("BX23", ViewSpec(
            source_table="D2", view_name="D23",
            columns=("medication_name", "mechanism_of_action"),
            view_key=("medication_name",),
        ))
        return registry

    def test_lookup_by_name_and_view(self):
        registry = self._registry()
        assert registry.get("BX13").view_name == "D13"
        assert registry.for_view("D23").name == "BX23"
        assert "BX13" in registry
        assert len(registry) == 3
        assert set(registry.names) == {"BX13", "BX12", "BX23"}

    def test_unknown_lookups(self):
        registry = self._registry()
        with pytest.raises(UnknownLensError):
            registry.get("BX99")
        with pytest.raises(UnknownLensError):
            registry.for_view("D99")

    def test_programs_for_source(self):
        registry = self._registry()
        views = {p.view_name for p in registry.programs_for_source("D1")}
        assert views == {"D13", "D12"}

    def test_program_get_put(self, patient_table):
        registry = self._registry()
        program = registry.get("BX13")
        view = program.get(patient_table)
        view.update_by_key((188,), {"dosage": "changed"})
        assert program.put(patient_table, view).get(188)["dosage"] == "changed"

    def test_describe_includes_spec(self):
        program = self._registry().get("BX13")
        description = program.describe()
        assert description["source_table"] == "D1"
        assert description["spec"]["view_name"] == "D13"
