"""Tests for projection lenses (keyed and functional alignment)."""

import pytest

from repro.bx.lens import DeletePolicy, InsertPolicy
from repro.bx.laws import check_get_put, check_put_get
from repro.bx.projection import ProjectionLens
from repro.errors import PutConflictError, SchemaError, ViewShapeError
from repro.relational.table import Table


class TestKeyedProjection:
    """View retains the source primary key (the D1 → D13 shape)."""

    def test_get_projects_columns(self, patient_table):
        lens = ProjectionLens(("patient_id", "medication_name", "dosage"), view_name="D13")
        view = lens.get(patient_table)
        assert view.name == "D13"
        assert view.schema.column_names == ("patient_id", "medication_name", "dosage")
        assert len(view) == 1

    def test_get_put_law(self, patient_table):
        lens = ProjectionLens(("patient_id", "medication_name", "dosage"))
        assert check_get_put(lens, patient_table)

    def test_put_updates_projected_columns(self, patient_table):
        lens = ProjectionLens(("patient_id", "dosage"))
        view = lens.get(patient_table)
        view.update_by_key((188,), {"dosage": "two tablets every 6h"})
        new_source = lens.put(patient_table, view)
        assert new_source.get(188)["dosage"] == "two tablets every 6h"
        # hidden attributes are untouched
        assert new_source.get(188)["address"] == "Sapporo"

    def test_put_get_law_after_update(self, patient_table):
        lens = ProjectionLens(("patient_id", "dosage"))
        view = lens.get(patient_table)
        view.update_by_key((188,), {"dosage": "changed"})
        assert check_put_get(lens, patient_table, view)

    def test_put_insert_with_nulls(self, patient_table):
        lens = ProjectionLens(("patient_id", "medication_name"))
        view = lens.get(patient_table)
        view.insert({"patient_id": 190, "medication_name": "Aspirin"})
        new_source = lens.put(patient_table, view)
        assert new_source.get(190)["medication_name"] == "Aspirin"
        assert new_source.get(190)["address"] is None
        assert check_put_get(lens, patient_table, view)

    def test_put_insert_forbidden(self, patient_table):
        lens = ProjectionLens(("patient_id", "medication_name"),
                              on_insert=InsertPolicy.FORBID)
        view = lens.get(patient_table)
        view.insert({"patient_id": 190, "medication_name": "Aspirin"})
        with pytest.raises(PutConflictError):
            lens.put(patient_table, view)

    def test_put_delete_removes_source_row(self, doctor_table):
        lens = ProjectionLens(("patient_id", "dosage"))
        view = lens.get(doctor_table)
        view.delete_by_key((189,))
        new_source = lens.put(doctor_table, view)
        assert not new_source.contains_key(189)
        assert check_put_get(lens, doctor_table, view)

    def test_put_delete_forbidden(self, doctor_table):
        lens = ProjectionLens(("patient_id", "dosage"), on_delete=DeletePolicy.FORBID)
        view = lens.get(doctor_table)
        view.delete_by_key((189,))
        with pytest.raises(PutConflictError):
            lens.put(doctor_table, view)

    def test_view_shape_checked(self, patient_table):
        lens = ProjectionLens(("patient_id", "dosage"))
        wrong = patient_table.project(["patient_id", "address"])
        with pytest.raises(ViewShapeError):
            lens.put(patient_table, wrong)


class TestFunctionalProjection:
    """View key is not the source key (the D3 → D32 shape)."""

    def test_get_collapses_duplicates(self, doctor_table):
        lens = ProjectionLens(("medication_name", "mechanism_of_action"),
                              view_key=("medication_name",), view_name="D32")
        doctor_table.insert({"patient_id": 190, "medication_name": "Ibuprofen",
                             "clinical_data": "CliD3", "dosage": "x",
                             "mechanism_of_action": "MeA1"})
        view = lens.get(doctor_table)
        assert len(view) == 2  # Ibuprofen row deduplicated

    def test_get_detects_fd_violation(self, doctor_table):
        lens = ProjectionLens(("medication_name", "mechanism_of_action"),
                              view_key=("medication_name",))
        doctor_table.insert({"patient_id": 190, "medication_name": "Ibuprofen",
                             "clinical_data": "CliD3", "dosage": "x",
                             "mechanism_of_action": "DIFFERENT"})
        with pytest.raises(PutConflictError):
            lens.get(doctor_table)

    def test_put_updates_every_matching_source_row(self, doctor_table):
        doctor_table.insert({"patient_id": 190, "medication_name": "Ibuprofen",
                             "clinical_data": "CliD3", "dosage": "x",
                             "mechanism_of_action": "MeA1"})
        lens = ProjectionLens(("medication_name", "mechanism_of_action"),
                              view_key=("medication_name",))
        view = lens.get(doctor_table)
        view.update_by_key(("Ibuprofen",), {"mechanism_of_action": "MeA1-new"})
        new_source = lens.put(doctor_table, view)
        assert new_source.get(188)["mechanism_of_action"] == "MeA1-new"
        assert new_source.get(190)["mechanism_of_action"] == "MeA1-new"
        assert new_source.get(189)["mechanism_of_action"] == "MeA2"

    def test_put_get_and_get_put_laws(self, doctor_table):
        lens = ProjectionLens(("medication_name", "mechanism_of_action"),
                              view_key=("medication_name",))
        assert check_get_put(lens, doctor_table)
        view = lens.get(doctor_table)
        view.update_by_key(("Wellbutrin",), {"mechanism_of_action": "MeA2-new"})
        assert check_put_get(lens, doctor_table, view)

    def test_put_delete_removes_all_matching_rows(self, doctor_table):
        lens = ProjectionLens(("medication_name", "mechanism_of_action"),
                              view_key=("medication_name",))
        view = lens.get(doctor_table)
        view.delete_by_key(("Ibuprofen",))
        new_source = lens.put(doctor_table, view)
        assert not new_source.contains_key(188)
        assert new_source.contains_key(189)

    def test_conflicting_view_rows_rejected(self, doctor_table):
        lens = ProjectionLens(("medication_name", "mechanism_of_action"),
                              view_key=("medication_name",))
        schema = lens.view_schema(doctor_table.schema)
        bad_view = Table("bad", schema.project(
            ("medication_name", "mechanism_of_action"), primary_key=()),
            [{"medication_name": "Ibuprofen", "mechanism_of_action": "A"},
             {"medication_name": "Ibuprofen", "mechanism_of_action": "B"}])
        with pytest.raises(ViewShapeError):
            lens.put(doctor_table, bad_view)


class TestValidation:
    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            ProjectionLens(())

    def test_view_key_must_be_projected(self):
        with pytest.raises(SchemaError):
            ProjectionLens(("a", "b"), view_key=("c",))

    def test_no_alignment_key_available(self, people_table):
        keyless = people_table.project(["name", "city"])
        lens = ProjectionLens(("name",))
        with pytest.raises(SchemaError):
            lens.get(keyless)

    def test_describe_mentions_columns(self):
        lens = ProjectionLens(("a", "b"), view_name="V")
        description = lens.describe()
        assert description["columns"] == ["a", "b"]
        assert description["view_name"] == "V"
