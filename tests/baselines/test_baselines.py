"""Tests for the §V comparison baselines."""

import pytest

from repro.baselines.centralized import CentralizedSharingBaseline
from repro.baselines.full_record import FullRecordSharingBaseline
from repro.baselines.onchain_storage import OnChainStorageBaseline
from repro.errors import UpdateRejected
from repro.workloads.generator import MedicalRecordGenerator


class TestFullRecordSharing:
    @pytest.fixture
    def baseline(self, doctor_table):
        baseline = FullRecordSharingBaseline()
        baseline.register_provider_table("doctor", doctor_table)
        baseline.grant_access("doctor", "patient", "D3")
        baseline.grant_access("doctor", "researcher", "D3")
        return baseline

    def test_download_returns_whole_table(self, baseline, doctor_table):
        downloaded = baseline.download("doctor", "researcher", "D3")
        assert downloaded == doctor_table
        assert set(downloaded.schema.column_names) == set(doctor_table.schema.column_names)

    def test_download_without_grant_rejected(self, baseline):
        with pytest.raises(PermissionError):
            baseline.download("doctor", "insurer", "D3")

    def test_grant_requires_registered_table(self, baseline):
        with pytest.raises(KeyError):
            baseline.grant_access("doctor", "patient", "MISSING")

    def test_exposure_matrix(self, baseline):
        matrix = baseline.exposure_matrix()
        assert set(matrix["researcher"]) == {"patient_id", "medication_name",
                                             "clinical_data", "dosage",
                                             "mechanism_of_action"}

    def test_unnecessary_exposure_quantified(self, baseline):
        needed = {"researcher": ("medication_name", "mechanism_of_action")}
        unnecessary = baseline.unnecessary_exposure(needed)
        assert set(unnecessary["researcher"]) == {"patient_id", "clinical_data", "dosage"}
        # A consumer with no declared needs sees everything as unnecessary.
        assert len(unnecessary["patient"]) == 5


class TestOnChainStorage:
    def test_records_are_stored_in_blocks(self):
        baseline = OnChainStorageBaseline()
        records = MedicalRecordGenerator(seed=21).records(10)
        baseline.store_records(records, mine_every=4)
        assert baseline.records_stored == 10
        assert baseline.block_count() >= 3
        assert baseline.chain.verify_chain()

    def test_storage_grows_with_record_count(self):
        small = OnChainStorageBaseline()
        small.store_records(MedicalRecordGenerator(seed=22).records(5))
        large = OnChainStorageBaseline()
        large.store_records(MedicalRecordGenerator(seed=22).records(50))
        assert large.per_node_storage_bytes() > small.per_node_storage_bytes()

    def test_update_payloads_append(self):
        baseline = OnChainStorageBaseline()
        baseline.store_record(MedicalRecordGenerator(seed=23).record())
        baseline.store_update(188, {"dosage": "changed"})
        baseline.finalize()
        assert baseline.block_count() >= 1
        payloads = [tx.payload for tx in baseline.chain.transactions()]
        assert any("update" in payload for payload in payloads)


class TestCentralizedBaseline:
    @pytest.fixture
    def server(self, patient_table):
        server = CentralizedSharingBaseline()
        server.host_table(patient_table)
        server.grant("D1", "patient", can_read=True, writable_columns=("clinical_data",))
        server.grant("D1", "doctor", can_read=True,
                     writable_columns=("dosage", "clinical_data", "medication_name"))
        return server

    def test_read_requires_grant(self, server):
        assert len(server.read("patient", "D1")) == 1
        with pytest.raises(UpdateRejected):
            server.read("insurer", "D1")

    def test_update_respects_column_permissions(self, server):
        server.update("doctor", "D1", (188,), {"dosage": "new"})
        with pytest.raises(UpdateRejected):
            server.update("patient", "D1", (188,), {"dosage": "blocked"})

    def test_unavailable_server_blocks_everything(self, server):
        server.set_available(False)
        with pytest.raises(ConnectionError):
            server.read("doctor", "D1")
        with pytest.raises(ConnectionError):
            server.update("doctor", "D1", (188,), {"dosage": "x"})

    def test_latency_and_operation_count(self, server):
        before = server.clock.now()
        server.read("doctor", "D1")
        server.read("patient", "D1")
        assert server.operations_served == 2
        assert server.clock.now() > before

    def test_storage_bytes(self, server):
        assert server.storage_bytes() > 0

    def test_unknown_table_grant(self, server):
        with pytest.raises(KeyError):
            server.grant("MISSING", "doctor")
