"""Sharded consensus lanes: router, sharded mempool, lane scheduler and the
single-shard equivalence guarantee."""

import pytest

from repro.config import ConsensusConfig, LedgerConfig, SystemConfig
from repro.crypto.keys import generate_keypair
from repro.errors import InvalidTransactionError
from repro.ledger.chain import Blockchain
from repro.ledger.clock import SimClock
from repro.ledger.lanes import HeldClock, LaneScheduler
from repro.ledger.mempool import Mempool
from repro.ledger.miner import Miner
from repro.ledger.sharding import ShardedMempool, ShardRouter
from repro.ledger.transaction import Transaction

KEY = generate_keypair(seed=51)
OTHER = generate_keypair(seed=52)


def _tx(nonce, metadata_id="T1", method="request_update", keypair=KEY):
    return Transaction(
        sender=keypair.address, kind="call", nonce=nonce, contract="0xc" + "1" * 39,
        method=method, args={"metadata_id": metadata_id, "changed_attributes": ["a"],
                             "diff_hash": "h"},
        timestamp=0.0,
    ).signed_by(keypair)


def _transfer(nonce, keypair=KEY):
    return Transaction(sender=keypair.address, kind="transfer",
                       nonce=nonce).signed_by(keypair)


class TestShardRouter:
    def test_routing_is_stable_and_in_range(self):
        router = ShardRouter(4)
        for metadata_id in ("T1", "T2", "CARE:D13&D31", "D13&D31:1008"):
            shard = router.shard_of(metadata_id)
            assert 0 <= shard < 4
            assert router.shard_of(metadata_id) == shard  # deterministic

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1)
        assert router.shard_of("anything") == 0
        assert router.shard_of_transaction(_tx(0)) == 0

    def test_transactions_route_by_metadata_id(self):
        router = ShardRouter(4)
        update = _tx(0, metadata_id="T7")
        ack = Transaction(sender=KEY.address, kind="call", nonce=1, contract="0xc",
                          method="acknowledge_update",
                          args={"metadata_id": "T7", "update_id": 1}).signed_by(KEY)
        # Both consensus rounds of a commit land on the same lane.
        assert router.shard_of_transaction(update) == router.shard_of("T7")
        assert router.shard_of_transaction(ack) == router.shard_of("T7")

    def test_control_traffic_takes_shard_zero(self):
        router = ShardRouter(4)
        assert router.shard_of_transaction(_transfer(0)) == 0
        deploy = Transaction(sender=KEY.address, kind="deploy", nonce=0,
                             method="SomeContract").signed_by(KEY)
        assert router.shard_of_transaction(deploy) == 0

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestControlLaneReservation:
    """With more than one shard, lane 0 is reserved for control traffic and
    shared tables hash over lanes ``1..N-1`` only."""

    def test_tables_never_route_to_the_control_lane(self):
        for shards in (2, 3, 4, 8):
            router = ShardRouter(shards)
            lanes = {router.shard_of(f"D13&D31:{i}") for i in range(200)}
            assert 0 not in lanes
            assert lanes <= set(range(1, shards))

    def test_two_shards_put_every_table_on_lane_one(self):
        router = ShardRouter(2)
        assert all(router.shard_of(f"T{i}") == 1 for i in range(50))

    def test_control_and_table_traffic_never_share_a_lane(self):
        router = ShardRouter(4)
        assert router.shard_of_transaction(_transfer(0)) == 0
        assert router.shard_of_transaction(_tx(0, metadata_id="T1")) >= 1

    def test_single_shard_keeps_everything_on_lane_zero(self):
        router = ShardRouter(1)
        assert router.shard_of("T1") == 0
        assert router.shard_of_transaction(_transfer(0)) == 0


def _spread_ids(router):
    """One metadata id per *data* lane of ``router`` (found by probing the
    hash).  Lane 0 is reserved for control traffic when ``num_shards > 1``,
    so tables can only ever land on lanes ``1..N-1``."""
    data_lanes = 1 if router.num_shards == 1 else router.num_shards - 1
    ids, seen = [], set()
    index = 0
    while len(seen) < data_lanes and index < 10_000:
        metadata_id = f"SPREAD-{index}"
        shard = router.shard_of(metadata_id)
        if shard not in seen:
            seen.add(shard)
            ids.append(metadata_id)
        index += 1
    assert len(seen) == data_lanes
    return ids


class TestShardedMempool:
    def test_behaves_like_one_pool(self):
        router = ShardRouter(4)
        pool = ShardedMempool(router)
        txs = [_tx(i, metadata_id=f"T{i}") for i in range(6)]
        hashes = pool.submit_many(txs)
        assert len(pool) == 6
        assert all(h in pool for h in hashes)
        # Global peek order is arrival order, across shards.
        assert [t.nonce for t in pool.peek()] == [0, 1, 2, 3, 4, 5]
        assert len(pool.peek(limit=3)) == 3
        assert pool.get(hashes[2]) is txs[2]
        removed = pool.remove([hashes[0], hashes[5]])
        assert removed == 2
        assert [t.nonce for t in pool.peek()] == [1, 2, 3, 4]
        pool.clear()
        assert len(pool) == 0

    def test_duplicates_and_bad_signatures_rejected(self):
        pool = ShardedMempool(ShardRouter(2))
        tx = _tx(0)
        pool.submit(tx)
        with pytest.raises(InvalidTransactionError):
            pool.submit(tx)
        with pytest.raises(InvalidTransactionError):
            pool.submit(Transaction(sender=KEY.address, kind="call", nonce=1))
        assert pool.rejected_count == 2

    def test_per_shard_iteration_and_depths(self):
        router = ShardRouter(4)
        pool = ShardedMempool(router)
        ids = _spread_ids(router)
        for nonce, metadata_id in enumerate(ids):
            pool.submit(_tx(nonce, metadata_id=metadata_id))
        depths = pool.shard_depths()
        assert sum(depths) == len(ids)
        assert depths[0] == 0  # the control lane holds no table traffic
        assert all(depth >= 1 for depth in depths[1:])
        for shard in range(4):
            for _seq, tx in pool.iter_entries(shard=shard):
                assert router.shard_of_transaction(tx) == shard

    def test_next_nonce_sees_all_shards(self):
        router = ShardRouter(4)
        pool = ShardedMempool(router)
        ids = _spread_ids(router)
        for nonce, metadata_id in enumerate(ids[:3]):
            pool.submit(_tx(nonce, metadata_id=metadata_id))
        assert pool.next_nonce(KEY.address, confirmed_nonce=0) == 3


def _sharded_setup(shards, block_interval=2.0, max_txs=64):
    config = LedgerConfig(
        consensus=ConsensusConfig(kind="poa", block_interval=block_interval),
        max_transactions_per_block=max_txs,
        consensus_shards=shards,
    )
    chain = Blockchain(config)
    router = ShardRouter(shards)
    mempool = ShardedMempool(router) if shards > 1 else Mempool()
    clock = SimClock()
    miner = Miner(chain, mempool, clock)
    return chain, mempool, clock, miner, router


class TestLaneScheduler:
    def test_lanes_share_one_interval(self):
        """Blocks for different shards are sealed inside the same simulated
        block interval: the clock advances once, not once per block."""
        chain, pool, clock, miner, router = _sharded_setup(4, block_interval=2.0)
        ids = _spread_ids(router)
        for nonce, metadata_id in enumerate(ids):
            pool.submit(_tx(nonce, metadata_id=metadata_id))
        pool.submit(_transfer(0, keypair=OTHER))  # control lane 0
        blocks = miner.mine_interval()
        assert len(blocks) == 4  # one per lane with pending work
        assert clock.now() == pytest.approx(2.0)
        assert len({block.timestamp for block in blocks}) == 1
        assert chain.height == 4
        assert chain.verify_chain()

    def test_same_shard_transactions_still_serialise(self):
        chain, pool, clock, miner, router = _sharded_setup(4)
        pool.submit(_tx(0, metadata_id="SAME"))
        pool.submit(_tx(1, metadata_id="SAME"))
        first = miner.mine_interval()
        assert len(first) == 1 and len(first[0].transactions) == 1
        second = miner.mine_interval()
        assert len(second) == 1
        assert clock.now() == pytest.approx(4.0)  # two intervals

    def test_lane_statistics_account_blocks_per_lane(self):
        chain, pool, clock, miner, router = _sharded_setup(4)
        ids = _spread_ids(router)
        for nonce, metadata_id in enumerate(ids):
            pool.submit(_tx(nonce, metadata_id=metadata_id))
        miner.mine_until_empty()
        stats = miner.lane_statistics()
        assert stats["lanes"] == 4
        assert stats["intervals"] == 1
        assert stats["blocks_per_lane"][0] == 0  # reserved control lane idle
        assert sum(stats["blocks_per_lane"]) == len(ids)
        assert sum(stats["transactions_per_lane"]) == len(ids)

    def test_unsharded_miner_reports_no_lanes(self):
        _chain, _pool, _clock, miner, _router = _sharded_setup(1)
        assert miner.lanes is None
        assert miner.lane_statistics() is None

    def test_held_clock_never_advances(self):
        clock = SimClock()
        held = HeldClock(clock)
        held.advance(10.0)
        held.advance_to(99.0)
        assert clock.now() == 0.0 and held.now() == 0.0

    def test_scheduler_requires_two_lanes(self):
        _chain, _pool, _clock, miner, _router = _sharded_setup(2)
        with pytest.raises(ValueError):
            LaneScheduler(miner, 1)


class TestSingleShardEquivalence:
    """consensus_shards=1 must reproduce the unsharded pipeline exactly."""

    def test_block_sequence_identical_to_default_config(self):
        def run(config):
            chain = Blockchain(config)
            mempool = Mempool()
            miner = Miner(chain, mempool, SimClock())
            mempool.submit_many(
                [_tx(i, metadata_id=f"T{i % 3}") for i in range(8)])
            miner.mine_until_empty()
            return [block.block_hash for block in chain.blocks]

        default = LedgerConfig(
            consensus=ConsensusConfig(kind="poa", block_interval=2.0))
        explicit = LedgerConfig(
            consensus=ConsensusConfig(kind="poa", block_interval=2.0),
            consensus_shards=1)
        assert run(default) == run(explicit)

    def test_system_config_surfaces_shard_count(self):
        assert SystemConfig().consensus_shards == 1
        assert SystemConfig.private_chain(2.0, consensus_shards=4).consensus_shards == 4

    def test_config_rejects_non_positive_shards(self):
        with pytest.raises(ValueError):
            LedgerConfig(consensus_shards=0)
