"""Tests for the blockchain and the miner (including the serialisation rule)."""

import pytest

from repro.config import ConsensusConfig, LedgerConfig
from repro.crypto.keys import generate_keypair
from repro.errors import ForkError, InvalidBlockError, InvalidTransactionError
from repro.ledger.chain import Blockchain, NullExecutor
from repro.ledger.clock import SimClock
from repro.ledger.mempool import Mempool
from repro.ledger.miner import Miner, default_conflict_key
from repro.ledger.state import WorldState
from repro.ledger.transaction import Transaction

KEY = generate_keypair(seed=31)
OTHER = generate_keypair(seed=32)


def _tx(nonce, method="request_update", metadata_id="T1", keypair=KEY):
    return Transaction(
        sender=keypair.address, kind="call", nonce=nonce, contract="0xc" + "1" * 39,
        method=method, args={"metadata_id": metadata_id, "changed_attributes": ["a"],
                             "diff_hash": "h"},
        timestamp=0.0,
    ).signed_by(keypair)


def _setup(block_interval=2.0, enforce=True, max_txs=64):
    config = LedgerConfig(
        consensus=ConsensusConfig(kind="poa", block_interval=block_interval),
        max_transactions_per_block=max_txs,
    )
    chain = Blockchain(config)
    mempool = Mempool()
    clock = SimClock()
    miner = Miner(chain, mempool, clock, enforce_serialization=enforce)
    return chain, mempool, clock, miner


class TestBlockchainBasics:
    def test_starts_with_genesis(self):
        chain, _, _, _ = _setup()
        assert chain.height == 0
        assert len(chain) == 1
        assert chain.head == chain.genesis

    def test_block_lookup(self):
        chain, mempool, _, miner = _setup()
        mempool.submit(_tx(0))
        block = miner.mine_block()
        assert chain.block_by_number(1).block_hash == block.block_hash
        assert chain.block_by_hash(block.block_hash).number == 1
        with pytest.raises(InvalidBlockError):
            chain.block_by_number(99)
        with pytest.raises(InvalidBlockError):
            chain.block_by_hash("f" * 64)

    def test_receipts(self):
        chain, mempool, _, miner = _setup()
        tx = _tx(0)
        mempool.submit(tx)
        miner.mine_block()
        receipt = chain.receipt(tx.tx_hash)
        assert receipt.success
        assert receipt.gas_used > 0
        assert chain.has_receipt(tx.tx_hash)
        with pytest.raises(InvalidTransactionError):
            chain.receipt("0" * 64)

    def test_total_gas_accumulates(self):
        chain, mempool, _, miner = _setup()
        mempool.submit_many([_tx(i, metadata_id=f"T{i}") for i in range(3)])
        miner.mine_until_empty()
        assert chain.total_gas_used > 0

    def test_transactions_iterator(self):
        chain, mempool, _, miner = _setup()
        mempool.submit_many([_tx(i, metadata_id=f"T{i}") for i in range(3)])
        miner.mine_until_empty()
        assert len(list(chain.transactions())) == 3


class TestValidation:
    def test_rejects_unsigned_transaction_in_block(self):
        chain, mempool, clock, miner = _setup()
        mempool.submit(_tx(0))
        block = miner.mine_block()
        # Craft a copy of the block with a stripped signature.
        from repro.ledger.block import Block
        payload = block.transactions[0].to_dict()
        payload["signature"] = None
        bad_tx = Transaction.from_dict(payload)
        bad = Block.from_dict(block.to_dict())
        with pytest.raises(InvalidBlockError):
            chain2, _, _, _ = _setup()
            bad_block = Block(header=bad.header, transactions=(bad_tx,))
            chain2.append_block(bad_block)

    def test_rejects_block_over_tx_limit(self):
        chain, mempool, clock, miner = _setup(max_txs=2)
        mempool.submit_many([_tx(i, metadata_id=f"T{i}") for i in range(5)])
        block = miner.mine_block()
        assert len(block.transactions) <= 2

    def test_verify_chain_and_tamper_detection(self):
        chain, mempool, _, miner = _setup()
        mempool.submit_many([_tx(i, metadata_id=f"T{i}") for i in range(3)])
        miner.mine_until_empty()
        assert chain.verify_chain()
        assert chain.detect_tampering() == []
        # Tamper with a mid-chain block header.
        chain.blocks[1].header.timestamp += 1000
        assert not chain.verify_chain()
        assert chain.detect_tampering()

    def test_average_block_interval(self):
        chain, mempool, _, miner = _setup(block_interval=3.0)
        mempool.submit_many([_tx(i, metadata_id=f"T{i}") for i in range(2)])
        miner.mine_block()
        miner.mine_block()
        assert chain.average_block_interval() > 0

    def test_storage_bytes_grows(self):
        chain, mempool, _, miner = _setup()
        before = chain.storage_bytes()
        mempool.submit(_tx(0))
        miner.mine_block()
        assert chain.storage_bytes() > before


class TestSerializationRule:
    """§III-B: one block contains at most one update on a given shared table."""

    def test_conflicting_updates_split_across_blocks(self):
        chain, mempool, _, miner = _setup()
        mempool.submit(_tx(0, metadata_id="D23&D32"))
        mempool.submit(_tx(1, metadata_id="D23&D32"))
        mempool.submit(_tx(2, metadata_id="D13&D31"))
        first = miner.mine_block()
        assert len(first.transactions) == 2  # one per shared table
        ids = [tx.args["metadata_id"] for tx in first.transactions]
        assert sorted(ids) == ["D13&D31", "D23&D32"]
        second = miner.mine_block()
        assert len(second.transactions) == 1
        assert second.transactions[0].args["metadata_id"] == "D23&D32"

    def test_rule_can_be_disabled(self):
        chain, mempool, _, miner = _setup(enforce=False)
        mempool.submit(_tx(0, metadata_id="X"))
        mempool.submit(_tx(1, metadata_id="X"))
        block = miner.mine_block()
        assert len(block.transactions) == 2

    def test_non_update_transactions_do_not_conflict(self):
        chain, mempool, _, miner = _setup()
        ack0 = Transaction(sender=KEY.address, kind="call", nonce=0, contract="0xc" + "1" * 39,
                           method="acknowledge_update", args={"metadata_id": "X", "update_id": 1},
                           timestamp=0.0).signed_by(KEY)
        ack1 = Transaction(sender=OTHER.address, kind="call", nonce=0, contract="0xc" + "1" * 39,
                           method="acknowledge_update", args={"metadata_id": "X", "update_id": 1},
                           timestamp=0.0).signed_by(OTHER)
        mempool.submit_many([ack0, ack1])
        block = miner.mine_block()
        assert len(block.transactions) == 2

    def test_default_conflict_key(self):
        update = _tx(0, metadata_id="M")
        assert default_conflict_key(update) == "M"
        ack = Transaction(sender=KEY.address, kind="call", nonce=1, contract="0xc",
                          method="acknowledge_update", args={"metadata_id": "M"})
        assert default_conflict_key(ack) is None
        transfer = Transaction(sender=KEY.address, kind="transfer", nonce=2)
        assert default_conflict_key(transfer) is None


class TestMiner:
    def test_empty_mempool_produces_no_block(self):
        _, _, _, miner = _setup()
        assert miner.mine_block() is None

    def test_mining_many_blocks_is_linear_in_pool_size(self):
        """The per-lane selection cursor must not rescan the whole pool per
        block: draining N conflict-free transactions across many blocks looks
        at each transaction exactly once (no deferrals, no rescans)."""
        chain, mempool, _, miner = _setup(max_txs=8)
        total = 200
        mempool.submit_many([_tx(i, metadata_id=f"T{i}") for i in range(total)])
        blocks = miner.mine_until_empty(max_blocks=total)
        assert sum(len(b.transactions) for b in blocks) == total
        # Each selection overshoots by at most one transaction per full block
        # (the candidate that did not fit), so the scan count is linear in the
        # pool size — the seed behaviour was quadratic (peek() per block).
        assert miner.txs_scanned <= total + len(blocks)

    def test_cursor_reconsiders_deferred_transactions(self):
        """Transactions deferred by the serialisation rule are rescanned in
        arrival order on the next block, exactly as the full rescan did."""
        chain, mempool, _, miner = _setup()
        mempool.submit(_tx(0, metadata_id="HOT"))
        mempool.submit(_tx(1, metadata_id="HOT"))
        mempool.submit(_tx(2, metadata_id="HOT"))
        order = []
        for _ in range(3):
            block = miner.mine_block()
            order.extend(tx.nonce for tx in block.transactions)
        assert order == [0, 1, 2]
        assert len(mempool) == 0
        # 3 + 2 + 1 scans: each deferred transaction is revisited per block.
        assert miner.txs_scanned == 6

    def test_mine_until_empty(self):
        chain, mempool, _, miner = _setup()
        mempool.submit_many([_tx(i, metadata_id="SAME") for i in range(4)])
        blocks = miner.mine_until_empty()
        assert len(blocks) == 4  # serialization forces one per block
        assert len(mempool) == 0
        assert miner.blocks_mined == 4

    def test_clock_advances_per_block(self):
        chain, mempool, clock, miner = _setup(block_interval=12.0)
        mempool.submit_many([_tx(i, metadata_id=f"T{i}") for i in range(2)])
        miner.mine_until_empty()
        assert clock.now() == pytest.approx(12.0)

    def test_receipts_of_block(self):
        chain, mempool, _, miner = _setup()
        mempool.submit(_tx(0))
        block = miner.mine_block()
        receipts = miner.receipts_of(block)
        assert len(receipts) == 1 and receipts[0].success


class TestForkChoice:
    def test_replace_suffix_with_longer_fork(self):
        chain, mempool, clock, miner = _setup()
        mempool.submit(_tx(0, metadata_id="A"))
        miner.mine_block()
        # Build a longer fork from the same genesis on a second chain; using the
        # same metadata id forces one block per transaction (3 blocks > 1).
        fork_chain, fork_pool, fork_clock, fork_miner = _setup()
        fork_pool.submit_many([_tx(i, metadata_id="FORK") for i in range(3)])
        fork_miner.mine_until_empty()
        fork_blocks = list(fork_chain.blocks[1:])
        chain.replace_suffix(fork_blocks, from_number=1)
        assert chain.height == 3

    def test_replace_suffix_rejects_shorter_fork(self):
        chain, mempool, _, miner = _setup()
        mempool.submit_many([_tx(i, metadata_id=f"T{i}") for i in range(2)])
        miner.mine_block()
        with pytest.raises(ForkError):
            chain.replace_suffix([], from_number=1)

    def test_replace_suffix_rejects_bad_fork_point(self):
        chain, _, _, _ = _setup()
        with pytest.raises(ForkError):
            chain.replace_suffix([], from_number=0)


class TestNullExecutorAndState:
    def test_null_executor_increments_nonce(self):
        executor = NullExecutor()
        state = WorldState()
        receipt = executor.execute(_tx(0), state, block_number=1, timestamp=0.0)
        assert receipt.success
        assert state.nonce_of(KEY.address) == 1

    def test_state_root_changes_with_accounts(self):
        state = WorldState()
        root_before = state.state_root()
        state.increment_nonce("0xabc")
        assert state.state_root() != root_before

    def test_storage_bytes(self):
        state = WorldState()
        state.increment_nonce("0xabc")
        assert state.storage_bytes() > 0
