"""Tests for chain archival (export, replay import, cold verification)."""

import json

import pytest

from repro.config import ConsensusConfig, LedgerConfig
from repro.contracts.runtime import ContractRuntime
from repro.contracts.sharing_contract import SharedDataContract
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, build_paper_scenario
from repro.errors import LedgerError
from repro.ledger.archive import export_chain, import_chain, verify_archive


@pytest.fixture
def system_with_history():
    system = build_paper_scenario()
    system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"})
    return system


def _fresh_executor():
    runtime = ContractRuntime()
    runtime.register_contract_class(SharedDataContract)
    from repro.contracts.registry_contract import SharingRegistryContract

    runtime.register_contract_class(SharingRegistryContract)
    return runtime


class TestExportImport:
    def test_round_trip_reaches_same_state_root(self, system_with_history, tmp_path):
        node = system_with_history.server_app("doctor").node
        path = export_chain(node.chain, tmp_path / "chain.json")
        rebuilt = import_chain(path, node.chain.config, executor=_fresh_executor())
        assert rebuilt.height == node.chain.height
        assert rebuilt.head.block_hash == node.chain.head.block_hash
        assert rebuilt.state.state_root() == node.chain.state.state_root()
        # The replayed contract carries the same history.
        contract = rebuilt.state.contract_at(system_with_history.contract_address)
        assert len(contract.history) == 1

    def test_verify_archive(self, system_with_history, tmp_path):
        node = system_with_history.server_app("patient").node
        path = export_chain(node.chain, tmp_path / "chain.json")
        assert verify_archive(path, node.chain.config, executor=_fresh_executor())

    def test_archive_is_plain_json(self, system_with_history, tmp_path):
        node = system_with_history.server_app("doctor").node
        path = export_chain(node.chain, tmp_path / "chain.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["height"] == node.chain.height
        assert len(payload["blocks"]) == len(node.chain)


class TestErrors:
    def test_missing_archive(self, tmp_path):
        with pytest.raises(LedgerError):
            import_chain(tmp_path / "missing.json", LedgerConfig())

    def test_chain_id_mismatch(self, system_with_history, tmp_path):
        node = system_with_history.server_app("doctor").node
        path = export_chain(node.chain, tmp_path / "chain.json")
        other_config = LedgerConfig(chain_id=999,
                                    consensus=node.chain.config.consensus)
        with pytest.raises(LedgerError):
            import_chain(path, other_config, executor=_fresh_executor())

    def test_tampered_archive_fails_verification(self, system_with_history, tmp_path):
        node = system_with_history.server_app("doctor").node
        path = export_chain(node.chain, tmp_path / "chain.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["blocks"][-1]["header"]["merkle_root"] = "0" * 64
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert not verify_archive(path, node.chain.config, executor=_fresh_executor())

    def test_unsupported_version(self, system_with_history, tmp_path):
        node = system_with_history.server_app("doctor").node
        path = export_chain(node.chain, tmp_path / "chain.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["format_version"] = 42
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(LedgerError):
            import_chain(path, node.chain.config, executor=_fresh_executor())
