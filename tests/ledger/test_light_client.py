"""Tests for light-client verification of shared-data operations."""

import pytest

from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, build_paper_scenario
from repro.errors import InvalidBlockError, LedgerError
from repro.ledger.block import Block, BlockHeader
from repro.ledger.light_client import InclusionProof, LightClient, build_inclusion_proof


@pytest.fixture
def system_with_update():
    system = build_paper_scenario()
    trace = system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"})
    assert trace.succeeded
    return system


def _update_transaction(chain):
    for tx in chain.transactions():
        if tx.method == "request_update":
            return tx
    raise AssertionError("no update transaction on the chain")


class TestInclusionProof:
    def test_proof_round_trip_and_verification(self, system_with_update):
        chain = system_with_update.server_app("doctor").node.chain
        tx = _update_transaction(chain)
        proof = build_inclusion_proof(chain, tx.tx_hash)
        restored = InclusionProof.from_dict(proof.to_dict())
        header = chain.block_by_number(proof.block_number).header
        assert restored.merkle_proof.verify(header.merkle_root)

    def test_proof_for_unknown_transaction(self, system_with_update):
        chain = system_with_update.server_app("doctor").node.chain
        with pytest.raises(LedgerError):
            build_inclusion_proof(chain, "0" * 64)


class TestLightClient:
    def _client(self, system):
        chain = system.server_app("doctor").node.chain
        client = LightClient(chain.consensus, chain.genesis)
        client.sync_from(chain)
        return client, chain

    def test_sync_and_height(self, system_with_update):
        client, chain = self._client(system_with_update)
        assert client.height == chain.height
        assert len(client.headers) == len(chain)
        # Syncing again adds nothing.
        assert client.sync_from(chain) == 0

    def test_rejects_non_linking_header(self, system_with_update):
        client, chain = self._client(system_with_update)
        rogue = BlockHeader(number=client.height + 1, parent_hash="f" * 64,
                            merkle_root="0" * 64, timestamp=0.0, proposer="rogue")
        with pytest.raises(InvalidBlockError):
            client.accept_header(rogue)

    def test_rejects_wrong_number(self, system_with_update):
        client, chain = self._client(system_with_update)
        stale = chain.block_by_number(1).header
        with pytest.raises(InvalidBlockError):
            client.accept_header(stale)

    def test_rejects_forged_seal(self, system_with_update):
        client, chain = self._client(system_with_update)
        head = chain.head.header
        forged = BlockHeader(number=head.number + 1, parent_hash=head.block_hash,
                             merkle_root="0" * 64, timestamp=head.timestamp + 1,
                             proposer="node-doctor", seal="forged")
        with pytest.raises(InvalidBlockError):
            client.accept_header(forged)

    def test_verifies_update_inclusion(self, system_with_update):
        client, chain = self._client(system_with_update)
        tx = _update_transaction(chain)
        proof = build_inclusion_proof(chain, tx.tx_hash)
        assert client.verify_inclusion(proof)
        assert client.verify_operation(proof, tx,
                                       expected_metadata_id=DOCTOR_RESEARCHER_TABLE,
                                       expected_diff_hash=tx.args["diff_hash"])

    def test_rejects_substituted_payload(self, system_with_update):
        """A lying full node cannot pass off a different transaction body."""
        client, chain = self._client(system_with_update)
        tx = _update_transaction(chain)
        proof = build_inclusion_proof(chain, tx.tx_hash)
        from repro.ledger.transaction import Transaction

        payload = tx.to_dict()
        payload["args"] = dict(payload["args"], diff_hash="forged")
        tampered = Transaction.from_dict(payload)
        assert not client.verify_operation(proof, tampered)

    def test_rejects_wrong_metadata_expectation(self, system_with_update):
        client, chain = self._client(system_with_update)
        tx = _update_transaction(chain)
        proof = build_inclusion_proof(chain, tx.tx_hash)
        assert not client.verify_operation(proof, tx, expected_metadata_id="SOMETHING ELSE")

    def test_rejects_proof_beyond_known_height(self, system_with_update):
        client, chain = self._client(system_with_update)
        tx = _update_transaction(chain)
        proof = build_inclusion_proof(chain, tx.tx_hash)
        beyond = InclusionProof(tx_hash=proof.tx_hash, block_number=client.height + 5,
                                merkle_proof=proof.merkle_proof)
        assert not client.verify_inclusion(beyond)

    def test_header_lookup_bounds(self, system_with_update):
        client, _ = self._client(system_with_update)
        with pytest.raises(InvalidBlockError):
            client.header(client.height + 1)
