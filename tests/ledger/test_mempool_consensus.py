"""Tests for the mempool and the consensus engines."""

import pytest

from repro.config import ConsensusConfig
from repro.crypto.keys import generate_keypair
from repro.errors import ConsensusError, InvalidBlockError, InvalidTransactionError
from repro.ledger.block import Block, BlockHeader, make_genesis_block
from repro.ledger.clock import SimClock
from repro.ledger.consensus import ProofOfAuthority, ProofOfWork, make_consensus
from repro.ledger.mempool import Mempool
from repro.ledger.transaction import Transaction

KEY = generate_keypair(seed=7)


def _tx(nonce=0, method="request_update", metadata_id="T1"):
    return Transaction(
        sender=KEY.address, kind="call", nonce=nonce, contract="0xc" + "1" * 39,
        method=method, args={"metadata_id": metadata_id}, timestamp=0.0,
    ).signed_by(KEY)


class TestMempool:
    def test_submit_and_len(self):
        pool = Mempool()
        tx_hash = pool.submit(_tx())
        assert len(pool) == 1
        assert tx_hash in pool

    def test_rejects_unsigned(self):
        pool = Mempool()
        with pytest.raises(InvalidTransactionError):
            pool.submit(Transaction(sender=KEY.address, kind="call", nonce=0))
        assert pool.rejected_count == 1

    def test_submit_batch_reports_per_transaction_outcomes(self):
        pool = Mempool()
        good_one, good_two = _tx(nonce=0), _tx(nonce=1)
        unsigned = Transaction(sender=KEY.address, kind="call", nonce=2)
        pool.submit(good_one)
        accepted, rejected = pool.submit_batch([good_one, good_two, unsigned])
        # The duplicate and the unsigned tx are reported; the rest lands.
        assert accepted == [good_two.tx_hash]
        assert len(rejected) == 2
        assert {tx.tx_hash for tx, _reason in rejected} == {good_one.tx_hash,
                                                            unsigned.tx_hash}
        assert all(reason for _tx_obj, reason in rejected)
        assert len(pool) == 2

    def test_rejects_duplicates(self):
        pool = Mempool()
        tx = _tx()
        pool.submit(tx)
        with pytest.raises(InvalidTransactionError):
            pool.submit(tx)

    def test_signature_check_can_be_disabled(self):
        pool = Mempool(require_signatures=False)
        pool.submit(Transaction(sender=KEY.address, kind="call", nonce=0))
        assert len(pool) == 1

    def test_peek_preserves_order(self):
        pool = Mempool()
        txs = [_tx(nonce=i) for i in range(5)]
        pool.submit_many(txs)
        assert [t.nonce for t in pool.peek()] == [0, 1, 2, 3, 4]
        assert len(pool.peek(limit=2)) == 2

    def test_remove(self):
        pool = Mempool()
        txs = [_tx(nonce=i) for i in range(3)]
        pool.submit_many(txs)
        removed = pool.remove([txs[0].tx_hash, txs[2].tx_hash])
        assert removed == 2
        assert [t.nonce for t in pool.peek()] == [1]

    def test_pending_for_sender_and_next_nonce(self):
        pool = Mempool()
        pool.submit(_tx(nonce=3))
        pool.submit(_tx(nonce=4))
        assert len(pool.pending_for_sender(KEY.address)) == 2
        assert pool.next_nonce(KEY.address, confirmed_nonce=3) == 5
        assert pool.next_nonce("0xother", confirmed_nonce=2) == 2

    def test_clear(self):
        pool = Mempool()
        pool.submit(_tx())
        pool.clear()
        assert len(pool) == 0

    def test_remove_keeps_arrival_order_of_the_rest(self):
        """Regression for the ordered-dict bookkeeping: removing an arbitrary
        subset (as every mined block does) preserves arrival-order iteration
        for the survivors and is O(removed), not O(pending * removed)."""
        pool = Mempool()
        txs = [_tx(nonce=i) for i in range(10)]
        pool.submit_many(txs)
        pool.remove([txs[i].tx_hash for i in (0, 3, 4, 9)])
        assert [t.nonce for t in pool.peek()] == [1, 2, 5, 6, 7, 8]
        # Removing unknown hashes is a no-op, not an error.
        assert pool.remove(["f" * 64]) == 0
        # Later submissions continue the arrival order.
        late = _tx(nonce=10)
        pool.submit(late)
        assert [t.nonce for t in pool.peek()][-1] == 10

    def test_iter_entries_resumes_after_sequence(self):
        pool = Mempool()
        txs = [_tx(nonce=i) for i in range(5)]
        pool.submit_many(txs)
        entries = list(pool.iter_entries())
        assert [t.nonce for _s, t in entries] == [0, 1, 2, 3, 4]
        cutoff = entries[2][0]
        assert [t.nonce for _s, t in pool.iter_entries(after=cutoff)] == [3, 4]
        assert pool.get(txs[1].tx_hash) is txs[1]
        assert pool.sequence_of(txs[1].tx_hash) == entries[1][0]


def _header(number=1, parent="00" * 32, proposer="authority-1"):
    return BlockHeader(number=number, parent_hash=parent, merkle_root="",
                       timestamp=0.0, proposer=proposer)


class TestProofOfAuthority:
    def test_seal_advances_clock_by_interval(self):
        engine = ProofOfAuthority(ConsensusConfig(kind="poa", block_interval=2.0))
        clock = SimClock()
        header = engine.seal(_header(), clock)
        assert clock.now() == 2.0
        assert header.timestamp == 2.0
        assert header.seal

    def test_seal_validates(self):
        engine = ProofOfAuthority(ConsensusConfig(kind="poa"))
        header = engine.seal(_header(), SimClock())
        engine.validate_seal(Block(header=header))

    def test_non_authority_rejected(self):
        engine = ProofOfAuthority(
            ConsensusConfig(kind="poa", authorities=("authority-1",)))
        with pytest.raises(ConsensusError):
            engine.seal(_header(proposer="intruder"), SimClock())

    def test_validate_rejects_forged_seal(self):
        engine = ProofOfAuthority(ConsensusConfig(kind="poa"))
        header = engine.seal(_header(), SimClock())
        header.seal = "forged"
        with pytest.raises(InvalidBlockError):
            engine.validate_seal(Block(header=header))

    def test_validate_rejects_non_authority_proposer(self):
        engine = ProofOfAuthority(
            ConsensusConfig(kind="poa", authorities=("authority-1",)))
        header = _header(proposer="intruder")
        with pytest.raises(InvalidBlockError):
            engine.validate_seal(Block(header=header))


class TestProofOfWork:
    def test_seal_meets_difficulty(self):
        engine = ProofOfWork(ConsensusConfig(kind="pow", pow_difficulty=2,
                                             block_interval=12.0))
        clock = SimClock()
        header = engine.seal(_header(), clock)
        assert header.block_hash.startswith("00")
        assert clock.now() == 12.0
        assert engine.sealing_work() >= 1

    def test_validate_rejects_insufficient_work(self):
        engine = ProofOfWork(ConsensusConfig(kind="pow", pow_difficulty=2))
        header = _header()
        header.seal = "pow"
        # Find a nonce that does NOT satisfy the target.
        while header.block_hash.startswith("00"):
            header.nonce += 1
        with pytest.raises(InvalidBlockError):
            engine.validate_seal(Block(header=header))

    def test_zero_difficulty_accepts_anything(self):
        engine = ProofOfWork(ConsensusConfig(kind="pow", pow_difficulty=0))
        engine.validate_seal(Block(header=_header()))


class TestFactory:
    def test_make_poa(self):
        assert isinstance(make_consensus(ConsensusConfig(kind="poa")), ProofOfAuthority)

    def test_make_pow(self):
        assert isinstance(make_consensus(ConsensusConfig(kind="pow")), ProofOfWork)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ConsensusConfig(kind="mystery")
        with pytest.raises(ValueError):
            ConsensusConfig(block_interval=0)
        with pytest.raises(ValueError):
            ConsensusConfig(pow_difficulty=-1)
