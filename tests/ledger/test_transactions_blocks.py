"""Tests for transactions, blocks and the simulated clock."""

import pytest

from repro.crypto.keys import generate_keypair
from repro.errors import InvalidBlockError, InvalidTransactionError
from repro.ledger.block import Block, BlockHeader, GENESIS_PARENT, make_genesis_block, validate_block_linkage
from repro.ledger.clock import SimClock
from repro.ledger.gas import GasSchedule, payload_size, transaction_gas
from repro.ledger.transaction import Transaction

ALICE = generate_keypair(seed=101)
BOB = generate_keypair(seed=102)


def _signed_tx(nonce=0, method="request_update", args=None, keypair=ALICE):
    tx = Transaction(
        sender=keypair.address,
        kind="call",
        nonce=nonce,
        contract="0xc" + "0" * 39,
        method=method,
        args=args or {"metadata_id": "D23&D32"},
        timestamp=1.0,
    )
    return tx.signed_by(keypair)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(12.0) == 12.0
        assert clock.now() == 12.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_never_goes_backwards(self):
        clock = SimClock(start=10)
        clock.advance_to(5)
        assert clock.now() == 10
        clock.advance_to(15)
        assert clock.now() == 15

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1)


class TestTransaction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidTransactionError):
            Transaction(sender="0xabc", kind="mystery", nonce=0)

    def test_negative_nonce_rejected(self):
        with pytest.raises(InvalidTransactionError):
            Transaction(sender="0xabc", kind="call", nonce=-1)

    def test_signing_requires_matching_key(self):
        tx = Transaction(sender="0x" + "1" * 40, kind="call", nonce=0)
        with pytest.raises(InvalidTransactionError):
            tx.signed_by(ALICE)

    def test_signed_transaction_verifies(self):
        assert _signed_tx().verify_signature()

    def test_unsigned_transaction_does_not_verify(self):
        tx = Transaction(sender=ALICE.address, kind="call", nonce=0)
        assert not tx.verify_signature()

    def test_tampered_args_break_signature(self):
        tx = _signed_tx()
        payload = tx.to_dict()
        payload["args"]["metadata_id"] = "SOMETHING ELSE"
        assert not Transaction.from_dict(payload).verify_signature()

    def test_signature_from_other_key_rejected(self):
        tx = _signed_tx()
        payload = tx.to_dict()
        payload["sender_public_key"] = hex(BOB.public_key)
        assert not Transaction.from_dict(payload).verify_signature()

    def test_signed_transaction_is_frozen(self):
        """A signed transaction cannot be mutated in place: field assignment
        raises and args/payload are read-only, so the cached hash can never
        go stale."""
        tx = _signed_tx()
        assert tx.is_frozen
        with pytest.raises(InvalidTransactionError):
            tx.nonce = 99
        with pytest.raises(InvalidTransactionError):
            tx.signature = None
        with pytest.raises(InvalidTransactionError):
            tx.args["metadata_id"] = "SOMETHING ELSE"
        # The freeze is deep: nested containers are immutable too, so the
        # cached hash cannot silently go stale through an inner list/dict.
        nested = _signed_tx(args={"metadata_id": "x",
                                  "changed_attributes": ["a", "b"],
                                  "contributions": [{"peer": "0xp"}]})
        assert isinstance(nested.args["changed_attributes"], tuple)
        with pytest.raises(InvalidTransactionError):
            nested.args["contributions"][0]["peer"] = "0xforged"
        # An unsigned transaction stays mutable (it has no signature to cover).
        unsigned = Transaction(sender=ALICE.address, kind="call", nonce=0)
        assert not unsigned.is_frozen
        unsigned.nonce = 1

    def test_tx_hash_is_cached_after_first_computation(self):
        tx = _signed_tx()
        first = tx.tx_hash
        assert tx.__dict__["_cached_tx_hash"] == first
        assert tx.tx_hash is first

    def test_hash_changes_with_content(self):
        assert _signed_tx(nonce=0).tx_hash != _signed_tx(nonce=1).tx_hash

    def test_round_trip_dict(self):
        tx = _signed_tx()
        restored = Transaction.from_dict(tx.to_dict())
        assert restored.tx_hash == tx.tx_hash
        assert restored.verify_signature()


class TestGas:
    def test_intrinsic_gas_grows_with_payload(self):
        small = _signed_tx(args={"metadata_id": "x"})
        large = _signed_tx(args={"metadata_id": "x" * 500})
        schedule = GasSchedule()
        assert schedule.intrinsic_gas(large) > schedule.intrinsic_gas(small)

    def test_deploy_costs_more(self):
        call = _signed_tx()
        deploy = Transaction(sender=ALICE.address, kind="deploy", nonce=0,
                             method="SharedDataContract").signed_by(ALICE)
        assert transaction_gas(deploy) > 0
        assert GasSchedule().intrinsic_gas(deploy) >= GasSchedule().per_contract_deployment

    def test_payload_size_positive(self):
        assert payload_size(_signed_tx()) > 0


class TestBlocks:
    def _block(self, number, parent_hash, transactions=()):
        header = BlockHeader(number=number, parent_hash=parent_hash, merkle_root="",
                             timestamp=float(number), proposer="miner")
        block = Block(header=header, transactions=tuple(transactions))
        header.merkle_root = block.compute_merkle_root()
        return Block(header=header, transactions=tuple(transactions))

    def test_genesis_block(self):
        genesis = make_genesis_block(chain_id=2019)
        assert genesis.number == 0
        assert genesis.parent_hash == GENESIS_PARENT
        assert genesis.verify_merkle_root()

    def test_merkle_root_commits_to_transactions(self):
        block = self._block(1, "00" * 32, [_signed_tx(nonce=0), _signed_tx(nonce=1)])
        assert block.verify_merkle_root()
        tampered = Block(header=block.header, transactions=(_signed_tx(nonce=2),))
        assert not tampered.verify_merkle_root()

    def test_find_transaction(self):
        tx = _signed_tx()
        block = self._block(1, "00" * 32, [tx])
        assert block.find_transaction(tx.tx_hash) is not None
        assert block.find_transaction("0" * 64) is None

    def test_linkage_validation(self):
        genesis = make_genesis_block(chain_id=1)
        good = self._block(1, genesis.block_hash)
        validate_block_linkage(genesis, good)

    def test_linkage_rejects_wrong_parent(self):
        genesis = make_genesis_block(chain_id=1)
        bad = self._block(1, "ff" * 32)
        with pytest.raises(InvalidBlockError):
            validate_block_linkage(genesis, bad)

    def test_linkage_rejects_wrong_number(self):
        genesis = make_genesis_block(chain_id=1)
        bad = self._block(5, genesis.block_hash)
        with pytest.raises(InvalidBlockError):
            validate_block_linkage(genesis, bad)

    def test_linkage_rejects_time_travel(self):
        genesis = make_genesis_block(chain_id=1, timestamp=100.0)
        child = self._block(1, genesis.block_hash)
        with pytest.raises(InvalidBlockError):
            validate_block_linkage(genesis, child)

    def test_round_trip_dict(self):
        block = self._block(1, "00" * 32, [_signed_tx()])
        restored = Block.from_dict(block.to_dict())
        assert restored.block_hash == block.block_hash
        assert restored.verify_merkle_root()
