"""Fleet placements: parity, partitioning, and crash recovery via the WAL.

The multiprocess tests fork real worker processes and carry the
``multiprocess`` marker so CI can run them in a dedicated job under a hard
timeout; everything else runs on in-process loopback threads.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.crypto.hashing import canonical_json
from repro.errors import FleetError, WorkerCrashError
from repro.gateway.gateway import ResponseJournal
from repro.runtime import GatewayFleet, WorkerSpec, partition_tenants
from repro.runtime.fleet import CRASH_EXIT_CODE

#: Small but non-trivial workload: a few batches per worker, two lanes of
#: tenants, deterministic seeds.
SPEC_KWARGS = dict(duration=6.0, rate=1.0, read_fraction=0.5, interval=1.0,
                   batch_size=4)


def _fingerprints(result):
    return {name: worker["fingerprints"]
            for name, worker in sorted(result.workers.items())}


class TestPartitioning:
    def test_round_robin_split(self):
        specs = partition_tenants(10, 4, base_seed=100, duration=3.0)
        assert [spec.tenants for spec in specs] == [3, 3, 2, 2]
        assert [spec.seed for spec in specs] == [100, 101, 102, 103]
        assert [spec.name for spec in specs] == [f"worker-{i}" for i in range(4)]
        assert all(spec.duration == 3.0 for spec in specs)

    def test_too_few_tenants(self):
        with pytest.raises(FleetError, match="cannot split"):
            partition_tenants(2, 3)

    def test_zero_workers(self):
        with pytest.raises(FleetError, match="at least one worker"):
            partition_tenants(4, 0)


class TestFleetValidation:
    def test_unknown_mode(self):
        with pytest.raises(FleetError, match="unknown fleet mode"):
            GatewayFleet([WorkerSpec("w", tenants=1)], mode="rdma")

    def test_duplicate_names(self):
        with pytest.raises(FleetError, match="duplicate worker names"):
            GatewayFleet([WorkerSpec("w", tenants=1), WorkerSpec("w", tenants=1)])

    def test_empty_fleet(self):
        with pytest.raises(FleetError, match="at least one worker spec"):
            GatewayFleet([]).run()

    def test_unknown_crash_policy(self):
        with pytest.raises(FleetError, match="on_crash"):
            GatewayFleet([WorkerSpec("w", tenants=1)], on_crash="shrug")

    def test_loopback_rejects_crash_specs(self):
        """A crash spec on a loopback thread would os._exit the coordinator
        itself (and leak the ResponseJournal.sync patch into every
        in-process worker), so the fleet must refuse it up front."""
        spec = WorkerSpec("w", tenants=1, crash_after_syncs=1)
        with pytest.raises(FleetError, match="crash_after_syncs"):
            GatewayFleet([spec], mode="loopback")


class TestLoopbackParity:
    def test_one_worker_loopback_matches_direct_run(self):
        """The runtime boundary is a placement change, not a semantic one:
        one loopback worker == calling the engine directly."""
        from repro.cli import run_gateway_loadtest

        spec = WorkerSpec("worker-0", tenants=2, seed=23, **SPEC_KWARGS)
        fleet = GatewayFleet([spec], mode="loopback").run()
        direct = run_gateway_loadtest(tenants=2, seed=23,
                                      include_fingerprints=True, **SPEC_KWARGS)
        direct = json.loads(canonical_json(direct))
        worker = fleet.workers["worker-0"]
        assert worker["fingerprints"] == direct["fingerprints"]
        assert (worker["metrics"]["batches"]["writes_committed"]
                == direct["metrics"]["batches"]["writes_committed"])
        assert fleet.clock["merged_now"] == direct["simulated_seconds"]

    def test_codec_choice_never_changes_results(self):
        """Loopback with no codec, canonical JSON, and binary must agree
        on every worker fingerprint — codecs re-encode, never reinterpret."""
        specs = partition_tenants(4, 2, **SPEC_KWARGS)
        runs = [GatewayFleet(specs, mode="loopback", wire_codec=codec).run()
                for codec in (None, "canonical-json", "binary")]
        baseline = _fingerprints(runs[0])
        assert all(_fingerprints(run) == baseline for run in runs[1:])
        assert len({run.committed_writes for run in runs}) == 1

    def test_transport_stats_track_codec(self):
        specs = [WorkerSpec("worker-0", tenants=1, **SPEC_KWARGS)]
        coded = GatewayFleet(specs, mode="loopback", wire_codec="binary").run()
        stats = coded.transport["worker-0"]
        assert stats["sent"] == 2  # worker.run + worker.shutdown
        assert stats["received"] == 2  # clock.report + worker.result
        assert stats["wire_bytes_out"] > 0


@pytest.mark.multiprocess
class TestMultiprocessPlacement:
    def test_matches_loopback_byte_for_byte(self):
        """Same specs, other placement: per-worker fingerprints, commit
        counts and clock reports all identical."""
        specs = partition_tenants(4, 2, **SPEC_KWARGS)
        loop = GatewayFleet(specs, mode="loopback", wire_codec="binary").run()
        forked = GatewayFleet(specs, mode="multiprocess",
                              wire_codec="binary").run()
        assert _fingerprints(forked) == _fingerprints(loop)
        assert forked.committed_writes == loop.committed_writes
        assert forked.clock["reports"] == loop.clock["reports"]
        assert forked.clock["merged_now"] == loop.clock["merged_now"]

    def test_crash_mid_commit_recovers_via_wal(self, tmp_path):
        """A worker killed inside a journal sync (mid-commit, after WAL
        appends) must surface as a crash with its exit code — and its
        journal must reopen cleanly from disk with every synced response
        readable, which is exactly the recovery story the WAL promises."""
        specs = [
            dataclasses.replace(spec,
                                state_dir=str(tmp_path / spec.name),
                                read_fraction=0.0,
                                crash_after_syncs=(2 if index == 0 else None))
            for index, spec in enumerate(
                partition_tenants(4, 2, **SPEC_KWARGS))
        ]
        fleet = GatewayFleet(specs, mode="multiprocess", on_crash="collect",
                             timeout=120.0)
        result = fleet.run()

        assert [crash["worker"] for crash in result.crashes] == ["worker-0"]
        assert result.crashes[0]["exitcode"] == CRASH_EXIT_CODE
        # The survivor finished normally and its result was kept.
        assert set(result.workers) == {"worker-1"}
        assert result.workers["worker-1"]["metrics"]["batches"]["committed"] > 0

        # Recovery: reopen the crashed worker's journal from its WAL.  The
        # first sync completed before the injected crash, so at least one
        # batch of terminal responses must come back, in order, with any
        # torn tail from the crash amputated rather than poisoning the log.
        journal = ResponseJournal(tmp_path / "worker-0" / "responses")
        entries, _last = journal.backend.read_entries()
        assert entries, "no journaled responses survived the crash"
        sequences = [entry.sequence for entry in entries]
        assert sequences == sorted(sequences)
        assert all(entry.operation == "response" for entry in entries)
        journal.close()

    def test_crash_raises_by_default(self, tmp_path):
        specs = [dataclasses.replace(
            WorkerSpec("worker-0", tenants=2, seed=23, **SPEC_KWARGS),
            state_dir=str(tmp_path / "worker-0"), read_fraction=0.0,
            crash_after_syncs=1)]
        fleet = GatewayFleet(specs, mode="multiprocess", timeout=120.0)
        with pytest.raises(WorkerCrashError) as excinfo:
            fleet.run()
        assert excinfo.value.worker == "worker-0"
        assert excinfo.value.exitcode == CRASH_EXIT_CODE
