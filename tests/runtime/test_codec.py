"""Wire codec properties: round-trip fidelity, determinism, framing."""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.crypto.hashing import canonical_json
from repro.errors import CodecError
from repro.runtime import (
    BinaryCodec,
    CanonicalJsonCodec,
    available_codecs,
    get_codec,
    read_frame,
    write_frame,
)
from repro.runtime.codec import MAX_FRAME_BYTES

SEEDS = range(8)


def random_value(rng: random.Random, depth: int = 0):
    """A random value from the codecs' shared wire model."""
    leaf_kinds = ("none", "bool", "int", "bigint", "float", "str", "bytes")
    kinds = leaf_kinds if depth >= 4 else leaf_kinds + ("list", "dict")
    kind = rng.choice(kinds)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        return rng.randint(-1000, 1000)
    if kind == "bigint":
        return rng.randint(-(2 ** 200), 2 ** 200)
    if kind == "float":
        return rng.choice([0.0, -1.5, 3.14159, 1e300, -1e-300, float(rng.randint(0, 10 ** 6))])
    if kind == "str":
        return "".join(rng.choice("abßπ🜚xyz0127-_ ") for _ in range(rng.randint(0, 40)))
    if kind == "bytes":
        return rng.randbytes(rng.randint(0, 64))
    if kind == "list":
        return [random_value(rng, depth + 1) for _ in range(rng.randint(0, 6))]
    return {f"k{index}-{rng.randint(0, 99)}": random_value(rng, depth + 1)
            for index in range(rng.randint(0, 6))}


def strip_bytes(value):
    """Drop bytes leaves (canonical JSON maps them to hex, one-way)."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, list):
        return [strip_bytes(item) for item in value]
    if isinstance(value, dict):
        return {key: strip_bytes(item) for key, item in value.items()}
    return value


class TestBinaryRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_values_round_trip(self, seed):
        codec = BinaryCodec()
        rng = random.Random(seed)
        for _ in range(200):
            value = random_value(rng)
            blob = codec.encode(value)
            decoded = codec.decode(blob)
            assert decoded == value
            # bool identity survives (never conflated with 0/1)
            assert json.dumps(strip_bytes(decoded), sort_keys=True) == \
                json.dumps(strip_bytes(value), sort_keys=True)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_equal_values_encode_identically(self, seed):
        """No identity-dependence: rebuilding the same value (fresh objects,
        different dict insertion order) yields the same bytes."""
        codec = BinaryCodec()
        rng = random.Random(seed)
        value = {f"key-{i}": random_value(rng, depth=3) for i in range(8)}
        rebuilt = json.loads(json.dumps(strip_bytes(value), sort_keys=True))
        reordered = dict(reversed(list(rebuilt.items())))
        assert codec.encode(rebuilt) == codec.encode(reordered)

    def test_scalar_edge_cases(self):
        codec = BinaryCodec()
        for value in (0, 127, 128, -1, -128, 255, 256, 2 ** 2048, -(2 ** 2048),
                      True, False, None, "", "x" * 255, "x" * 256, b"", b"\x00" * 300,
                      [], {}, [[]], {"": None}, 0.0, -0.0, float("inf")):
            assert codec.decode(codec.encode(value)) == value

    def test_bool_tags_distinct_from_ints(self):
        codec = BinaryCodec()
        assert codec.encode(True) != codec.encode(1)
        assert codec.encode(False) != codec.encode(0)
        assert codec.decode(codec.encode(True)) is True
        assert codec.decode(codec.encode(0)) == 0
        assert not isinstance(codec.decode(codec.encode(0)), bool)

    def test_tuples_and_mappings_normalise(self):
        codec = BinaryCodec()
        assert codec.decode(codec.encode((1, 2, 3))) == [1, 2, 3]

    def test_trailing_bytes_rejected(self):
        codec = BinaryCodec()
        with pytest.raises(CodecError, match="trailing"):
            codec.decode(codec.encode(1) + b"\x00")

    def test_truncated_rejected(self):
        codec = BinaryCodec()
        blob = codec.encode({"key": ["deep", {"nested": 12345}]})
        for cut in range(len(blob)):
            with pytest.raises(CodecError):
                codec.decode(blob[:cut])

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError, match="unknown tag"):
            BinaryCodec().decode(b"\x7f")

    def test_unencodable_type_rejected(self):
        with pytest.raises(CodecError, match="cannot encode"):
            BinaryCodec().encode(object())

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(CodecError):
            BinaryCodec().encode({1: "x"})


class TestCanonicalJsonCodec:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_hashing_layer_bytes(self, seed):
        """The default codec must be byte-compatible with canonical_json —
        that is the whole point of it being the default."""
        codec = CanonicalJsonCodec()
        rng = random.Random(seed)
        for _ in range(50):
            value = strip_bytes(random_value(rng))
            assert codec.encode(value) == canonical_json(value).encode("utf-8")
            assert codec.decode(codec.encode(value)) == value

    def test_decode_garbage_raises(self):
        with pytest.raises(CodecError):
            CanonicalJsonCodec().decode(b"\xff\xfe not json")


class TestRegistry:
    def test_available_codecs(self):
        assert set(available_codecs()) == {"canonical-json", "binary"}

    def test_get_codec_resolution(self):
        assert isinstance(get_codec(None), CanonicalJsonCodec)
        assert isinstance(get_codec("binary"), BinaryCodec)
        instance = BinaryCodec()
        assert get_codec(instance) is instance

    def test_unknown_codec(self):
        with pytest.raises(CodecError, match="unknown wire codec"):
            get_codec("msgpack")

    def test_segment_suffixes_distinct(self):
        assert CanonicalJsonCodec().segment_suffix != BinaryCodec().segment_suffix


class TestFraming:
    def test_round_trip_stream(self):
        stream = io.BytesIO()
        payloads = [b"", b"a", b"x" * 1000]
        for payload in payloads:
            written = write_frame(stream, payload)
            assert written == 4 + len(payload)
        stream.seek(0)
        assert [read_frame(stream) for _ in payloads] == payloads
        assert read_frame(stream) is None  # clean EOF

    def test_torn_header(self):
        stream = io.BytesIO(b"\x00\x00")
        with pytest.raises(CodecError, match="torn frame header"):
            read_frame(stream)

    def test_torn_payload(self):
        stream = io.BytesIO()
        write_frame(stream, b"full payload")
        torn = io.BytesIO(stream.getvalue()[:-3])
        with pytest.raises(CodecError, match="torn frame payload"):
            read_frame(torn)

    def test_oversized_frame_rejected_both_ways(self):
        stream = io.BytesIO()
        with pytest.raises(CodecError, match="exceeds limit"):
            write_frame(stream, b"\x00" * (MAX_FRAME_BYTES + 1))
        bogus = io.BytesIO((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(CodecError, match="exceeds limit"):
            read_frame(bogus)
