"""Envelope sequence discipline and cross-process clock coordination."""

from __future__ import annotations

import random

import pytest

from repro.errors import EnvelopeError
from repro.runtime import ClockCoordinator, Envelope, EnvelopeChannel, WorkerClock
from repro.runtime.envelope import ENVELOPE_SCHEMA_VERSION

SEEDS = range(8)


class TestEnvelope:
    def test_round_trip(self):
        envelope = Envelope(kind="worker.run", payload={"tenants": 4},
                            sender="coordinator", sequence=3, sent_at=1.5)
        assert Envelope.from_dict(envelope.to_dict()) == envelope

    def test_invalid_kind(self):
        with pytest.raises(EnvelopeError):
            Envelope(kind="", payload=None, sender="a", sequence=0)

    def test_negative_sequence(self):
        with pytest.raises(EnvelopeError):
            Envelope(kind="x", payload=None, sender="a", sequence=-1)

    def test_version_mismatch(self):
        data = Envelope(kind="x", payload=None, sender="a", sequence=0).to_dict()
        data["version"] = ENVELOPE_SCHEMA_VERSION + 1
        with pytest.raises(EnvelopeError, match="unsupported envelope version"):
            Envelope.from_dict(data)

    def test_missing_field(self):
        data = Envelope(kind="x", payload=None, sender="a", sequence=0).to_dict()
        del data["sequence"]
        with pytest.raises(EnvelopeError, match="missing field"):
            Envelope.from_dict(data)


class TestEnvelopeChannel:
    def test_consecutive_sequences(self):
        out = EnvelopeChannel("left")
        incoming = EnvelopeChannel("left")
        for expected in range(5):
            envelope = out.stamp("ping", {"n": expected})
            assert envelope.sequence == expected
            incoming.accept(envelope)
        assert out.sent == 5
        assert incoming.received == 5

    def test_gap_detected(self):
        out = EnvelopeChannel("left")
        incoming = EnvelopeChannel("left")
        incoming.accept(out.stamp("ping", None))
        skipped = out.stamp("ping", None)  # sequence 1, never delivered
        assert skipped.sequence == 1
        late = out.stamp("ping", None)
        with pytest.raises(EnvelopeError, match="sequence gap"):
            incoming.accept(late)

    def test_replay_detected(self):
        out = EnvelopeChannel("left")
        incoming = EnvelopeChannel("left")
        first = out.stamp("ping", None)
        incoming.accept(first)
        with pytest.raises(EnvelopeError, match="sequence gap"):
            incoming.accept(first)


class TestClockCoordinator:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_is_order_independent(self, seed):
        """Any interleaving of the same reports converges to the same merged
        time and the same per-worker report map."""
        rng = random.Random(seed)
        reports = [(f"worker-{rng.randint(0, 3)}", round(rng.uniform(0, 100), 3))
                   for _ in range(40)]
        baselines = None
        for _ in range(4):
            shuffled = list(reports)
            rng.shuffle(shuffled)
            coordinator = ClockCoordinator()
            for worker, now in shuffled:
                coordinator.observe(worker, now)
            state = (coordinator.now(), coordinator.reports())
            if baselines is None:
                baselines = state
            assert state == baselines
        assert baselines[0] == max(now for _, now in reports)
        for worker, now in reports:
            assert baselines[1][worker] >= now

    def test_merged_clock_is_monotone(self):
        coordinator = ClockCoordinator()
        coordinator.observe("a", 10.0)
        coordinator.observe("b", 5.0)  # lagging report cannot rewind
        assert coordinator.now() == 10.0

    def test_negative_report_rejected(self):
        with pytest.raises(ValueError):
            ClockCoordinator().observe("a", -1.0)

    def test_seed_for_resumes_from_reported_time(self):
        coordinator = ClockCoordinator()
        coordinator.observe("a", 7.5)
        coordinator.observe("b", 3.0)
        assert coordinator.seed_for("a") == 7.5
        assert coordinator.seed_for("b") == 3.0
        # an unseen worker starts at the merged now
        assert coordinator.seed_for("fresh") == coordinator.now()


class TestWorkerClock:
    def test_report_payload(self):
        clock = WorkerClock(start=2.0, worker="w0")
        clock.advance(1.5)
        assert clock.report() == {"worker": "w0", "now": 3.5}

    def test_is_a_simclock(self):
        clock = WorkerClock()
        clock.advance_to(9.0)
        assert clock.now() == 9.0
