"""Transport behaviour shared by both placements: ordering, framing, stats."""

from __future__ import annotations

import threading

import pytest

from repro.errors import FleetProtocolError
from repro.runtime import LoopbackTransport, MultiprocessTransport


class TestLoopbackTransport:
    def test_bidirectional_round_trip(self):
        left, right = LoopbackTransport.pair("left", "right")
        left.send("ping", {"n": 1}, sent_at=2.5)
        got = right.receive(timeout=5)
        assert (got.kind, got.payload, got.sender, got.sent_at) == \
            ("ping", {"n": 1}, "left", 2.5)
        right.send("pong", {"n": 2})
        assert left.receive(timeout=5).payload == {"n": 2}

    def test_without_codec_payload_object_passes_untouched(self):
        left, right = LoopbackTransport.pair()
        payload = {"shared": [1, 2, 3]}
        left.send("obj", payload)
        assert right.receive(timeout=5).payload is payload

    def test_with_codec_payload_is_rewritten_and_counted(self):
        left, right = LoopbackTransport.pair(codec="binary")
        payload = {"key": (1, 2)}  # tuple only exists pre-wire
        left.send("obj", payload)
        got = right.receive(timeout=5)
        assert got.payload == {"key": [1, 2]}
        assert left.statistics()["wire_bytes_out"] > 0
        assert right.statistics()["wire_bytes_in"] > 0

    def test_close_reads_as_clean_eof(self):
        left, right = LoopbackTransport.pair()
        left.close()
        assert right.receive(timeout=5) is None

    def test_receive_timeout_is_protocol_error(self):
        left, _right = LoopbackTransport.pair()
        with pytest.raises(FleetProtocolError, match="timed out"):
            left.receive(timeout=0.01)

    def test_statistics_count_both_directions(self):
        left, right = LoopbackTransport.pair()
        for n in range(3):
            left.send("ping", n)
            right.receive(timeout=5)
        right.send("pong", None)
        left.receive(timeout=5)
        assert left.statistics() == {"sent": 3, "received": 1,
                                     "wire_bytes_out": 0, "wire_bytes_in": 0}
        assert right.statistics()["received"] == 3


class TestMultiprocessTransport:
    """Both socketpair ends in one process — framing without forking."""

    @pytest.mark.parametrize("codec", ["canonical-json", "binary"])
    def test_framed_round_trip(self, codec):
        left, right = MultiprocessTransport.pair(codec=codec)
        try:
            left.send("worker.run", {"tenants": 4, "seed": 23})
            got = right.receive(timeout=5)
            assert got.kind == "worker.run"
            assert got.payload == {"tenants": 4, "seed": 23}
            right.send("worker.result", {"ok": True})
            assert left.receive(timeout=5).payload == {"ok": True}
            assert left.statistics()["wire_bytes_out"] > 4
            assert left.statistics()["wire_bytes_in"] > 4
        finally:
            left.close()
            right.close()

    def test_request_reply(self):
        left, right = MultiprocessTransport.pair()
        try:
            def serve():
                envelope = right.receive(timeout=5)
                right.send("echo.reply", envelope.payload)

            server = threading.Thread(target=serve, daemon=True)
            server.start()
            reply = left.request("echo", {"v": 9}, timeout=5)
            assert reply.kind == "echo.reply"
            assert reply.payload == {"v": 9}
            server.join(timeout=5)
        finally:
            left.close()
            right.close()

    def test_peer_close_reads_as_eof(self):
        left, right = MultiprocessTransport.pair()
        right.close()
        assert left.receive(timeout=5) is None
        left.close()

    def test_timeout_is_protocol_error(self):
        left, right = MultiprocessTransport.pair()
        try:
            with pytest.raises(FleetProtocolError, match="timed out"):
                left.receive(timeout=0.05)
        finally:
            left.close()
            right.close()

    def test_send_after_peer_gone_is_protocol_error(self):
        left, right = MultiprocessTransport.pair()
        right.close()
        with pytest.raises(FleetProtocolError, match="transmit"):
            for _ in range(64):  # socket buffers may absorb the first sends
                left.send("ping", {"pad": "x" * 4096})
        left.close()
