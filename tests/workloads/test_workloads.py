"""Tests for the synthetic workload generators."""

import pytest

from repro.core.records import FULL_RECORD_COLUMNS, full_record_schema
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, PATIENT_DOCTOR_TABLE
from repro.errors import UpdateRejected
from repro.relational.table import Table
from repro.workloads.generator import MedicalRecordGenerator
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.updates import UpdateStreamGenerator


class TestMedicalRecordGenerator:
    def test_records_fit_the_full_schema(self):
        generator = MedicalRecordGenerator(seed=1)
        records = generator.records(25)
        table = Table("full", full_record_schema(), records)
        assert len(table) == 25
        assert set(records[0]) == set(FULL_RECORD_COLUMNS)

    def test_deterministic_for_seed(self):
        assert MedicalRecordGenerator(seed=3).records(5) == MedicalRecordGenerator(seed=3).records(5)
        assert MedicalRecordGenerator(seed=3).records(5) != MedicalRecordGenerator(seed=4).records(5)

    def test_patient_ids_are_sequential_and_unique(self):
        records = MedicalRecordGenerator(seed=2, first_patient_id=500).records(10)
        ids = [record["patient_id"] for record in records]
        assert ids == list(range(500, 510))

    def test_mechanism_is_functionally_determined_by_medication(self):
        records = MedicalRecordGenerator(seed=5).records(60, distinct_medications=4)
        mapping = {}
        for record in records:
            existing = mapping.setdefault(record["medication_name"],
                                          record["mechanism_of_action"])
            assert existing == record["mechanism_of_action"]
        assert len(mapping) <= 4

    def test_explicit_patient_and_medication(self):
        record = MedicalRecordGenerator(seed=6).record(patient_id=42, medication="Ibuprofen")
        assert record["patient_id"] == 42
        assert record["medication_name"] == "Ibuprofen"

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MedicalRecordGenerator().records(-1)


class TestUpdateStream:
    def test_events_target_writable_attributes(self, fresh_paper_system):
        generator = UpdateStreamGenerator(fresh_paper_system, seed=3)
        events = generator.stream(12)
        assert len(events) == 12
        for event in events:
            agreement = fresh_paper_system.agreement(event.metadata_id)
            role = agreement.role_of(event.peer)
            for attribute in event.updates:
                assert agreement.can_role_write(role, attribute)

    def test_generated_events_are_accepted_by_the_system(self, fresh_paper_system):
        generator = UpdateStreamGenerator(fresh_paper_system, seed=4)
        for event in generator.stream(5):
            trace = fresh_paper_system.coordinator.update_shared_entry(
                event.peer, event.metadata_id, event.key, event.updates)
            assert trace.succeeded

    def test_explicit_peer_and_attribute(self, fresh_paper_system):
        generator = UpdateStreamGenerator(fresh_paper_system, seed=5)
        event = generator.event_for(DOCTOR_RESEARCHER_TABLE, peer="researcher",
                                    attribute="mechanism_of_action")
        assert event.peer == "researcher"
        assert list(event.updates) == ["mechanism_of_action"]

    def test_peer_without_permission_rejected(self, fresh_paper_system):
        generator = UpdateStreamGenerator(fresh_paper_system, seed=6)
        with pytest.raises(ValueError):
            generator.event_for(DOCTOR_RESEARCHER_TABLE, peer="patient")

    def test_conflict_fraction_validation(self, fresh_paper_system):
        generator = UpdateStreamGenerator(fresh_paper_system, seed=7)
        with pytest.raises(ValueError):
            generator.stream(3, conflict_fraction=1.5)

    def test_conflicting_stream_targets_repeat_tables(self, fresh_paper_system):
        generator = UpdateStreamGenerator(fresh_paper_system, seed=8)
        events = generator.stream(20, conflict_fraction=1.0)
        tables = [event.metadata_id for event in events]
        assert len(set(tables[1:])) == 1  # after the first, always the same table

    def test_event_round_trip_dict(self, fresh_paper_system):
        generator = UpdateStreamGenerator(fresh_paper_system, seed=9)
        event = generator.event_for(PATIENT_DOCTOR_TABLE)
        payload = event.to_dict()
        assert payload["metadata_id"] == PATIENT_DOCTOR_TABLE
        assert payload["updates"] == dict(event.updates)


class TestTopology:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(patients=0)
        with pytest.raises(ValueError):
            TopologySpec(researchers=-1)
        with pytest.raises(ValueError):
            TopologySpec(distinct_medications=0)

    def test_builds_hub_topology(self):
        system = build_topology_system(TopologySpec(patients=3, researchers=2, seed=11))
        assert len(system.peer_names) == 6  # doctor + 3 patients + 2 researchers
        assert len(system.agreement_ids) == 5  # 3 patient shares + 2 researcher shares
        assert system.all_shared_tables_consistent()
        assert system.views_consistent_with_sources()

    def test_updates_flow_in_generated_topology(self):
        system = build_topology_system(TopologySpec(patients=2, researchers=1, seed=13))
        patient_agreements = [mid for mid in system.agreement_ids if mid.startswith("D13")]
        target = patient_agreements[0]
        patient_id = int(target.split(":")[1])
        trace = system.coordinator.update_shared_entry(
            "doctor", target, (patient_id,), {"dosage": "updated by doctor"})
        assert trace.succeeded
        patient_peer = f"patient-{patient_id}"
        assert system.peer(patient_peer).local_table("D1").get(patient_id)[
            "dosage"] == "updated by doctor"
