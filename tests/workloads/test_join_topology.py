"""The join-backed fan-out topology (hospital → doctor → patients).

:func:`repro.workloads.topology.build_join_topology_system` wires the
cascade-heavy workload behind benchmark E17: the hospital shares the
doctor's whole D3 keyed by patient id, and every doctor↔patient agreement
derives its doctor side through a keyed join with the ``medications``
reference table.  These tests pin the topology's shape and run the
full-recompute fingerprint oracle on *every* delta application
(``delta_verify_interval=1``), so a keyed-join translation that diverged
from its lens's full ``get``/``put`` would fail loudly here.
"""

from dataclasses import replace

from repro.config import ConsensusConfig, LedgerConfig, NetworkConfig, SystemConfig
from repro.core.workflow import BatchGroup, EntryEdit
from repro.workloads.topology import (
    HOSPITAL_TABLE_ID,
    JOIN_REFERENCE_TABLE,
    TopologySpec,
    build_join_topology_system,
    guideline_for,
    patients_by_medication,
)

SPEC = TopologySpec(patients=8, researchers=0, distinct_medications=3,
                    first_patient_id=1008)


def _config(**overrides) -> SystemConfig:
    config = SystemConfig(
        ledger=LedgerConfig(
            consensus=ConsensusConfig(kind="poa", block_interval=1.0),
            max_transactions_per_block=16,
            consensus_shards=5,
        ),
        network=NetworkConfig(base_latency=0.002, latency_jitter=0.001),
        parallel_cascades=True,
    )
    return replace(config, **overrides) if overrides else config


class TestJoinTopologyShape:
    def test_doctor_views_are_join_enriched(self):
        system = build_join_topology_system(SPEC, _config())
        doctor = system.peer("doctor")
        assert JOIN_REFERENCE_TABLE in doctor.database.table_names
        d3 = doctor.local_table("D3")
        for patient_id in range(SPEC.first_patient_id,
                                SPEC.first_patient_id + SPEC.patients):
            view = doctor.shared_table(f"D13&D31:{patient_id}")
            row = view.get((patient_id,))
            # The guideline column is pulled from the reference table by the
            # join lens, keyed on the patient's medication.
            assert row["guideline"] == guideline_for(
                d3.get((patient_id,))["medication_name"])

    def test_hospital_shares_whole_doctor_table(self):
        system = build_join_topology_system(SPEC, _config())
        shared = system.peer("hospital").shared_table(HOSPITAL_TABLE_ID)
        assert len(shared) == SPEC.patients
        assert set(shared.schema.column_names) == {
            "patient_id", "medication_name", "mechanism_of_action"}

    def test_patients_by_medication_partitions_everyone(self):
        system = build_join_topology_system(SPEC, _config())
        groups = patients_by_medication(system)
        flattened = sorted(pid for ids in groups.values() for pid in ids)
        assert flattened == list(range(SPEC.first_patient_id,
                                       SPEC.first_patient_id + SPEC.patients))
        assert len(groups) <= SPEC.distinct_medications


class TestJoinDeltaFullRecomputeOracle:
    def test_every_join_leg_passes_the_sampled_oracle(self):
        """Verify every delta application against the full-recompute
        fingerprint oracle: hospital fan-out batches exercise the join's
        forward (``get_delta``) direction at every patient, and patient
        ``clinical_data`` write-backs exercise the backward (``put_delta``)
        direction through the join lens — with zero fallbacks."""
        system = build_join_topology_system(
            SPEC, _config(delta_verify_interval=1))
        coordinator = system.coordinator
        groups = patients_by_medication(system)

        for round_index in range(2):
            for medication, patient_ids in groups.items():
                trace = coordinator.commit_entry_batch([BatchGroup(
                    peer="hospital", metadata_id=HOSPITAL_TABLE_ID,
                    edits=tuple(EntryEdit(
                        op="update", key=(pid,),
                        values={"mechanism_of_action":
                                f"MeA-{medication}-r{round_index}"})
                        for pid in patient_ids))]).traces[0]
                assert trace.succeeded
            for patient_ids in groups.values():
                pid = patient_ids[0]
                trace = coordinator.update_shared_entry(
                    f"patient-{pid}", f"D13&D31:{pid}", (pid,),
                    {"clinical_data": f"CliD-{pid}-r{round_index}"})
                assert trace.succeeded

        verifications = fallbacks = delta_puts = delta_gets = 0
        for name in system.peer_names:
            stats = system.server_app(name).manager.statistics
            verifications += stats["delta_verifications"]
            fallbacks += stats["delta_fallbacks"]
            delta_puts += stats["delta_put_invocations"]
            delta_gets += stats["delta_get_invocations"]
        # The join legs ran on the delta path and each application was
        # checked against the full recompute — none diverged, none fell back.
        assert delta_puts > 0 and delta_gets > 0
        assert verifications > 0
        assert fallbacks == 0
        assert system.all_shared_tables_consistent()
