"""The open-loop multi-tenant traffic generator."""

import pytest

from repro.config import SystemConfig
from repro.gateway.requests import ReadViewRequest, UpdateEntryRequest
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.traffic import (
    TenantProfile,
    TrafficGenerator,
    default_tenant_profiles,
)


@pytest.fixture(scope="module")
def topology_system():
    return build_topology_system(TopologySpec(patients=3, researchers=0),
                                 SystemConfig.private_chain(1.0))


class TestTenantProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantProfile(peer="p", request_rate=0.0)
        with pytest.raises(ValueError):
            TenantProfile(peer="p", read_fraction=1.5)


class TestOpenLoop:
    def test_arrivals_are_sorted_and_bounded(self, topology_system):
        profiles = default_tenant_profiles(topology_system, request_rate=2.0)
        assert len(profiles) == 3
        arrivals = TrafficGenerator(topology_system, seed=5).open_loop(
            profiles, duration=20.0, start_time=100.0)
        assert arrivals
        times = [timed.arrival_time for timed in arrivals]
        assert times == sorted(times)
        assert all(100.0 <= t < 120.0 for t in times)
        assert {timed.tenant for timed in arrivals} == {p.peer for p in profiles}

    def test_deterministic_for_a_seed(self, topology_system):
        profiles = default_tenant_profiles(topology_system, request_rate=1.0)
        first = TrafficGenerator(topology_system, seed=9).open_loop(profiles, 15.0)
        second = TrafficGenerator(topology_system, seed=9).open_loop(profiles, 15.0)
        assert [t.to_dict() for t in first] == [t.to_dict() for t in second]

    def test_read_fraction_shapes_the_mix(self, topology_system):
        profiles = [TenantProfile(peer=p.peer, request_rate=3.0, read_fraction=1.0)
                    for p in default_tenant_profiles(topology_system)]
        arrivals = TrafficGenerator(topology_system, seed=2).open_loop(profiles, 20.0)
        assert all(isinstance(t.request, ReadViewRequest) for t in arrivals)
        writers = [TenantProfile(peer=p.peer, request_rate=3.0, read_fraction=0.0)
                   for p in profiles]
        writes = TrafficGenerator(topology_system, seed=2).open_loop(writers, 20.0)
        assert all(isinstance(t.request, UpdateEntryRequest) for t in writes)
        # Generated writes respect the contract: patients edit clinical_data only.
        assert all(set(t.request.updates) <= {"clinical_data"} for t in writes)

    def test_tenants_only_target_their_own_agreements(self, topology_system):
        profiles = default_tenant_profiles(topology_system, read_fraction=0.0)
        arrivals = TrafficGenerator(topology_system, seed=4).open_loop(profiles, 30.0)
        for timed in arrivals:
            peer_agreements = topology_system.peer(timed.tenant).agreement_ids
            assert timed.request.metadata_id in peer_agreements

    def test_duration_must_be_positive(self, topology_system):
        generator = TrafficGenerator(topology_system)
        with pytest.raises(ValueError):
            generator.open_loop(default_tenant_profiles(topology_system), 0.0)


class TestAsyncReplay:
    def test_replay_open_loop_advances_clock_and_collects_futures(self, topology_system):
        import asyncio

        from repro.workloads.traffic import replay_open_loop

        profiles = default_tenant_profiles(topology_system, request_rate=2.0)
        arrivals = TrafficGenerator(topology_system, seed=9).open_loop(
            profiles, duration=5.0, start_time=1_000.0)

        class FakeClock:
            def __init__(self):
                self.times = []

            def advance_to(self, timestamp):
                self.times.append(timestamp)

        clock = FakeClock()
        submitted = []

        async def scenario():
            loop = asyncio.get_running_loop()

            def submit(timed):
                submitted.append(timed)
                future = loop.create_future()
                future.set_result(timed.tenant)
                return future

            return await replay_open_loop(arrivals, submit, clock)

        futures = asyncio.run(scenario())
        assert len(futures) == len(arrivals) == len(submitted)
        # The clock was advanced to every arrival, in trace order.
        assert clock.times == [timed.arrival_time for timed in arrivals]
        assert submitted == list(arrivals)

    def test_replay_through_async_gateway_end_to_end(self, topology_system):
        import asyncio

        from repro.config import SystemConfig
        from repro.gateway import AsyncSharingGateway, SharingGateway
        from repro.workloads.topology import TopologySpec, build_topology_system
        from repro.workloads.traffic import replay_open_loop

        system = build_topology_system(TopologySpec(patients=2, researchers=0),
                                       SystemConfig.private_chain(1.0))
        profiles = default_tenant_profiles(system, request_rate=2.0,
                                           read_fraction=0.25)
        clock = system.simulator.clock
        arrivals = TrafficGenerator(system, seed=3).open_loop(
            profiles, duration=4.0, start_time=clock.now())
        gateway = SharingGateway(system)
        sessions = {p.peer: gateway.open_session(p.peer) for p in profiles}

        async def scenario():
            async with AsyncSharingGateway(gateway, seal_depth=4,
                                           max_delay=1.0) as front:
                futures = await replay_open_loop(
                    arrivals,
                    lambda timed: front.submit_nowait(sessions[timed.tenant],
                                                      timed.request),
                    clock)
                await front.drain()
                return await asyncio.gather(*futures)

        responses = asyncio.run(asyncio.wait_for(scenario(), timeout=60))
        assert len(responses) == len(arrivals)
        assert all(response.terminal for response in responses)
        assert all(response.ok for response in responses)
        assert system.all_shared_tables_consistent()
