"""The open-loop multi-tenant traffic generator."""

import pytest

from repro.config import SystemConfig
from repro.gateway.requests import ReadViewRequest, UpdateEntryRequest
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.traffic import (
    TenantProfile,
    TrafficGenerator,
    default_tenant_profiles,
)


@pytest.fixture(scope="module")
def topology_system():
    return build_topology_system(TopologySpec(patients=3, researchers=0),
                                 SystemConfig.private_chain(1.0))


class TestTenantProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantProfile(peer="p", request_rate=0.0)
        with pytest.raises(ValueError):
            TenantProfile(peer="p", read_fraction=1.5)


class TestOpenLoop:
    def test_arrivals_are_sorted_and_bounded(self, topology_system):
        profiles = default_tenant_profiles(topology_system, request_rate=2.0)
        assert len(profiles) == 3
        arrivals = TrafficGenerator(topology_system, seed=5).open_loop(
            profiles, duration=20.0, start_time=100.0)
        assert arrivals
        times = [timed.arrival_time for timed in arrivals]
        assert times == sorted(times)
        assert all(100.0 <= t < 120.0 for t in times)
        assert {timed.tenant for timed in arrivals} == {p.peer for p in profiles}

    def test_deterministic_for_a_seed(self, topology_system):
        profiles = default_tenant_profiles(topology_system, request_rate=1.0)
        first = TrafficGenerator(topology_system, seed=9).open_loop(profiles, 15.0)
        second = TrafficGenerator(topology_system, seed=9).open_loop(profiles, 15.0)
        assert [t.to_dict() for t in first] == [t.to_dict() for t in second]

    def test_read_fraction_shapes_the_mix(self, topology_system):
        profiles = [TenantProfile(peer=p.peer, request_rate=3.0, read_fraction=1.0)
                    for p in default_tenant_profiles(topology_system)]
        arrivals = TrafficGenerator(topology_system, seed=2).open_loop(profiles, 20.0)
        assert all(isinstance(t.request, ReadViewRequest) for t in arrivals)
        writers = [TenantProfile(peer=p.peer, request_rate=3.0, read_fraction=0.0)
                   for p in profiles]
        writes = TrafficGenerator(topology_system, seed=2).open_loop(writers, 20.0)
        assert all(isinstance(t.request, UpdateEntryRequest) for t in writes)
        # Generated writes respect the contract: patients edit clinical_data only.
        assert all(set(t.request.updates) <= {"clinical_data"} for t in writes)

    def test_tenants_only_target_their_own_agreements(self, topology_system):
        profiles = default_tenant_profiles(topology_system, read_fraction=0.0)
        arrivals = TrafficGenerator(topology_system, seed=4).open_loop(profiles, 30.0)
        for timed in arrivals:
            peer_agreements = topology_system.peer(timed.tenant).agreement_ids
            assert timed.request.metadata_id in peer_agreements

    def test_duration_must_be_positive(self, topology_system):
        generator = TrafficGenerator(topology_system)
        with pytest.raises(ValueError):
            generator.open_loop(default_tenant_profiles(topology_system), 0.0)
