"""Fault plans and the seeded injector: validation, windows, budgets,
probability determinism, typed raises, and the event log."""

import json

import pytest

from repro.chaos import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NULL_INJECTOR,
)
from repro.errors import (
    ChaosError,
    InjectedDiskError,
    InjectedFault,
    TransientFault,
)
from repro.ledger.clock import SimClock


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault kind"):
            FaultSpec(kind="transport.meteor")

    @pytest.mark.parametrize("bad", [
        dict(kind="transport.drop", start=-1.0),
        dict(kind="transport.drop", start=5.0, end=5.0),
        dict(kind="transport.drop", probability=0.0),
        dict(kind="transport.drop", probability=1.5),
        dict(kind="consensus.slow", param=-0.1),
        dict(kind="transport.drop", max_fires=0),
    ])
    def test_bad_fields_rejected(self, bad):
        with pytest.raises(ChaosError):
            FaultSpec(**bad)

    def test_every_documented_kind_constructs(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind).kind == kind

    def test_window_semantics_are_half_open(self):
        spec = FaultSpec(kind="peer.crash", start=10.0, end=20.0)
        assert not spec.in_window(9.999)
        assert spec.in_window(10.0)
        assert spec.in_window(19.999)
        assert not spec.in_window(20.0)

    def test_target_matching(self):
        spec = FaultSpec(kind="transport.drop", target="node-a")
        assert spec.matches("transport.drop", "node-a", 0.0)
        assert not spec.matches("transport.drop", "node-b", 0.0)
        wildcard = FaultSpec(kind="transport.drop")
        assert wildcard.matches("transport.drop", "node-b", 0.0)


class TestFaultPlanSerialisation:
    def plan(self):
        return FaultPlan(seed=42, specs=(
            FaultSpec(kind="transport.drop", probability=0.25, max_fires=3),
            FaultSpec(kind="peer.crash", target="node-a", start=10.0, end=20.0),
            FaultSpec(kind="consensus.slow", param=0.5),
        ))

    def test_dict_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_round_trip(self):
        plan = self.plan()
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        path.write_text(plan.dumps(), encoding="utf-8")
        assert FaultPlan.load(path) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault plan fields"):
            FaultPlan.from_dict({"seed": 1, "faults": [], "bogus": True})
        with pytest.raises(ChaosError, match="unknown fault spec fields"):
            FaultPlan.from_dict({"faults": [{"kind": "transport.drop",
                                             "blast_radius": 9}]})

    def test_malformed_json_rejected(self):
        with pytest.raises(ChaosError, match="malformed fault plan JSON"):
            FaultPlan.loads("{not json")


class TestInjectorProbes:
    def test_should_respects_window_and_target(self):
        clock = SimClock()
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="transport.drop", target="node-a",
                      start=5.0, end=10.0),)), clock)
        assert not injector.should("transport.drop", "node-a")  # before window
        clock.advance_to(5.0)
        assert not injector.should("transport.drop", "node-b")  # wrong target
        assert injector.should("transport.drop", "node-a")
        clock.advance_to(10.0)
        assert not injector.should("transport.drop", "node-a")  # window closed

    def test_max_fires_disarms_the_spec(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="transport.drop", max_fires=2),)), SimClock())
        fired = [injector.should("transport.drop") for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_probability_stream_is_seed_deterministic(self):
        def outcomes(seed):
            injector = FaultInjector(FaultPlan(seed=seed, specs=(
                FaultSpec(kind="transport.drop", probability=0.5),)), SimClock())
            return [injector.should("transport.drop") for _ in range(64)]

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)
        assert any(outcomes(7)) and not all(outcomes(7))

    def test_delay_returns_param_and_zero_when_unmatched(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="consensus.slow", param=0.75),)), SimClock())
        assert injector.delay("consensus.slow") == 0.75
        assert injector.delay("transport.delay") == 0.0

    @pytest.mark.parametrize("kind,exc_type", [
        ("wal.append", InjectedDiskError),
        ("wal.fsync", InjectedDiskError),
        ("consensus.fail", TransientFault),
        ("commit.fail", InjectedFault),
        ("contract.fail", InjectedFault),
    ])
    def test_maybe_fail_raises_the_typed_exception(self, kind, exc_type):
        injector = FaultInjector(FaultPlan(specs=(FaultSpec(kind=kind),)),
                                 SimClock())
        with pytest.raises(exc_type, match="injected"):
            injector.maybe_fail(kind)

    def test_disk_faults_are_oserrors(self):
        # The WAL path (and the retry policy) treat disk faults as OSError.
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="wal.fsync"),)), SimClock())
        with pytest.raises(OSError):
            injector.maybe_fail("wal.fsync")

    def test_active_consumes_no_randomness_or_budget(self):
        clock = SimClock()
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="peer.crash", target="node-a", start=0.0, end=10.0,
                      max_fires=1),
            FaultSpec(kind="transport.drop", probability=0.5),)), clock)
        # Polling the window many times must not perturb the drop stream.
        baseline = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="transport.drop", probability=0.5),)), SimClock())
        for _ in range(50):
            assert injector.active("peer.crash", "node-a")
        drops = [injector.should("transport.drop") for _ in range(32)]
        expected = [baseline.should("transport.drop") for _ in range(32)]
        assert drops == expected
        clock.advance_to(10.0)
        assert not injector.active("peer.crash", "node-a")


class TestEventLog:
    def test_events_record_every_fire_with_outcomes(self):
        clock = SimClock()
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="transport.drop", target="node-a", max_fires=1),
            FaultSpec(kind="consensus.slow", param=0.5, max_fires=1),
            FaultSpec(kind="consensus.fail", max_fires=1),
            FaultSpec(kind="peer.crash", target="node-a", end=5.0),)), clock)
        assert injector.should("transport.drop", "node-a")
        clock.advance(1.0)
        assert injector.delay("consensus.slow") == 0.5
        with pytest.raises(TransientFault):
            injector.maybe_fail("consensus.fail")
        assert injector.active("peer.crash", "node-a")
        outcomes = [event["outcome"] for event in injector.events]
        assert outcomes == ["fired", "delayed", "raised", "window-open"]
        assert [event["seq"] for event in injector.events] == [1, 2, 3, 4]
        assert injector.events[0]["target"] == "node-a"
        assert injector.events[1]["time"] == 1.0
        assert injector.events_by_kind() == {
            "consensus.fail": 1, "consensus.slow": 1,
            "peer.crash": 1, "transport.drop": 1}

    def test_window_open_edge_is_logged_once(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="peer.crash", target="node-a", end=5.0),)),
            SimClock())
        for _ in range(10):
            injector.active("peer.crash", "node-a")
        assert len(injector.events) == 1

    def test_write_events_exports_jsonl(self, tmp_path):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="transport.drop", max_fires=3),)), SimClock())
        for _ in range(3):
            injector.should("transport.drop")
        path = tmp_path / "artifacts" / "events.jsonl"
        assert injector.write_events(path) == 3
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 3
        for seq, line in enumerate(lines, start=1):
            event = json.loads(line)
            assert event["seq"] == seq
            assert event["kind"] == "transport.drop"


class TestNullInjector:
    def test_null_injector_is_inert(self):
        assert not NULL_INJECTOR.should("transport.drop", "anywhere")
        assert NULL_INJECTOR.delay("consensus.slow") == 0.0
        NULL_INJECTOR.maybe_fail("commit.fail")  # never raises
        assert not NULL_INJECTOR.active("peer.crash", "node-a")
        assert NULL_INJECTOR.events == ()
