"""Retry policy and the sim-clock retrier: backoff curve, typed
retryable/terminal split, exhaustion, and deterministic timelines."""

import pytest

from repro.chaos import Retrier, RetryPolicy
from repro.config import ResilienceConfig
from repro.errors import CircuitOpenError, InjectedDiskError, TransientFault
from repro.ledger.clock import SimClock


class TestRetryPolicy:
    @pytest.mark.parametrize("bad", [
        dict(max_attempts=0),
        dict(base_delay=-0.1),
        dict(max_delay=-1.0),
        dict(multiplier=0.5),
        dict(jitter=1.5),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_backoff_curve_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(9) == pytest.approx(0.5)

    def test_jitter_scales_within_bounds_deterministically(self):
        import random
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                             jitter=0.5)
        draws = [policy.backoff(1, random.Random(3)) for _ in range(5)]
        assert all(draw == draws[0] for draw in draws)  # same seed, same draw
        assert 1.0 <= draws[0] <= 1.5

    def test_typed_retryable_split(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientFault("x"))
        assert policy.is_retryable(OSError("disk"))
        assert policy.is_retryable(InjectedDiskError("disk"))  # is an OSError
        assert not policy.is_retryable(ValueError("x"))
        # Breaker rejections must never be retried into an open breaker.
        assert not policy.is_retryable(CircuitOpenError("open"))

    def test_from_config_uses_resilience_fields(self):
        resilience = ResilienceConfig(retry_max_attempts=7,
                                      retry_base_delay=0.01,
                                      retry_multiplier=3.0,
                                      retry_max_delay=9.0,
                                      retry_jitter=0.25)
        policy = RetryPolicy.from_config(resilience)
        assert policy.max_attempts == 7
        assert policy.base_delay == 0.01
        assert policy.multiplier == 3.0
        assert policy.max_delay == 9.0
        assert policy.jitter == 0.25


class FlakyCall:
    """Fails with ``exc`` the first ``failures`` times, then returns a tag."""

    def __init__(self, failures, exc=TransientFault):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"injected failure {self.calls}")
        return "landed"


class TestRetrier:
    def test_success_passes_straight_through(self):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(), clock)
        assert retrier.call(lambda: "value") == "value"
        assert retrier.retries == 0
        assert clock.now() == 0.0

    def test_transient_failures_are_absorbed_with_clock_backoff(self):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(max_attempts=4), clock, seed=11)
        flaky = FlakyCall(failures=2)
        assert retrier.call(flaky, label="consensus.round") == "landed"
        assert flaky.calls == 3
        assert retrier.retries == 2
        assert clock.now() > 0.0  # backoffs advanced simulated time
        assert [entry[1] for entry in retrier.timeline] == ["consensus.round"] * 2
        assert [entry[2] for entry in retrier.timeline] == [1, 2]

    def test_disk_errors_are_retryable(self):
        retrier = Retrier(RetryPolicy(), SimClock())
        flaky = FlakyCall(failures=1, exc=InjectedDiskError)
        assert retrier.call(flaky) == "landed"

    def test_terminal_errors_re_raise_immediately(self):
        retrier = Retrier(RetryPolicy(), SimClock())
        flaky = FlakyCall(failures=5, exc=ValueError)
        with pytest.raises(ValueError):
            retrier.call(flaky)
        assert flaky.calls == 1
        assert retrier.retries == 0

    def test_exhaustion_re_raises_the_last_failure(self):
        retrier = Retrier(RetryPolicy(max_attempts=3), SimClock())
        flaky = FlakyCall(failures=99)
        with pytest.raises(TransientFault, match="injected failure 3"):
            retrier.call(flaky)
        assert flaky.calls == 3
        assert retrier.retries == 2
        assert retrier.exhausted == 1

    def test_identical_seeds_yield_identical_timelines(self):
        def timeline(seed):
            clock = SimClock()
            retrier = Retrier(RetryPolicy(max_attempts=5), clock, seed=seed)
            with pytest.raises(TransientFault):
                retrier.call(FlakyCall(failures=99), label="round")
            return tuple(retrier.timeline), clock.now()

        assert timeline(11) == timeline(11)
        assert timeline(11) != timeline(12)  # jitter differs with the seed

    def test_statistics(self):
        retrier = Retrier(RetryPolicy(max_attempts=4), SimClock(), name="wal:a")
        retrier.call(FlakyCall(failures=2))
        stats = retrier.statistics()
        assert stats == {"name": "wal:a", "attempts": 3, "retries": 2,
                         "exhausted": 0}

    def test_registry_counters(self):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        retrier = Retrier(RetryPolicy(max_attempts=2), SimClock(),
                          name="consensus", registry=registry)
        with pytest.raises(TransientFault):
            retrier.call(FlakyCall(failures=99))
        counters = registry.snapshot()["counters"]
        assert counters['chaos_retries{scope="consensus"}'] == 1
        assert counters['chaos_retries_exhausted{scope="consensus"}'] == 1
