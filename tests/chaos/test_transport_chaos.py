"""Transport-level chaos: drops become retransmissions (no silent loss),
crash windows park-and-replay in order, and a seeded drop schedule on the
full pipeline still commits every submitted transaction."""

import pytest

from repro.chaos import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.config import NetworkConfig, SystemConfig
from repro.ledger.clock import SimClock
from repro.network.transport import SimTransport
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.updates import UpdateStreamGenerator


def make_transport(clock=None, plan=None, retry=True):
    clock = clock or SimClock()
    transport = SimTransport(clock, NetworkConfig(base_latency=0.1,
                                                  latency_jitter=0.0, seed=1))
    if plan is not None:
        transport.configure_chaos(
            injector=FaultInjector(plan, clock),
            retry_policy=RetryPolicy(jitter=0.0) if retry else None)
    return transport, clock


class TestRetransmission:
    def test_dropped_message_is_retransmitted_not_lost(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="transport.drop", target="bob", max_fires=1),))
        transport, _ = make_transport(plan=plan)
        received = []
        transport.register("alice", received.append)
        transport.register("bob", received.append)
        transport.send("alice", "bob", "ping", {"n": 1})
        transport.flush()
        assert [message.payload["n"] for message in received] == [1]
        stats = transport.statistics
        assert stats["dropped"] == 1
        assert stats["retransmits"] == 1
        assert stats["lost"] == 0

    def test_without_retry_policy_drops_stay_silent(self):
        # The seed's behaviour, kept for ablation: no policy, no retransmit.
        plan = FaultPlan(specs=(
            FaultSpec(kind="transport.drop", target="bob", max_fires=1),))
        transport, _ = make_transport(plan=plan, retry=False)
        received = []
        transport.register("alice", received.append)
        transport.register("bob", received.append)
        transport.send("alice", "bob", "ping")
        transport.flush()
        assert received == []
        stats = transport.statistics
        assert stats["dropped"] == 1
        assert stats["retransmits"] == 0

    def test_attempt_budget_exhaustion_loses_the_message(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="transport.drop", target="bob"),))  # always drops
        transport, _ = make_transport(plan=plan)
        received = []
        transport.register("alice", received.append)
        transport.register("bob", received.append)
        transport.send("alice", "bob", "ping")
        transport.flush()
        assert received == []
        stats = transport.statistics
        assert stats["lost"] == 1
        # max_attempts=4: the original send plus three retransmissions.
        assert stats["retransmits"] == 3

    def test_retransmission_backoff_advances_the_clock(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="transport.drop", target="bob", max_fires=1),))
        transport, clock = make_transport(plan=plan)
        transport.register("alice", lambda m: None)
        transport.register("bob", lambda m: None)
        transport.send("alice", "bob", "ping")
        transport.flush()
        # The drop fires before any delivery latency is paid; the clock then
        # carries the retransmission backoff plus the redelivery latency.
        assert clock.now() == pytest.approx(0.05 + 0.1)


class TestCrashWindows:
    def plan(self):
        return FaultPlan(specs=(
            FaultSpec(kind="peer.crash", target="bob", start=0.0, end=50.0),))

    def test_messages_park_during_window_and_replay_in_order(self):
        transport, clock = make_transport(plan=self.plan())
        received = []
        transport.register("alice", received.append)
        transport.register("bob", received.append)
        for n in range(3):
            transport.send("alice", "bob", "seq", {"n": n})
        transport.flush()
        assert received == []
        assert transport.statistics["parked"] == 3
        clock.advance_to(50.0)
        transport.flush()
        assert [message.payload["n"] for message in received] == [0, 1, 2]
        assert transport.statistics["parked"] == 0

    def test_replayed_messages_skip_fault_probes(self):
        # Replay models restart catch-up from a reliable log: a drop spec
        # armed at replay time must not touch the parked backlog.
        plan = FaultPlan(specs=(
            FaultSpec(kind="peer.crash", target="bob", start=0.0, end=10.0),
            FaultSpec(kind="transport.drop", target="bob", start=10.0),))
        transport, clock = make_transport(plan=plan)
        received = []
        transport.register("alice", received.append)
        transport.register("bob", received.append)
        transport.send("alice", "bob", "seq", {"n": 0})
        transport.flush()
        assert transport.statistics["parked"] == 1
        clock.advance_to(10.0)
        transport.flush()
        assert [message.payload["n"] for message in received] == [0]
        assert transport.statistics["lost"] == 0

    def test_other_recipients_deliver_during_the_window(self):
        transport, _ = make_transport(plan=self.plan())
        received = {"bob": [], "carol": []}
        transport.register("alice", lambda m: None)
        transport.register("bob", received["bob"].append)
        transport.register("carol", received["carol"].append)
        transport.send("alice", "bob", "ping")
        transport.send("alice", "carol", "ping")
        transport.flush()
        assert received["bob"] == []
        assert len(received["carol"]) == 1


class TestNoSilentLossEndToEnd:
    def test_seeded_drop_schedule_still_commits_every_transaction(self):
        """The satellite regression: with retransmission wired, a background
        drop schedule loses nothing — every submitted update commits on
        every replica and the relational outcome matches a drop-free run."""

        from repro.gateway import SharingGateway, UpdateEntryRequest

        def run(drops):
            system = build_topology_system(
                TopologySpec(patients=3, researchers=0, seed=5),
                SystemConfig.private_chain(1.0))
            if drops:
                plan = FaultPlan(seed=13, specs=(
                    FaultSpec(kind="transport.drop", probability=0.15,
                              max_fires=20),))
                system.attach_chaos(FaultInjector(plan, system.simulator.clock),
                                    retry_policy=RetryPolicy())
            gateway = SharingGateway(system, max_batch_size=8)
            updates = UpdateStreamGenerator(system, seed=5)
            names = sorted(peer.name for peer in system.peers
                           if peer.role == "Patient")
            sessions = {name: gateway.open_session(name) for name in names}
            responses = []
            for _round in range(6):
                for name in names:
                    metadata_id = system.peer(name).agreement_ids[0]
                    event = updates.event_for(metadata_id, peer=name)
                    responses.append(gateway.submit(
                        sessions[name],
                        UpdateEntryRequest(metadata_id=metadata_id,
                                           key=event.key,
                                           updates=event.updates)))
                gateway.commit_once()
                system.simulator.clock.advance(1.0)
            gateway.drain()
            system.simulator.transport.flush()
            gateway.close()
            return system, responses

        faulted, responses = run(drops=True)
        oracle, _ = run(drops=False)
        assert all(response.ok for response in responses)
        stats = faulted.simulator.transport.statistics
        assert stats["dropped"] > 0, "the drop schedule never fired"
        assert stats["retransmits"] > 0
        assert stats["lost"] == 0, "a dropped message was silently lost"
        # Every submitted transaction is on every replica's chain.
        lengths = {node.name: len(node.chain)
                   for node in faulted.simulator.nodes}
        assert len(set(lengths.values())) == 1
        assert lengths == {node.name: len(node.chain)
                           for node in oracle.simulator.nodes}
        assert faulted.all_shared_tables_consistent()
        assert faulted.state_fingerprints() == oracle.state_fingerprints()
