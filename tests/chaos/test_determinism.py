"""Chaos determinism: identical seeds must replay identical fault schedules,
retry timelines, breaker transitions, shed decisions — and byte-identical
trace exports, reusing the PR 6 export-determinism harness."""

import json

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.cli import default_soak_plan, run_chaos_soak, run_gateway_loadtest
from repro.config import SystemConfig
from repro.gateway import SharingGateway, UpdateEntryRequest
from repro.workloads.topology import TopologySpec, build_topology_system

pytestmark = [pytest.mark.integration]


def update_for(metadata_id, tag):
    patient_id = int(metadata_id.split(":")[1])
    return UpdateEntryRequest(metadata_id=metadata_id, key=(patient_id,),
                              updates={"clinical_data": tag})


class TestSoakDeterminism:
    def test_identical_seeds_replay_identical_soaks(self):
        first = run_chaos_soak(tenants=3, rounds=4, seed=23)
        second = run_chaos_soak(tenants=3, rounds=4, seed=23)
        assert first["fault_events"] == second["fault_events"]
        assert first["events_by_kind"] == second["events_by_kind"]
        assert first["fingerprints"] == second["fingerprints"]
        assert first["chain_lengths"] == second["chain_lengths"]
        assert first["statuses"] == second["statuses"]
        assert first["transport"] == second["transport"]
        assert first["simulated_seconds"] == second["simulated_seconds"]

    def test_plan_seed_changes_the_fault_schedule(self):
        base = run_chaos_soak(tenants=3, rounds=4, seed=23)
        other_plan = default_soak_plan(tenants=3, rounds=4, seed=99)
        other = run_chaos_soak(tenants=3, rounds=4, seed=23, plan=other_plan)
        # Same workload seed, different fault seed: the schedules differ but
        # the relational outcome still converges to the same oracle state.
        assert base["events_by_kind"] != other["events_by_kind"]
        oracle = run_chaos_soak(tenants=3, rounds=4, seed=23, inject=False)
        assert base["fingerprints"] == oracle["fingerprints"]
        assert other["fingerprints"] == oracle["fingerprints"]


class TestComponentTimelineDeterminism:
    def consensus_run(self):
        system = build_topology_system(
            TopologySpec(patients=2, researchers=0, seed=7),
            SystemConfig.private_chain(1.0))
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(kind="consensus.fail", probability=0.5, max_fires=3),))
        system.attach_chaos(FaultInjector(plan, system.simulator.clock),
                            retry_policy=RetryPolicy())
        gateway = SharingGateway(system)
        tables = {f"patient-{mid.split(':')[1]}": mid
                  for mid in system.agreement_ids}
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        for _round in range(4):
            for peer, metadata_id in sorted(tables.items()):
                gateway.submit(sessions[peer],
                               update_for(metadata_id, f"r{_round}"))
            gateway.commit_once()
            system.simulator.clock.advance(1.0)
        gateway.drain()
        return system, gateway

    def test_retry_timelines_are_replayable(self):
        first, _ = self.consensus_run()
        second, _ = self.consensus_run()
        timeline = first.coordinator.retrier.timeline
        assert timeline, "the plan never forced a retry"
        assert timeline == second.coordinator.retrier.timeline

    def breaker_run(self):
        system = build_topology_system(
            TopologySpec(patients=2, researchers=0, seed=7),
            SystemConfig.private_chain(1.0))
        # Terminal (non-retryable) commit faults: three blown batches trip
        # the commit breaker, and after the reset timeout a probe closes it.
        plan = FaultPlan(specs=(
            FaultSpec(kind="commit.fail", max_fires=3),))
        system.attach_chaos(FaultInjector(plan, system.simulator.clock))
        gateway = SharingGateway(system)
        tables = {f"patient-{mid.split(':')[1]}": mid
                  for mid in system.agreement_ids}
        sessions = {peer: gateway.open_session(peer) for peer in tables}
        peer, metadata_id = sorted(tables.items())[0]
        for index in range(3):
            response = gateway.submit(sessions[peer],
                                      update_for(metadata_id, f"f{index}"))
            assert response is not None
            try:
                gateway.commit_once()
            except Exception:
                pass
        system.simulator.clock.advance(10.001)
        probe = gateway.submit(sessions[peer], update_for(metadata_id, "probe"))
        gateway.commit_once()
        assert probe.ok
        return gateway.breakers.peek("commit").transitions

    def test_breaker_transitions_are_replayable(self):
        first = self.breaker_run()
        assert [(old, new) for _, old, new in first] == [
            ("closed", "open"), ("open", "half-open"), ("half-open", "closed")]
        assert first == self.breaker_run()

    def shed_run(self):
        result = run_gateway_loadtest(tenants=3, duration=6.0, rate=2.0,
                                      read_fraction=0.0, interval=1.0,
                                      batch_size=4, seed=23,
                                      latency_target=2.0)
        resilience = result["metrics"]["resilience"]
        return (result["metrics"]["requests"]["by_status"],
                resilience["shed_by_reason"], resilience["shedder"])

    def test_shed_decisions_are_replayable(self):
        first = self.shed_run()
        statuses, by_reason, shedder = first
        assert statuses.get("shed", 0) > 0, "the overload never shed"
        assert by_reason["latency"] == statuses["shed"]
        assert first == self.shed_run()


class TestExportDeterminism:
    """The PR 6 trace-determinism harness, now with a fault plan attached."""

    def traced(self, tmp_path, tag, plan_seed=7):
        plan = default_soak_plan(tenants=3, rounds=4, seed=plan_seed).to_dict()
        out = tmp_path / f"trace-{tag}.jsonl"
        events = tmp_path / f"events-{tag}.jsonl"
        result = run_gateway_loadtest(
            tenants=3, duration=8.0, seed=23, interval=1.0,
            state_dir=str(tmp_path / f"state-{tag}"),
            trace=True, trace_out=str(out),
            chaos=plan, chaos_events_out=str(events))
        return result, out, events

    def test_identical_seeds_export_byte_identical_traces_under_chaos(
            self, tmp_path):
        first_result, first, first_events = self.traced(tmp_path, "a")
        second_result, second, second_events = self.traced(tmp_path, "b")
        assert first_result["chaos"]["fault_events"] > 0
        first_bytes = first.read_bytes()
        assert first_bytes
        assert first_bytes == second.read_bytes()
        assert first_events.read_bytes() == second_events.read_bytes()
        assert first_result["chaos"]["events_by_kind"] == \
            second_result["chaos"]["events_by_kind"]

    def test_fault_seed_changes_the_trace(self, tmp_path):
        _, first, first_events = self.traced(tmp_path, "a")
        _, other, other_events = self.traced(tmp_path, "c", plan_seed=8)
        assert first_events.read_bytes() != other_events.read_bytes()
        assert first.read_bytes() != other.read_bytes()

    def test_event_log_round_trips_as_json(self, tmp_path):
        _, _, events = self.traced(tmp_path, "a")
        lines = events.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert {"seq", "time", "kind", "target", "outcome"} <= set(event)
