"""Circuit breakers on the sim clock: state machine, probe budget, typed
guard, timestamped transitions, and the lazy board with registry gauges."""

import pytest

from repro.chaos import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.errors import CircuitOpenError
from repro.ledger.clock import SimClock


def tripped(clock, threshold=3, **kwargs):
    breaker = CircuitBreaker("dep", clock, failure_threshold=threshold, **kwargs)
    for _ in range(threshold):
        breaker.record_failure()
    return breaker


class TestStateMachine:
    @pytest.mark.parametrize("bad", [
        dict(failure_threshold=0),
        dict(reset_timeout=0.0),
        dict(half_open_probes=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            CircuitBreaker("dep", SimClock(), **bad)

    def test_trips_only_on_consecutive_failures(self):
        breaker = CircuitBreaker("dep", SimClock(), failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()  # resets the streak
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN

    def test_open_rejects_until_reset_timeout(self):
        clock = SimClock()
        breaker = tripped(clock, reset_timeout=10.0)
        assert not breaker.allow()
        assert breaker.rejections == 1
        clock.advance(9.999)
        assert not breaker.allow()
        clock.advance(0.001)
        assert breaker.state == STATE_HALF_OPEN  # expired window reads half-open
        assert breaker.allow()  # the probe

    def test_half_open_probe_budget(self):
        clock = SimClock()
        breaker = tripped(clock, reset_timeout=1.0, half_open_probes=2)
        clock.advance(1.0)
        assert breaker.allow() and breaker.allow()  # two probes
        assert not breaker.allow()  # budget spent, probes not reported back

    def test_probe_success_closes(self):
        clock = SimClock()
        breaker = tripped(clock, reset_timeout=1.0)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = SimClock()
        breaker = tripped(clock, reset_timeout=1.0)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        # The re-opened window restarts the reset timer from now.
        clock.advance(1.0)
        assert breaker.allow()

    def test_guard_raises_typed_error(self):
        clock = SimClock()
        breaker = tripped(clock)
        with pytest.raises(CircuitOpenError, match="'dep'"):
            breaker.guard()
        breaker2 = CircuitBreaker("ok", clock)
        breaker2.guard()  # closed: no raise

    def test_transitions_are_timestamped(self):
        clock = SimClock()
        breaker = tripped(clock, reset_timeout=2.0)
        clock.advance(2.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.transitions == [
            (0.0, STATE_CLOSED, STATE_OPEN),
            (2.0, STATE_OPEN, STATE_HALF_OPEN),
            (2.0, STATE_HALF_OPEN, STATE_CLOSED),
        ]

    def test_statistics(self):
        breaker = tripped(SimClock())
        breaker.allow()
        stats = breaker.statistics()
        assert stats["state"] == STATE_OPEN
        assert stats["rejections"] == 1
        assert stats["transitions"] == 1


class TestBreakerBoard:
    def test_lazy_get_and_peek(self):
        board = BreakerBoard(SimClock())
        assert board.peek("tenant:alice") is None
        breaker = board.get("tenant:alice")
        assert board.peek("tenant:alice") is breaker
        assert board.get("tenant:alice") is breaker

    def test_record_and_states(self):
        board = BreakerBoard(SimClock(), failure_threshold=2)
        board.record("lane:0", True)
        for _ in range(2):
            board.record("lane:1", False)
        assert board.states() == {"lane:0": STATE_CLOSED, "lane:1": STATE_OPEN}
        assert not board.allow("lane:1")
        assert board.allow("lane:0")

    def test_registry_gauges_track_state_codes(self):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        board = BreakerBoard(SimClock(), failure_threshold=1, registry=registry)
        board.record("commit", False)
        board.record("lane:0", True)
        gauges = registry.snapshot()["gauges"]
        assert gauges['circuit_breaker_state{breaker="commit"}'] == 1
        assert gauges['circuit_breaker_state{breaker="lane:0"}'] == 0

    def test_board_statistics(self):
        board = BreakerBoard(SimClock(), failure_threshold=1)
        board.record("commit", False)
        stats = board.statistics()
        assert stats["commit"]["state"] == STATE_OPEN
