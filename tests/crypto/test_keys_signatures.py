"""Tests for key pairs and Schnorr signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import KeyPair, address_from_public_key, generate_keypair
from repro.crypto.signatures import Signature, sign, verify


class TestKeyPairs:
    def test_deterministic_from_seed(self):
        assert generate_keypair(seed=7) == generate_keypair(seed=7)

    def test_different_seeds_differ(self):
        assert generate_keypair(seed=1) != generate_keypair(seed=2)

    def test_address_format(self):
        keypair = generate_keypair(seed=3)
        assert keypair.address.startswith("0x")
        assert len(keypair.address) == 42

    def test_address_depends_on_public_key(self):
        a = generate_keypair(seed=4)
        b = generate_keypair(seed=5)
        assert a.address != b.address
        assert a.address == address_from_public_key(a.public_key)

    def test_to_dict_excludes_private_key(self):
        payload = generate_keypair(seed=6).to_dict()
        assert "private_key" not in payload
        assert set(payload) == {"public_key", "address"}


class TestSignatures:
    def test_sign_and_verify(self):
        keypair = generate_keypair(seed=11)
        payload = {"action": "update", "table": "D23"}
        signature = sign(keypair, payload)
        assert verify(keypair.public_key, payload, signature)

    def test_signature_rejects_modified_payload(self):
        keypair = generate_keypair(seed=12)
        signature = sign(keypair, {"amount": 1})
        assert not verify(keypair.public_key, {"amount": 2}, signature)

    def test_signature_rejects_wrong_key(self):
        alice = generate_keypair(seed=13)
        mallory = generate_keypair(seed=14)
        signature = sign(alice, {"x": 1})
        assert not verify(mallory.public_key, {"x": 1}, signature)

    def test_signing_is_deterministic(self):
        keypair = generate_keypair(seed=15)
        assert sign(keypair, {"x": 1}) == sign(keypair, {"x": 1})

    def test_signature_round_trips_through_dict(self):
        keypair = generate_keypair(seed=16)
        signature = sign(keypair, {"x": 1})
        restored = Signature.from_dict(signature.to_dict())
        assert restored == signature
        assert verify(keypair.public_key, {"x": 1}, restored)

    @given(st.integers(min_value=1, max_value=10_000),
           st.dictionaries(st.text(min_size=1, max_size=5),
                           st.integers(min_value=-1000, max_value=1000),
                           max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_property_sign_verify_roundtrip(self, seed, payload):
        keypair = generate_keypair(seed=seed)
        assert verify(keypair.public_key, payload, sign(keypair, payload))
