"""Tests for Merkle trees and proofs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import hash_payload
from repro.crypto.merkle import EMPTY_ROOT, MerkleProof, MerkleTree


def _leaves(count):
    return [hash_payload({"tx": i}) for i in range(count)]


class TestMerkleTree:
    def test_empty_tree_root(self):
        assert MerkleTree([]).root == EMPTY_ROOT

    def test_single_leaf_root_is_leaf(self):
        leaf = hash_payload({"tx": 0})
        assert MerkleTree([leaf]).root == leaf

    def test_root_changes_with_leaves(self):
        assert MerkleTree(_leaves(3)).root != MerkleTree(_leaves(4)).root

    def test_root_changes_with_order(self):
        leaves = _leaves(4)
        assert MerkleTree(leaves).root != MerkleTree(list(reversed(leaves))).root

    def test_root_of_shortcut(self):
        leaves = _leaves(5)
        assert MerkleTree.root_of(leaves) == MerkleTree(leaves).root

    def test_len(self):
        assert len(MerkleTree(_leaves(7))) == 7

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 8, 13])
    def test_proofs_verify_for_every_leaf(self, count):
        leaves = _leaves(count)
        tree = MerkleTree(leaves)
        for index in range(count):
            proof = tree.proof(index)
            assert proof.verify(tree.root)

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree(_leaves(6))
        proof = tree.proof(2)
        other_root = MerkleTree(_leaves(7)).root
        assert not proof.verify(other_root)

    def test_tampered_leaf_fails(self):
        tree = MerkleTree(_leaves(6))
        proof = tree.proof(1)
        tampered = MerkleProof(leaf=hash_payload({"tx": 999}), index=1, path=proof.path)
        assert not tampered.verify(tree.root)

    def test_proof_out_of_range(self):
        tree = MerkleTree(_leaves(3))
        with pytest.raises(IndexError):
            tree.proof(3)

    def test_proof_on_empty_tree(self):
        with pytest.raises(IndexError):
            MerkleTree([]).proof(0)


class TestMerkleProperties:
    @given(st.integers(min_value=1, max_value=40), st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_leaf_membership(self, count, data):
        leaves = _leaves(count)
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=count - 1))
        assert tree.proof(index).verify(tree.root)

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=20, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_root_deterministic_for_any_leaves(self, raw):
        leaves = [hash_payload(item) for item in raw]
        assert MerkleTree(leaves).root == MerkleTree(leaves).root
