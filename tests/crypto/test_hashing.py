"""Tests for canonical hashing."""

import pytest

from repro.crypto.hashing import canonical_json, hash_pair, hash_payload, sha256_hex, short_hash


class TestCanonicalJson:
    def test_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_no_whitespace(self):
        assert " " not in canonical_json({"a": [1, 2, 3], "b": {"c": 4}})

    def test_sets_are_sorted(self):
        assert canonical_json({"s": {3, 1, 2}}) == '{"s":[1,2,3]}'

    def test_bytes_become_hex(self):
        assert canonical_json({"b": b"\x01\x02"}) == '{"b":"0102"}'

    def test_objects_with_to_dict(self):
        class Thing:
            def to_dict(self):
                return {"x": 1}

        assert canonical_json({"t": Thing()}) == '{"t":{"x":1}}'

    def test_unserialisable_raises(self):
        with pytest.raises(TypeError):
            canonical_json({"f": object()})


class TestHashPayload:
    def test_deterministic(self):
        assert hash_payload({"a": 1}) == hash_payload({"a": 1})

    def test_key_order_irrelevant(self):
        assert hash_payload({"a": 1, "b": 2}) == hash_payload({"b": 2, "a": 1})

    def test_different_values_differ(self):
        assert hash_payload({"a": 1}) != hash_payload({"a": 2})

    def test_is_hex_sha256(self):
        digest = hash_payload([1, 2, 3])
        assert len(digest) == 64
        int(digest, 16)  # must parse as hex

    def test_nested_structures(self):
        payload = {"rows": [{"k": i, "v": [i, i + 1]} for i in range(5)]}
        assert hash_payload(payload) == hash_payload(payload)


class TestHelpers:
    def test_sha256_hex_known_value(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_hash_pair_not_commutative(self):
        assert hash_pair("ab", "cd") != hash_pair("cd", "ab")

    def test_short_hash_length(self):
        assert len(short_hash({"a": 1}, length=8)) == 8

    def test_short_hash_invalid_length(self):
        with pytest.raises(ValueError):
            short_hash({"a": 1}, length=0)
