"""Tracer thread-safety under the worker-pool barrier-race harness.

The same commit/read interleaving the gateway race tests hammer, with a
tracer attached: worker threads finish commit spans while reader threads
finish cache/read spans concurrently.  Afterwards the recorded span set must
be structurally sound — unique ids, resolvable parent links, children
contained in their parents on the simulated timeline.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import SystemConfig
from repro.gateway import (
    GatewayWorkerPool,
    ReadViewRequest,
    STATUS_OK,
    SharingGateway,
    UpdateEntryRequest,
)
from repro.obs import Tracer
from repro.workloads.topology import TopologySpec, build_topology_system

pytestmark = [pytest.mark.slow]

ROUNDS = 10
READERS = 3


def build_system(patients=2):
    return build_topology_system(TopologySpec(patients=patients, researchers=0),
                                 SystemConfig.private_chain(1.0))


def tenant_tables(system):
    return {f"patient-{mid.split(':')[1]}": mid for mid in system.agreement_ids}


class TestTracerUnderRaces:
    def test_concurrent_spans_stay_structurally_sound(self):
        system = build_system(patients=2)
        tracer = Tracer(system.simulator.clock)
        gateway = SharingGateway(system, max_batch_size=4, tracer=tracer)
        tables = tenant_tables(system)
        doctor = gateway.open_session("doctor")
        reader_sessions = [gateway.open_session("doctor") for _ in range(READERS)]
        barrier = threading.Barrier(READERS + 1)
        writes_done = threading.Event()
        reader_errors = []

        def read_loop(session):
            try:
                barrier.wait(timeout=30)
                while True:
                    for metadata_id in tables.values():
                        response = gateway.submit(session,
                                                  ReadViewRequest(metadata_id))
                        assert response.status == STATUS_OK
                    if writes_done.is_set() and gateway.outstanding_writes == 0:
                        return
            except Exception as exc:  # noqa: BLE001 - surfaced in the assert
                reader_errors.append(f"{type(exc).__name__}: {exc}")

        readers = [threading.Thread(target=read_loop, args=(session,),
                                    daemon=True)
                   for session in reader_sessions]
        responses = []
        with GatewayWorkerPool(gateway, workers=2) as pool:
            for thread in readers:
                thread.start()
            barrier.wait(timeout=30)
            for round_index in range(ROUNDS):
                tag = f"race-{round_index}"
                for metadata_id in sorted(tables.values()):
                    patient_id = int(metadata_id.split(":")[1])
                    responses.append(gateway.submit(doctor, UpdateEntryRequest(
                        metadata_id=metadata_id, key=(patient_id,),
                        updates={"clinical_data": tag, "dosage": tag})))
            assert pool.join_idle(timeout=60.0)
            writes_done.set()
            for thread in readers:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in readers)
            assert not pool.errors, pool.errors
        assert not reader_errors, reader_errors
        assert all(response.status == STATUS_OK for response in responses)

        spans = tracer.spans()
        assert spans
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids)), "concurrent spans reused an id"
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            assert span.sim_end >= span.sim_start
            assert span.wall_elapsed >= 0.0
            if span.parent_id is not None:
                parent = by_id.get(span.parent_id)
                assert parent is not None, (
                    f"span {span.span_id} links to unrecorded parent "
                    f"{span.parent_id}")
                # A child is contained in its parent on the simulated
                # timeline (per-thread stacks make this invariant exact).
                assert parent.sim_start <= span.sim_start
                assert span.sim_end <= parent.sim_end

        # Every admitted write got its own trace id, and every committed
        # batch stitched its member request ids onto the commit span.
        admit_ids = {span.trace_id for span in spans
                     if span.name == "gateway.admit"}
        assert None not in admit_ids
        batch_members = set()
        for span in spans:
            if span.name == "gateway.commit":
                batch_members.update(span.attrs.get("requests", ()))
        committed = {response.request_id for response in responses
                     if response.status == STATUS_OK}
        assert committed <= batch_members

    def test_tracer_survives_raw_thread_hammering(self):
        """Direct stress: many threads opening nested spans concurrently."""
        tracer = Tracer()
        spans_per_thread = 200
        threads = 8
        barrier = threading.Barrier(threads)
        errors = []

        def hammer(worker):
            try:
                barrier.wait(timeout=30)
                for index in range(spans_per_thread):
                    with tracer.span("outer", worker=worker):
                        with tracer.span("inner", worker=worker, index=index):
                            pass
            except Exception as exc:  # noqa: BLE001 - surfaced in the assert
                errors.append(f"{type(exc).__name__}: {exc}")

        workers = [threading.Thread(target=hammer, args=(n,)) for n in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=60)
        assert not errors, errors
        spans = tracer.spans()
        assert len(spans) == threads * spans_per_thread * 2
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids))
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.name == "inner":
                parent = by_id[span.parent_id]
                # Per-thread stacks: the parent is an outer span opened by
                # the same worker, never one from another thread.
                assert parent.name == "outer"
                assert parent.attrs["worker"] == span.attrs["worker"]
