"""Trace determinism and export integrity.

Two identically-seeded gateway load tests must export byte-identical span
trees (the export holds only simulated-clock fields), every per-request
trace id must resolve to a complete span tree, and the JSONL reader must
reject the same corruption a WAL reader would.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import run_gateway_loadtest
from repro.errors import WalCorruptionError
from repro.obs import (
    PIPELINE_STAGES,
    TraceAnalyzer,
    Tracer,
    read_trace_jsonl,
    trace_entries,
    write_trace_jsonl,
)


def _traced_loadtest(tmp_path, tag):
    """One deterministic traced load test with a durable state dir, so all
    five pipeline stages (including WAL appends/fsyncs) produce spans."""
    out = tmp_path / f"trace-{tag}.jsonl"
    result = run_gateway_loadtest(
        tenants=3, duration=8.0, seed=23, interval=1.0,
        state_dir=str(tmp_path / f"state-{tag}"),
        trace=True, trace_out=str(out))
    return result, out


class TestDeterministicExport:
    def test_identical_seeds_export_byte_identical_traces(self, tmp_path):
        _, first = _traced_loadtest(tmp_path, "a")
        _, second = _traced_loadtest(tmp_path, "b")
        first_bytes = first.read_bytes()
        assert first_bytes
        assert first_bytes == second.read_bytes()

    def test_different_seed_changes_the_trace(self, tmp_path):
        _, first = _traced_loadtest(tmp_path, "a")
        other = tmp_path / "trace-other.jsonl"
        run_gateway_loadtest(tenants=3, duration=8.0, seed=24, interval=1.0,
                             state_dir=str(tmp_path / "state-other"),
                             trace=True, trace_out=str(other))
        assert first.read_bytes() != other.read_bytes()

    def test_all_five_pipeline_stages_report_spans(self, tmp_path):
        _, path = _traced_loadtest(tmp_path, "a")
        analyzer = TraceAnalyzer.from_jsonl(path)
        stages = analyzer.pipeline_stages()
        assert set(stages) == set(PIPELINE_STAGES)
        for stage, data in stages.items():
            assert data["count"] > 0, f"stage {stage} recorded no spans"
        # The sharded-lane breakdown is present for the consensus stage.
        assert stages["consensus"]["lanes"]

    def test_loadtest_result_embeds_the_same_aggregation(self, tmp_path):
        result, path = _traced_loadtest(tmp_path, "a")
        analyzer = TraceAnalyzer.from_jsonl(path)
        assert result["trace"]["spans"] == len(analyzer.spans)
        assert result["trace"]["exported_spans"] == len(analyzer.spans)


class TestRequestTrees:
    def test_request_trace_ids_resolve_to_complete_span_trees(self, tmp_path):
        _, path = _traced_loadtest(tmp_path, "a")
        analyzer = TraceAnalyzer.from_jsonl(path)
        commits = [span for span in analyzer.spans
                   if span["name"] == "gateway.commit"
                   and span["attrs"].get("requests")]
        assert commits, "no committed batch recorded a member-request list"
        request_id = commits[0]["attrs"]["requests"][0]
        tree = analyzer.request_tree(request_id)
        names = {span["name"] for span in tree}
        # The tree spans admission AND the batch that committed the write,
        # including its consensus and propagation children.
        assert "gateway.admit" in names
        assert "gateway.commit" in names
        assert "consensus.round" in names
        assert "scheduler.plan" in names
        admits = [span for span in tree if span["name"] == "gateway.admit"]
        assert any(span["trace_id"] == request_id for span in admits)

    def test_every_admitted_write_has_a_trace_id(self, tmp_path):
        _, path = _traced_loadtest(tmp_path, "a")
        for span in TraceAnalyzer.from_jsonl(path).spans:
            if span["name"] == "gateway.admit":
                assert span["trace_id"] is not None
                assert span["trace_id"] == span["attrs"]["request_id"]


class TestExportEnvelope:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("outer", trace_id="req-1"):
            with tracer.span("inner"):
                pass
        return tracer.spans()

    def test_round_trip_preserves_payloads(self, tmp_path):
        spans = self._spans()
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(spans, path) == 2
        payloads = read_trace_jsonl(path)
        assert payloads == [span.to_dict() for span in
                            sorted(spans, key=lambda s: s.span_id)]

    def test_entries_are_sequenced_in_span_id_order(self):
        entries = list(trace_entries(reversed(self._spans())))
        assert [entry.sequence for entry in entries] == [1, 2]
        assert [entry.payload["span_id"] for entry in entries] == [1, 2]
        assert all(entry.operation == "span" and entry.table == "trace"
                   for entry in entries)

    def test_sequence_gap_detected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(self._spans(), path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[1])  # drop the first entry: sequence starts at 2
        with pytest.raises(WalCorruptionError, match="sequence gap"):
            read_trace_jsonl(path)

    def test_foreign_envelope_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"sequence": 1, "operation": "insert",
                                    "table": "t", "payload": {}}) + "\n")
        with pytest.raises(WalCorruptionError, match="not a trace entry"):
            read_trace_jsonl(path)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"sequence": 1, "operation": "span"')
        with pytest.raises(WalCorruptionError, match="malformed"):
            read_trace_jsonl(path)
