"""CLI surface of the observability layer: repro trace / metrics /
gateway-loadtest --trace[-out]."""

from __future__ import annotations

import json

from repro.cli import main


class TestTraceCommand:
    def test_trace_prints_stage_and_critical_path_tables(self, capsys):
        assert main(["trace", "--tenants", "2", "--duration", "6",
                     "--interval", "1"]) == 0
        output = capsys.readouterr().out
        assert "Pipeline stage self-time" in output
        for stage in ("admission", "seal_commit", "consensus", "delta", "wal"):
            assert stage in output
        assert "Critical path" in output

    def test_trace_json_reports_all_five_stages_with_self_time(self, capsys):
        assert main(["trace", "--tenants", "2", "--duration", "6",
                     "--interval", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["stages"]) == {"admission", "seal_commit",
                                          "consensus", "delta", "wal"}
        for stage, data in payload["stages"].items():
            assert data["count"] > 0, f"stage {stage} recorded no spans"
            assert "sim_self" in data and "wall_self" in data
        assert payload["spans"] > 0
        assert payload["critical_path"]
        assert payload["tracer"]["spans_dropped"] == 0

    def test_trace_out_exports_jsonl(self, capsys, tmp_path):
        out = tmp_path / "spans.jsonl"
        assert main(["trace", "--tenants", "2", "--duration", "6",
                     "--interval", "1", "--out", str(out)]) == 0
        assert out.exists()
        lines = out.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert first["operation"] == "span" and first["table"] == "trace"


class TestMetricsCommand:
    def test_metrics_prints_counters_gauges_histograms(self, capsys):
        assert main(["metrics", "--tenants", "2", "--duration", "6",
                     "--interval", "1"]) == 0
        output = capsys.readouterr().out
        assert "Counters" in output and "Gauges" in output
        assert "gateway_writes_committed" in output
        assert "gateway_queue_depth" in output
        assert "gateway_request_latency" in output

    def test_metrics_json_emits_the_registry_snapshot(self, capsys):
        assert main(["metrics", "--tenants", "2", "--duration", "6",
                     "--interval", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"counters", "gauges", "histograms"}
        assert payload["counters"]["gateway_writes_committed"] > 0
        assert payload["gauges"]["gateway_queue_depth"] == 0
        # Per-tenant latency histograms registered by the gateway, with the
        # fixed log-scale buckets and the p50 satellite in every summary.
        for data in payload["histograms"].values():
            assert "p50" in data["summary"]
            assert sum(data["buckets"].values()) == int(data["summary"]["count"])


class TestLoadtestTraceFlags:
    def test_trace_flag_appends_stage_table(self, capsys):
        assert main(["gateway-loadtest", "--tenants", "2", "--duration", "5",
                     "--interval", "1", "--trace"]) == 0
        output = capsys.readouterr().out
        assert "Gateway load test" in output
        assert "Pipeline stage self-time" in output

    def test_trace_out_implies_tracing_and_exports(self, capsys, tmp_path):
        out = tmp_path / "spans.jsonl"
        assert main(["gateway-loadtest", "--tenants", "2", "--duration", "5",
                     "--interval", "1", "--trace-out", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["exported_spans"] > 0
        assert len(out.read_text().splitlines()) == payload["trace"]["exported_spans"]

    def test_untraced_loadtest_reports_no_trace(self, capsys):
        assert main(["gateway-loadtest", "--tenants", "2", "--duration", "5",
                     "--interval", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "trace" not in payload
