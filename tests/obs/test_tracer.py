"""Unit tests for the span tracer: nesting, timelines, the null tracer."""

from __future__ import annotations

import pytest

from repro.obs import NULL_TRACER, Span, Tracer
from repro.obs.tracer import _NULL_SPAN


class FakeClock:
    """A manually advanced stand-in for the ledger's SimClock."""

    def __init__(self) -> None:
        self.time = 0.0

    def now(self) -> float:
        return self.time

    def advance(self, seconds: float) -> None:
        self.time += seconds


class TestSpanStructure:
    def test_root_span_records_name_attrs_and_ids(self):
        tracer = Tracer()
        with tracer.span("stage", key="value") as span:
            assert tracer.current_span() is span
        assert tracer.current_span() is None
        (recorded,) = tracer.spans()
        assert recorded.name == "stage"
        assert recorded.attrs == {"key": "value"}
        assert recorded.span_id == 1
        assert recorded.parent_id is None
        assert recorded.trace_id is None

    def test_nested_spans_link_to_parent_and_inherit_trace_id(self):
        tracer = Tracer()
        with tracer.span("outer", trace_id="req-1") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == "req-1"
            with tracer.span("sibling", trace_id="other") as sibling:
                assert sibling.trace_id == "other"
        names = [span.name for span in tracer.spans()]
        # Completion order: children finish before their parent.
        assert names == ["inner", "sibling", "outer"]

    def test_set_trace_id_and_annotate(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            span.set_trace_id("batch-1")
            assert span.annotate(extra=3) is span
        (recorded,) = tracer.spans()
        assert recorded.trace_id == "batch-1"
        assert recorded.attrs["extra"] == 3

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("stage"):
                raise RuntimeError("boom")
        (recorded,) = tracer.spans()
        assert recorded.attrs["error"] == "RuntimeError"
        # The tracer's stack unwound cleanly despite the exception.
        assert tracer.current_span() is None


class TestTimelines:
    def test_sim_times_come_from_the_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("outer"):
            clock.advance(3.0)
            with tracer.span("inner"):
                clock.advance(2.0)
            clock.advance(1.0)
        inner, outer = tracer.spans()
        assert (outer.sim_start, outer.sim_end) == (0.0, 6.0)
        assert (inner.sim_start, inner.sim_end) == (3.0, 5.0)
        assert outer.sim_elapsed == 6.0
        # Self time excludes the direct child's elapsed time.
        assert outer.sim_self == pytest.approx(4.0)
        assert inner.sim_self == pytest.approx(2.0)

    def test_wall_self_excludes_children(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.wall_elapsed >= 0.0
        assert outer.wall_self == pytest.approx(
            outer.wall_elapsed - inner.wall_elapsed)

    def test_no_clock_stamps_zero(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        (span,) = tracer.spans()
        assert span.sim_start == 0.0 and span.sim_end == 0.0

    def test_to_dict_excludes_wall_fields_by_default(self):
        tracer = Tracer(FakeClock())
        with tracer.span("stage", a=1):
            pass
        (span,) = tracer.spans()
        payload = span.to_dict()
        assert set(payload) == {"span_id", "trace_id", "parent_id", "name",
                                "attrs", "sim_start", "sim_end", "sim_self"}
        with_wall = span.to_dict(include_wall=True)
        assert "wall_elapsed" in with_wall and "wall_self" in with_wall


class TestTracerBookkeeping:
    def test_max_spans_caps_retention_and_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 2
        assert tracer.spans_dropped == 3
        stats = tracer.statistics()
        assert stats["spans_recorded"] == 2
        assert stats["spans_dropped"] == 3

    def test_statistics_groups_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        assert tracer.statistics()["spans_by_name"] == {"a": 3, "b": 1}

    def test_clear_resets_spans_and_drop_counter(self):
        tracer = Tracer(max_spans=1)
        for _ in range(2):
            with tracer.span("s"):
                pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.spans_dropped == 0

    def test_iteration_yields_finished_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert [span.name for span in tracer] == ["a"]


class TestNullTracer:
    def test_span_is_shared_noop_context_manager(self):
        span = NULL_TRACER.span("anything", key="value")
        assert span is _NULL_SPAN
        with span as entered:
            assert entered is span
            assert entered.annotate(more=1) is span
            entered.set_trace_id("req-1")
        assert NULL_TRACER.spans() == ()

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_survives_exceptions_without_recording(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("stage"):
                raise ValueError("boom")
        assert NULL_TRACER.spans() == ()
