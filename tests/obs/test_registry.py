"""Unit tests for the unified metrics registry."""

from __future__ import annotations

import pytest

from repro.metrics.collectors import LatencyCollector
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, render_key


class TestRenderKey:
    def test_bare_name_without_labels(self):
        assert render_key("hits", ()) == "hits"

    def test_labels_render_prometheus_style(self):
        key = render_key("latency", (("tenant", "doctor"), ("zone", "a")))
        assert key == 'latency{tenant="doctor",zone="a"}'


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_settable_gauge(self):
        gauge = Gauge()
        gauge.set(7)
        assert gauge.value == 7

    def test_callback_gauge_reads_live_state(self):
        state = {"depth": 1}
        gauge = Gauge(fn=lambda: state["depth"])
        assert gauge.value == 1
        state["depth"] = 9
        assert gauge.value == 9

    def test_setting_callback_gauge_rejected(self):
        gauge = Gauge(fn=lambda: 0)
        with pytest.raises(ValueError):
            gauge.set(3)


class TestHistogram:
    def test_wraps_existing_collector_without_double_recording(self):
        collector = LatencyCollector()
        collector.record_value(1.0)
        histogram = Histogram(collector)
        histogram.observe(3.0)
        assert collector.count == 2
        payload = histogram.to_dict()
        assert payload["summary"]["count"] == 2.0
        assert sum(payload["buckets"].values()) == 2

    def test_creates_collector_when_none_given(self):
        histogram = Histogram()
        histogram.observe(0.5)
        assert histogram.collector.count == 1


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("writes")
        first.inc()
        assert registry.counter("writes") is first
        assert registry.counter("writes").value == 1

    def test_labels_distinguish_instruments_order_independently(self):
        registry = MetricsRegistry()
        a = registry.counter("latency", tenant="doctor", zone="a")
        same = registry.counter("latency", zone="a", tenant="doctor")
        other = registry.counter("latency", tenant="patient", zone="a")
        assert a is same
        assert a is not other

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("writes")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("writes")

    def test_len_counts_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c", tenant="x")
        assert len(registry) == 3

    def test_snapshot_renders_every_kind_sorted(self):
        registry = MetricsRegistry()
        registry.counter("writes").inc(2)
        registry.gauge("depth", fn=lambda: 4)
        registry.histogram("latency", tenant="doctor").observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"writes": 2}
        assert snapshot["gauges"] == {"depth": 4}
        (key,) = snapshot["histograms"]
        assert key == 'latency{tenant="doctor"}'
        assert snapshot["histograms"][key]["summary"]["count"] == 1.0

    def test_snapshot_ordering_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", z="1")
        registry.counter("a", y="1")
        assert list(registry.snapshot()["counters"]) == [
            'a{y="1"}', 'a{z="1"}', "b"]
