"""Tests for metric collectors and reporting."""

import pytest

from repro.core.scenario import DOCTOR_RESEARCHER_TABLE
from repro.metrics.collectors import (
    HISTOGRAM_BUCKET_BOUNDS,
    ExposureReport,
    LatencyCollector,
    StorageComparison,
    ThroughputResult,
    exposure_report,
    measure_throughput,
)
from repro.metrics.reporting import format_series, format_table
from repro.workloads.updates import UpdateStreamGenerator


class TestLatencyCollector:
    def test_empty_collector(self):
        collector = LatencyCollector()
        assert collector.count == 0
        assert collector.mean == 0.0
        assert collector.p95 == 0.0
        assert collector.maximum == 0.0

    def test_statistics(self):
        collector = LatencyCollector()
        for value in (1.0, 2.0, 3.0, 4.0, 10.0):
            collector.record_value(value)
        assert collector.count == 5
        assert collector.mean == pytest.approx(4.0)
        assert collector.median == pytest.approx(3.0)
        assert collector.maximum == 10.0
        # p95 interpolates between ranks: rank 0.95*4 = 3.8 → 4 + 0.8*(10-4).
        assert collector.p95 == pytest.approx(8.8)
        summary = collector.summary()
        assert summary["count"] == 5.0
        assert summary["p99"] == pytest.approx(collector.p99)

    def test_percentile_interpolates_small_samples(self):
        collector = LatencyCollector()
        for value in range(1, 11):  # 1..10
            collector.record_value(float(value))
        assert collector.percentile(50.0) == pytest.approx(5.5)
        assert collector.p95 == pytest.approx(9.55)
        assert collector.p99 == pytest.approx(9.91)
        assert collector.percentile(0.0) == 1.0
        assert collector.percentile(100.0) == 10.0

    def test_percentile_edge_cases(self):
        collector = LatencyCollector()
        assert collector.p99 == 0.0
        collector.record_value(7.0)
        assert collector.p95 == 7.0  # a single sample is every percentile
        assert collector.p99 == 7.0
        with pytest.raises(ValueError):
            collector.percentile(101.0)

    def test_p50_matches_median_and_appears_in_summary(self):
        collector = LatencyCollector()
        for value in (1.0, 2.0, 3.0, 4.0, 10.0):
            collector.record_value(value)
        assert collector.p50 == pytest.approx(collector.median)
        summary = collector.summary()
        assert summary["p50"] == pytest.approx(3.0)

    def test_histogram_buckets_are_fixed_log_scale(self):
        # Bounds double from 1 ms; fixed across collectors and runs.
        assert HISTOGRAM_BUCKET_BOUNDS[0] == pytest.approx(0.001)
        ratios = [b / a for a, b in zip(HISTOGRAM_BUCKET_BOUNDS,
                                        HISTOGRAM_BUCKET_BOUNDS[1:])]
        assert all(ratio == pytest.approx(2.0) for ratio in ratios)

    def test_histogram_buckets_count_samples_by_upper_bound(self):
        collector = LatencyCollector()
        # 0.001 lands exactly on the first bound; 0.0015 needs the second.
        for value in (0.001, 0.0015, 0.0015, 1e9):
            collector.record_value(value)
        buckets = collector.histogram_buckets()
        assert buckets[repr(0.001)] == 1
        assert buckets[repr(0.002)] == 2
        # Samples beyond the last bound overflow into "+inf", listed last.
        assert buckets["+inf"] == 1
        assert list(buckets)[-1] == "+inf"
        assert sum(buckets.values()) == collector.count

    def test_histogram_buckets_omit_empty_buckets(self):
        collector = LatencyCollector()
        collector.record_value(0.5)
        buckets = collector.histogram_buckets()
        assert len(buckets) == 1
        assert collector.histogram_buckets() == buckets  # stable
        assert LatencyCollector().histogram_buckets() == {}

    def test_record_workflow_trace(self, fresh_paper_system):
        collector = LatencyCollector()
        trace = fresh_paper_system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-v2"})
        collector.record(trace)
        assert collector.count == 1
        assert collector.mean > 0


class TestThroughput:
    def test_measure_throughput_accepts_valid_stream(self, fresh_paper_system):
        generator = UpdateStreamGenerator(fresh_paper_system, seed=2)
        events = generator.stream(4)
        result = measure_throughput(fresh_paper_system, events)
        assert result.updates_attempted == 4
        assert result.updates_accepted == 4
        assert result.updates_rejected == 0
        assert result.simulated_seconds > 0
        assert result.throughput > 0
        assert result.blocks_created >= 8  # request + ack per update

    def test_zero_time_throughput(self):
        result = ThroughputResult(updates_attempted=0, updates_accepted=0,
                                  updates_rejected=0, simulated_seconds=0.0,
                                  blocks_created=0)
        assert result.throughput == 0.0
        assert result.to_dict()["throughput"] == 0.0


class TestExposureReport:
    def test_unnecessary_attributes(self):
        report = exposure_report(
            fine_grained={"Researcher": ("medication_name", "mechanism_of_action")},
            full_record={"Researcher": ("patient_id", "medication_name", "clinical_data",
                                        "dosage", "mechanism_of_action")},
        )
        assert set(report.unnecessary_attributes()["Researcher"]) == {
            "patient_id", "clinical_data", "dosage"}
        counts = report.exposure_counts()["Researcher"]
        assert counts == {"fine_grained": 2, "full_record": 5, "unnecessary": 3}

    def test_roles_missing_from_one_side(self):
        report = ExposureReport(fine_grained={"Patient": ("dosage",)}, full_record={})
        counts = report.exposure_counts()
        assert counts["Patient"]["full_record"] == 0


class TestStorageComparison:
    def test_ratio(self):
        comparison = StorageComparison(record_count=100, metadata_on_chain_bytes=1000,
                                       data_on_chain_bytes=50_000)
        assert comparison.ratio == 50.0
        assert comparison.to_dict()["ratio"] == 50.0

    def test_zero_metadata_gives_infinite_ratio(self):
        comparison = StorageComparison(record_count=1, metadata_on_chain_bytes=0,
                                       data_on_chain_bytes=10)
        assert comparison.ratio == float("inf")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"), [("alpha", 1.23456), ("b", 2)],
                            title="Results")
        lines = text.splitlines()
        assert lines[0] == "Results"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in text
        assert "alpha" in text

    def test_format_series(self):
        text = format_series({1: 10.0, 12: 2.5}, x_label="interval", y_label="throughput")
        assert "interval" in text
        assert "12" in text and "2.500" in text


class TestPeakGauge:
    def test_tracks_value_and_peak(self):
        from repro.metrics.collectors import PeakGauge

        gauge = PeakGauge()
        assert gauge.value == 0 and gauge.peak == 0
        gauge.increment()
        gauge.increment(2)
        assert gauge.value == 3 and gauge.peak == 3
        gauge.decrement()
        assert gauge.value == 2 and gauge.peak == 3

    def test_record_sets_value_outright(self):
        from repro.metrics.collectors import PeakGauge

        gauge = PeakGauge(5)
        gauge.record(2)
        assert gauge.value == 2 and gauge.peak == 5
        gauge.record(9)
        assert gauge.peak == 9

    def test_to_dict(self):
        from repro.metrics.collectors import PeakGauge

        gauge = PeakGauge()
        gauge.increment()
        assert gauge.to_dict() == {"current": 1, "peak": 1}

    def test_thread_safe_under_contention(self):
        import threading

        from repro.metrics.collectors import PeakGauge

        gauge = PeakGauge()
        barrier = threading.Barrier(4)

        def hammer():
            barrier.wait(timeout=10)
            for _ in range(2_000):
                gauge.increment()
                gauge.decrement()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert gauge.value == 0
        assert 1 <= gauge.peak <= 4
