"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md §5 (E1..E10).  Each
prints the rows/series the corresponding paper artifact describes and also
writes them to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can
quote them verbatim.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    """``--quick``: run benchmarks on a reduced size grid.

    CI's bench smoke job passes this so the delta-propagation benchmark (and
    any future grid-based bench) finishes in seconds while still exercising
    the full code path and its correctness oracles.
    """
    parser.addoption("--quick", action="store_true", default=False,
                     help="run benchmarks on a reduced size grid (CI smoke mode)")


@pytest.fixture
def quick(request) -> bool:
    """True when the run should use the reduced (CI smoke) size grid."""
    return bool(request.config.getoption("--quick"))


def emit_result(experiment_id: str, text: str) -> None:
    """Print an experiment's result table and persist it under results/."""
    banner = f"\n===== {experiment_id} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture
def emit():
    """Fixture handing benches the result emitter."""
    return emit_result
