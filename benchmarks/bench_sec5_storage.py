"""E6 — §V storage claim: metadata-on-chain (ours) vs raw-data-on-chain (HDG).

The paper criticises Healthcare Data Gateways [22] for storing medical data
itself on the blockchain ("the data become burdens for blockchain nodes'
storage") and stores only metadata on-chain instead.  This experiment
quantifies that: for the same set of records and updates, it compares the
per-node chain/state footprint of the two designs.
"""

from __future__ import annotations

import pytest

from repro.baselines.onchain_storage import OnChainStorageBaseline
from repro.config import SystemConfig
from repro.core.scenario import build_scaled_scenario
from repro.metrics.collectors import StorageComparison
from repro.metrics.reporting import format_table
from repro.workloads.generator import MedicalRecordGenerator


def _metadata_on_chain_bytes(records):
    """Per-node on-chain footprint of the paper's design for these records."""
    system = build_scaled_scenario(records=records,
                                   config=SystemConfig.private_chain(block_interval=1.0))
    node = system.server_app("doctor").node
    return node.chain.storage_bytes() + node.chain.state.storage_bytes(), system


def _data_on_chain_bytes(records):
    """Per-node chain footprint of the HDG-style store-everything design."""
    baseline = OnChainStorageBaseline()
    baseline.store_records(records)
    return baseline.per_node_storage_bytes(), baseline


@pytest.mark.parametrize("record_count", [10, 50, 200])
def test_sec5_storage_comparison(benchmark, emit, record_count):
    records = MedicalRecordGenerator(seed=31, first_patient_id=188).records(
        record_count, distinct_medications=12)

    data_bytes, _baseline = benchmark(lambda: _data_on_chain_bytes(records))
    metadata_bytes, _system = _metadata_on_chain_bytes(records)
    comparison = StorageComparison(record_count=record_count,
                                   metadata_on_chain_bytes=metadata_bytes,
                                   data_on_chain_bytes=data_bytes)
    emit(f"E6_sec5_storage_{record_count}", format_table(
        ("design", "per-node on-chain bytes"),
        [("metadata on-chain (this paper)", metadata_bytes),
         ("raw data on-chain (HDG [22])", data_bytes),
         ("ratio (HDG / ours)", round(comparison.ratio, 2))],
        title=f"§V storage pressure with {record_count} records"))
    # The HDG design must grow with the data; with enough records it overtakes
    # the metadata-only design (whose on-chain footprint is per-agreement).
    if record_count >= 50:
        assert comparison.ratio > 1.0


def test_sec5_storage_growth_series(benchmark, emit):
    """Growth curves: ours is flat in the record count, HDG's is linear."""
    rows = []
    previous_ours = previous_hdg = None
    benchmark.pedantic(
        lambda: _data_on_chain_bytes(
            MedicalRecordGenerator(seed=32, first_patient_id=188).records(10)),
        rounds=1, iterations=1)
    for record_count in (10, 50, 200):
        records = MedicalRecordGenerator(seed=32, first_patient_id=188).records(
            record_count, distinct_medications=12)
        metadata_bytes, _ = _metadata_on_chain_bytes(records)
        data_bytes, _ = _data_on_chain_bytes(records)
        ours_growth = (metadata_bytes / previous_ours) if previous_ours else 1.0
        hdg_growth = (data_bytes / previous_hdg) if previous_hdg else 1.0
        rows.append((record_count, metadata_bytes, data_bytes,
                     round(ours_growth, 2), round(hdg_growth, 2)))
        previous_ours, previous_hdg = metadata_bytes, data_bytes
    emit("E6_sec5_storage_series", format_table(
        ("records", "ours (bytes)", "HDG (bytes)", "ours growth x", "HDG growth x"),
        rows, title="§V: per-node on-chain storage growth"))
    # HDG grows much faster than the metadata-only design from 10 to 200 records.
    assert rows[-1][2] / rows[0][2] > 5 * (rows[-1][1] / rows[0][1])


def test_sec5_update_history_storage(benchmark, emit):
    """Updates add only diff hashes/metadata on-chain in our design, but whole
    payloads in the HDG design."""
    records = MedicalRecordGenerator(seed=33, first_patient_id=188).records(
        20, distinct_medications=8)

    # Our design: run 5 protocol updates and measure chain growth.
    system = benchmark.pedantic(
        lambda: build_scaled_scenario(records=records,
                                      config=SystemConfig.private_chain(block_interval=1.0)),
        rounds=1, iterations=1)
    node = system.server_app("doctor").node
    before = node.chain.storage_bytes()
    from repro.workloads.updates import UpdateStreamGenerator

    for event in UpdateStreamGenerator(system, seed=34).stream(5):
        system.coordinator.update_shared_entry(event.peer, event.metadata_id,
                                               event.key, event.updates)
    ours_growth = node.chain.storage_bytes() - before

    # HDG: the same 5 updates are stored as full payload transactions.
    baseline = OnChainStorageBaseline()
    baseline.store_records(records)
    before_hdg = baseline.per_node_storage_bytes()
    for index in range(5):
        baseline.store_update(records[index]["patient_id"],
                              {"mechanism_of_action": f"MeA-updated-{index}",
                               "full_record": records[index]})
    baseline.finalize()
    hdg_growth = baseline.per_node_storage_bytes() - before_hdg

    emit("E6_sec5_update_history", format_table(
        ("design", "chain growth for 5 updates (bytes)"),
        [("metadata on-chain (this paper)", ours_growth),
         ("raw data on-chain (HDG [22])", hdg_growth)],
        title="§V: on-chain growth caused by shared-data updates"))
    assert ours_growth > 0 and hdg_growth > 0
