"""E11 — gateway serving: batched ledger commits vs sequential updates.

The gateway's write scheduler folds compatible updates from many tenants
into batches that share two consensus rounds (one for all requests, one for
all acknowledgements), instead of paying two rounds per update.  This
experiment drives the same multi-tenant write workload through

* the **sequential baseline** — one
  :meth:`~repro.core.workflow.UpdateCoordinator.update_shared_entry` call per
  update, exactly what the seed reproduction offered; and
* the **gateway** — requests queued per tenant session, planned into batches
  and committed through
  :meth:`~repro.core.workflow.UpdateCoordinator.commit_entry_batch`,

and reports accepted-writes-per-simulated-second for both, the speedup, the
read cache hit rate and each tenant's latency p95.  Runnable two ways::

    python -m pytest benchmarks/bench_gateway_throughput.py   # asserts ≥3×
    python benchmarks/bench_gateway_throughput.py             # prints JSON
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List

from repro.config import SystemConfig
from repro.core.system import MedicalDataSharingSystem
from repro.gateway import ReadViewRequest, SharingGateway, UpdateEntryRequest
from repro.workloads.topology import TopologySpec, build_topology_system

DEFAULT_TENANTS = 8
DEFAULT_ROUNDS = 2
DEFAULT_INTERVAL = 2.0


def _build(tenants: int, interval: float) -> MedicalDataSharingSystem:
    return build_topology_system(TopologySpec(patients=tenants, researchers=0),
                                 SystemConfig.private_chain(interval))


def _tenant_tables(system: MedicalDataSharingSystem) -> Dict[str, str]:
    """peer name → the metadata id of its patient↔doctor shared table."""
    tables = {}
    for metadata_id in system.agreement_ids:
        patient_id = metadata_id.split(":")[1]
        tables[f"patient-{patient_id}"] = metadata_id
    return tables


def _write_events(tables: Dict[str, str], rounds: int) -> List[Dict[str, object]]:
    """The identical per-tenant update stream both systems replay."""
    events = []
    for round_index in range(rounds):
        for peer, metadata_id in sorted(tables.items()):
            patient_id = int(metadata_id.split(":")[1])
            events.append({
                "peer": peer,
                "metadata_id": metadata_id,
                "key": (patient_id,),
                "updates": {"clinical_data": f"CliD-{patient_id}-r{round_index}"},
                "round": round_index,
            })
    return events


def run_gateway_throughput_comparison(tenants: int = DEFAULT_TENANTS,
                                      rounds: int = DEFAULT_ROUNDS,
                                      interval: float = DEFAULT_INTERVAL,
                                      reads_per_write: int = 2) -> Dict[str, object]:
    """Run both systems over the same workload; returns the JSON-able result."""
    # --- sequential baseline: one protocol run (two consensus rounds) per update.
    sequential = _build(tenants, interval)
    events = _write_events(_tenant_tables(sequential), rounds)
    start = sequential.simulator.clock.now()
    for event in events:
        trace = sequential.coordinator.update_shared_entry(
            event["peer"], event["metadata_id"], event["key"], event["updates"])
        assert trace.succeeded
    sequential_seconds = sequential.simulator.clock.now() - start
    sequential_throughput = len(events) / sequential_seconds

    # --- gateway: same writes batched per round, plus read traffic that
    # exercises the view cache between commits.
    batched = _build(tenants, interval)
    gateway = SharingGateway(batched, max_batch_size=tenants)
    tables = _tenant_tables(batched)
    sessions = {peer: gateway.open_session(peer) for peer in tables}
    start = batched.simulator.clock.now()
    responses = []
    for round_index in range(rounds):
        for _ in range(reads_per_write):
            for peer, metadata_id in sorted(tables.items()):
                gateway.submit(sessions[peer], ReadViewRequest(metadata_id))
        for event in events:
            if event["round"] != round_index:
                continue
            responses.append(gateway.submit(
                sessions[event["peer"]],
                UpdateEntryRequest(metadata_id=event["metadata_id"],
                                   key=event["key"], updates=event["updates"])))
        gateway.drain()
    batched_seconds = batched.simulator.clock.now() - start
    assert all(response.ok for response in responses)
    assert batched.all_shared_tables_consistent()
    batched_throughput = len(events) / batched_seconds

    metrics = gateway.metrics()
    return {
        "tenants": tenants,
        "rounds": rounds,
        "writes": len(events),
        "block_interval": interval,
        "sequential": {
            "simulated_seconds": sequential_seconds,
            "throughput": sequential_throughput,
            "consensus_rounds": 2 * len(events),
        },
        "batched": {
            "simulated_seconds": batched_seconds,
            "throughput": batched_throughput,
            "consensus_rounds": metrics["batches"]["consensus_rounds"],
            "batches": metrics["batches"]["committed"],
            "mean_batch_size": metrics["batches"]["mean_size"],
        },
        "speedup": batched_throughput / sequential_throughput,
        "cache_hit_rate": metrics["cache"]["hit_rate"],
        "per_tenant_p95": {tenant: stats["p95"]
                           for tenant, stats in metrics["tenants"].items()},
    }


def test_gateway_batched_throughput_vs_sequential(emit):
    """Batched commits must be ≥3× the sequential baseline at 8 tenants."""
    result = run_gateway_throughput_comparison()
    emit("E11_gateway_throughput", json.dumps(result, indent=2, sort_keys=True))
    assert result["writes"] == DEFAULT_TENANTS * DEFAULT_ROUNDS
    assert result["speedup"] >= 3.0
    # The read traffic between commits must actually hit the cache ...
    assert result["cache_hit_rate"] > 0.3
    # ... and every tenant's latency distribution is reported.
    assert len(result["per_tenant_p95"]) == DEFAULT_TENANTS
    assert all(p95 > 0 for p95 in result["per_tenant_p95"].values())


def test_gateway_batch_size_scaling(emit):
    """Larger batches amortise consensus rounds: fewer rounds, more throughput."""
    rows = []
    throughputs = []
    for tenants in (2, 4, 8):
        result = run_gateway_throughput_comparison(tenants=tenants, rounds=1)
        throughputs.append(result["batched"]["throughput"])
        rows.append((tenants, result["writes"],
                     round(result["batched"]["throughput"], 4),
                     round(result["speedup"], 2)))
    emit("E11_gateway_batch_scaling", json.dumps(
        [{"tenants": row[0], "writes": row[1], "throughput": row[2],
          "speedup": row[3]} for row in rows], indent=2))
    # Throughput grows with the number of batchable tenants.
    assert throughputs[-1] > throughputs[0]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=DEFAULT_TENANTS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--interval", type=float, default=DEFAULT_INTERVAL)
    args = parser.parse_args()
    result = run_gateway_throughput_comparison(
        tenants=args.tenants, rounds=args.rounds, interval=args.interval)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["speedup"] >= 3.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
