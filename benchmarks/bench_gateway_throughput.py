"""E11 — gateway serving: batched ledger commits vs sequential updates.

The gateway's write scheduler folds compatible updates from many tenants
into batches that share two consensus rounds (one for all requests, one for
all acknowledgements), instead of paying two rounds per update.  This
experiment drives the same multi-tenant write workload through

* the **sequential baseline** — one
  :meth:`~repro.core.workflow.UpdateCoordinator.update_shared_entry` call per
  update, exactly what the seed reproduction offered; and
* the **gateway** — requests queued per tenant session, planned into batches
  and committed through
  :meth:`~repro.core.workflow.UpdateCoordinator.commit_entry_batch`,

and reports accepted-writes-per-simulated-second for both, the speedup, the
read cache hit rate and each tenant's latency p95.  It also gates the
observability layer: the same batched workload with a pipeline tracer
attached must keep ≥95% of the tracer-off simulated throughput (tracing
never advances the simulated clock, so the ratio should be exactly 1.0 —
wall-clock overhead is reported but informational).  Runnable two ways::

    python -m pytest benchmarks/bench_gateway_throughput.py   # asserts ≥3×
    python benchmarks/bench_gateway_throughput.py             # prints JSON
    python benchmarks/bench_gateway_throughput.py --quick     # CI smoke + gates
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List

from repro.config import SystemConfig
from repro.core.system import MedicalDataSharingSystem
from repro.gateway import ReadViewRequest, SharingGateway, UpdateEntryRequest
from repro.obs import Tracer
from repro.workloads.topology import TopologySpec, build_topology_system

DEFAULT_TENANTS = 8
DEFAULT_ROUNDS = 2
DEFAULT_INTERVAL = 2.0


def _build(tenants: int, interval: float) -> MedicalDataSharingSystem:
    return build_topology_system(TopologySpec(patients=tenants, researchers=0),
                                 SystemConfig.private_chain(interval))


def _tenant_tables(system: MedicalDataSharingSystem) -> Dict[str, str]:
    """peer name → the metadata id of its patient↔doctor shared table."""
    tables = {}
    for metadata_id in system.agreement_ids:
        patient_id = metadata_id.split(":")[1]
        tables[f"patient-{patient_id}"] = metadata_id
    return tables


def _write_events(tables: Dict[str, str], rounds: int) -> List[Dict[str, object]]:
    """The identical per-tenant update stream both systems replay."""
    events = []
    for round_index in range(rounds):
        for peer, metadata_id in sorted(tables.items()):
            patient_id = int(metadata_id.split(":")[1])
            events.append({
                "peer": peer,
                "metadata_id": metadata_id,
                "key": (patient_id,),
                "updates": {"clinical_data": f"CliD-{patient_id}-r{round_index}"},
                "round": round_index,
            })
    return events


def run_gateway_throughput_comparison(tenants: int = DEFAULT_TENANTS,
                                      rounds: int = DEFAULT_ROUNDS,
                                      interval: float = DEFAULT_INTERVAL,
                                      reads_per_write: int = 2) -> Dict[str, object]:
    """Run both systems over the same workload; returns the JSON-able result."""
    # --- sequential baseline: one protocol run (two consensus rounds) per update.
    sequential = _build(tenants, interval)
    events = _write_events(_tenant_tables(sequential), rounds)
    start = sequential.simulator.clock.now()
    for event in events:
        trace = sequential.coordinator.update_shared_entry(
            event["peer"], event["metadata_id"], event["key"], event["updates"])
        assert trace.succeeded
    sequential_seconds = sequential.simulator.clock.now() - start
    sequential_throughput = len(events) / sequential_seconds

    # --- gateway: same writes batched per round, plus read traffic that
    # exercises the view cache between commits.
    batched = _build(tenants, interval)
    gateway = SharingGateway(batched, max_batch_size=tenants)
    tables = _tenant_tables(batched)
    sessions = {peer: gateway.open_session(peer) for peer in tables}
    start = batched.simulator.clock.now()
    responses = []
    for round_index in range(rounds):
        for _ in range(reads_per_write):
            for peer, metadata_id in sorted(tables.items()):
                gateway.submit(sessions[peer], ReadViewRequest(metadata_id))
        for event in events:
            if event["round"] != round_index:
                continue
            responses.append(gateway.submit(
                sessions[event["peer"]],
                UpdateEntryRequest(metadata_id=event["metadata_id"],
                                   key=event["key"], updates=event["updates"])))
        gateway.drain()
    batched_seconds = batched.simulator.clock.now() - start
    assert all(response.ok for response in responses)
    assert batched.all_shared_tables_consistent()
    batched_throughput = len(events) / batched_seconds

    metrics = gateway.metrics()
    return {
        "tenants": tenants,
        "rounds": rounds,
        "writes": len(events),
        "block_interval": interval,
        "sequential": {
            "simulated_seconds": sequential_seconds,
            "throughput": sequential_throughput,
            "consensus_rounds": 2 * len(events),
        },
        "batched": {
            "simulated_seconds": batched_seconds,
            "throughput": batched_throughput,
            "consensus_rounds": metrics["batches"]["consensus_rounds"],
            "batches": metrics["batches"]["committed"],
            "mean_batch_size": metrics["batches"]["mean_size"],
        },
        "speedup": batched_throughput / sequential_throughput,
        "cache_hit_rate": metrics["cache"]["hit_rate"],
        "per_tenant_p95": {tenant: stats["p95"]
                           for tenant, stats in metrics["tenants"].items()},
    }


def _run_batched_workload(tenants: int, rounds: int, interval: float,
                          trace: bool) -> Dict[str, object]:
    """One batched-gateway run of the shared write workload, timed both on
    the simulated clock and the wall clock; ``trace`` attaches a pipeline
    tracer (the thing whose cost is being measured)."""
    system = _build(tenants, interval)
    tracer = Tracer(system.simulator.clock) if trace else None
    gateway = SharingGateway(system, max_batch_size=tenants, tracer=tracer)
    tables = _tenant_tables(system)
    sessions = {peer: gateway.open_session(peer) for peer in tables}
    events = _write_events(tables, rounds)
    start_sim = system.simulator.clock.now()
    start_wall = time.perf_counter()
    for round_index in range(rounds):
        for event in events:
            if event["round"] != round_index:
                continue
            response = gateway.submit(
                sessions[event["peer"]],
                UpdateEntryRequest(metadata_id=event["metadata_id"],
                                   key=event["key"], updates=event["updates"]))
            assert response.status is not None
        gateway.drain()
    wall_seconds = time.perf_counter() - start_wall
    sim_seconds = system.simulator.clock.now() - start_sim
    assert system.all_shared_tables_consistent()
    return {
        "writes": len(events),
        "sim_seconds": sim_seconds,
        "wall_seconds": wall_seconds,
        "spans_recorded": len(tracer) if tracer is not None else 0,
    }


def run_tracing_overhead_check(tenants: int = DEFAULT_TENANTS,
                               rounds: int = DEFAULT_ROUNDS,
                               interval: float = DEFAULT_INTERVAL) -> Dict[str, object]:
    """Identical workload, tracer off vs on; gate on simulated throughput.

    The tracer must be zero-cost on the simulated timeline (it only reads
    the clock), so ``sim_ratio`` — traced throughput over untraced — is the
    ≤5% overhead gate (``>= 0.95``).  Wall-clock numbers are included for
    the curious but host-dependent, so nothing asserts on them.
    """
    off = _run_batched_workload(tenants, rounds, interval, trace=False)
    on = _run_batched_workload(tenants, rounds, interval, trace=True)
    throughput_off = off["writes"] / off["sim_seconds"]
    throughput_on = on["writes"] / on["sim_seconds"]
    sim_ratio = throughput_on / throughput_off
    wall_overhead = ((on["wall_seconds"] - off["wall_seconds"])
                     / off["wall_seconds"]) if off["wall_seconds"] > 0 else 0.0
    return {
        "tenants": tenants,
        "rounds": rounds,
        "writes": off["writes"],
        "sim_throughput_off": throughput_off,
        "sim_throughput_on": throughput_on,
        "sim_ratio": sim_ratio,
        "wall_seconds_off": off["wall_seconds"],
        "wall_seconds_on": on["wall_seconds"],
        "wall_overhead": wall_overhead,
        "spans_recorded": on["spans_recorded"],
        "within_bound": sim_ratio >= 0.95,
    }


def test_gateway_batched_throughput_vs_sequential(emit):
    """Batched commits must be ≥3× the sequential baseline at 8 tenants."""
    result = run_gateway_throughput_comparison()
    emit("E11_gateway_throughput", json.dumps(result, indent=2, sort_keys=True))
    assert result["writes"] == DEFAULT_TENANTS * DEFAULT_ROUNDS
    assert result["speedup"] >= 3.0
    # The read traffic between commits must actually hit the cache ...
    assert result["cache_hit_rate"] > 0.3
    # ... and every tenant's latency distribution is reported.
    assert len(result["per_tenant_p95"]) == DEFAULT_TENANTS
    assert all(p95 > 0 for p95 in result["per_tenant_p95"].values())


def test_gateway_batch_size_scaling(emit):
    """Larger batches amortise consensus rounds: fewer rounds, more throughput."""
    rows = []
    throughputs = []
    for tenants in (2, 4, 8):
        result = run_gateway_throughput_comparison(tenants=tenants, rounds=1)
        throughputs.append(result["batched"]["throughput"])
        rows.append((tenants, result["writes"],
                     round(result["batched"]["throughput"], 4),
                     round(result["speedup"], 2)))
    emit("E11_gateway_batch_scaling", json.dumps(
        [{"tenants": row[0], "writes": row[1], "throughput": row[2],
          "speedup": row[3]} for row in rows], indent=2))
    # Throughput grows with the number of batchable tenants.
    assert throughputs[-1] > throughputs[0]


def test_tracing_overhead_within_bound(emit):
    """Tracing the whole pipeline must keep ≥95% of simulated throughput."""
    result = run_tracing_overhead_check(rounds=1)
    emit("E12_tracing_overhead", json.dumps(result, indent=2, sort_keys=True))
    # The traced run actually traced something ...
    assert result["spans_recorded"] > 0
    # ... and cost (at most) 5% of simulated throughput.  The tracer never
    # advances the simulated clock, so the ratio should be exactly 1.0.
    assert result["sim_ratio"] >= 0.95


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=DEFAULT_TENANTS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--interval", type=float, default=DEFAULT_INTERVAL)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: one-round comparison plus the "
                             "tracing-overhead gate, combined JSON")
    args = parser.parse_args()
    if args.quick:
        comparison = run_gateway_throughput_comparison(
            tenants=args.tenants, rounds=1, interval=args.interval)
        overhead = run_tracing_overhead_check(
            tenants=args.tenants, rounds=1, interval=args.interval)
        print(json.dumps({"throughput": comparison,
                          "tracing_overhead": overhead},
                         indent=2, sort_keys=True))
        return 0 if (comparison["speedup"] >= 3.0
                     and overhead["within_bound"]) else 1
    result = run_gateway_throughput_comparison(
        tenants=args.tenants, rounds=args.rounds, interval=args.interval)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["speedup"] >= 3.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
