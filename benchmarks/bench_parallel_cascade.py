"""E17 — parallel cascades + join deltas: fan-out propagation over lanes.

The seed runs every cascade leg sequentially: a change that fans out to N
dependent views pays 2·N consensus rounds (one request round and one
acknowledgement round per leg), even when the legs target independent
shared tables on independent consensus lanes.  The parallel cascade path
(``SystemConfig.parallel_cascades``) commits all legs of one cascade
through *shared* request/ack rounds and runs their ledger-free middles on
executor threads grouped by consensus lane — 2 rounds per cascade instead
of 2·N — while merging deterministically so the post-state is byte-identical
to the sequential oracle.

The workload is cascade-heavy by construction (see
:func:`repro.workloads.topology.build_join_topology_system`): a hospital
shares the doctor's whole D3 keyed by patient id, and the doctor's
per-patient views are **join-backed** (σ_patient(D3) ⋈ medications,
enriched with the guideline column).  Each round the hospital batch-updates
``mechanism_of_action`` for every patient on a medication — one multi-row
diff, one cascade, one leg per affected patient view, each leg translated
by the keyed-join delta rules — and a few patients write ``clinical_data``
back through the join's backward direction.

Three configurations run the identical workload:

* **parallel + delta** — the measured pipeline;
* **sequential + delta** — ``parallel_cascades=False``, the oracle the
  speedup gate compares against (simulated seconds);
* **parallel + full** — ``delta_propagation=False``, every leg recomputed
  by full get/put (the delta-vs-full A/B: same fingerprints, zero delta
  translations).

Gates: ≥2× simulated-time speedup of parallel over sequential, byte-identical
``Table.fingerprint()`` for every peer table across all three runs, and zero
``DeltaUnsupported`` fallbacks in the delta runs (the keyed-join steady state
never falls back to full recomputation).

Runnable two ways::

    python -m pytest benchmarks/bench_parallel_cascade.py           # asserts ≥2×
    python -m pytest benchmarks/bench_parallel_cascade.py --quick   # CI smoke
    python benchmarks/bench_parallel_cascade.py --json              # prints JSON
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict

from repro.config import ConsensusConfig, LedgerConfig, NetworkConfig, SystemConfig
from repro.core.system import MedicalDataSharingSystem
from repro.gateway import SharingGateway, UpdateEntryRequest
from repro.workloads.topology import (
    HOSPITAL_TABLE_ID,
    TopologySpec,
    build_join_topology_system,
    patients_by_medication,
)

DEFAULT_PATIENTS = 12
DEFAULT_MEDICATIONS = 3
#: 5 shards = 4 *data* lanes + the reserved control lane 0; the per-patient
#: metadata ids spread the cascade legs over the data lanes.
DEFAULT_SHARDS = 5
FULL_ROUNDS = 2
QUICK_ROUNDS = 1
BLOCK_INTERVAL = 2.0
#: Patient-id base whose medication groups spread their legs over several
#: data lanes of the 5-shard hash (a representative placement).
FIRST_PATIENT_ID = 1_008
#: The acceptance gate: parallel cascades must commit the same fan-out
#: workload in at most half the simulated time of the sequential oracle.
TARGET_SPEEDUP = 2.0


def _config(shards: int, parallel: bool, delta: bool) -> SystemConfig:
    return SystemConfig(
        ledger=LedgerConfig(
            consensus=ConsensusConfig(kind="poa", block_interval=BLOCK_INTERVAL),
            max_transactions_per_block=16,
            consensus_shards=shards,
        ),
        # Near-zero transport latency isolates consensus rounds: the simulated
        # clock then measures block intervals, not gossip hops.
        network=NetworkConfig(base_latency=0.002, latency_jitter=0.001),
        parallel_cascades=parallel,
        delta_propagation=delta,
    )


def _build(patients: int, medications: int, shards: int,
           parallel: bool, delta: bool) -> MedicalDataSharingSystem:
    return build_join_topology_system(
        TopologySpec(patients=patients, researchers=0,
                     distinct_medications=medications,
                     first_patient_id=FIRST_PATIENT_ID),
        _config(shards, parallel, delta),
    )


def _fingerprints(system: MedicalDataSharingSystem) -> Dict[str, str]:
    return {
        f"{peer.name}:{table_name}": peer.database.table(table_name).fingerprint()
        for peer in system.peers
        for table_name in sorted(peer.database.table_names)
    }


def _manager_totals(system: MedicalDataSharingSystem) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for name in system.peer_names:
        for key, value in system.server_app(name).manager.statistics.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _run_workload(system: MedicalDataSharingSystem, rounds: int) -> Dict[str, object]:
    """The fan-out workload: per-medication hospital batches (each one
    cascade with one leg per patient on that medication) plus per-round
    patient ``clinical_data`` write-backs through the join's put direction."""
    gateway = SharingGateway(system, max_batch_size=32)
    hospital = gateway.open_session("hospital")
    groups = patients_by_medication(system)
    patient_sessions = {
        patient_id: gateway.open_session(f"patient-{patient_id}")
        for patient_ids in groups.values() for patient_id in patient_ids
    }
    responses = []
    start = system.simulator.clock.now()
    wall_start = time.perf_counter()
    for round_index in range(rounds):
        for medication, patient_ids in groups.items():
            # One batched hospital update per medication: k same-table edits
            # fold into one multi-row diff and one k-leg cascade.
            for patient_id in patient_ids:
                responses.append(gateway.submit(hospital, UpdateEntryRequest(
                    metadata_id=HOSPITAL_TABLE_ID, key=(patient_id,),
                    updates={"mechanism_of_action":
                             f"MeA-{medication}-r{round_index}"})))
            gateway.drain()
        # Patient write-backs: the first patient of every medication group
        # edits clinical_data, reflected at the doctor through the join
        # lens's backward delta (read-only enrichment columns untouched).
        for medication, patient_ids in groups.items():
            patient_id = patient_ids[0]
            responses.append(gateway.submit(
                patient_sessions[patient_id],
                UpdateEntryRequest(metadata_id=f"D13&D31:{patient_id}",
                                   key=(patient_id,),
                                   updates={"clinical_data":
                                            f"CliD-{patient_id}-r{round_index}"})))
        gateway.drain()
    elapsed = system.simulator.clock.now() - start
    wall_seconds = time.perf_counter() - wall_start
    assert all(response.ok for response in responses)
    assert system.all_shared_tables_consistent()
    metrics = gateway.metrics()
    totals = _manager_totals(system)
    return {
        "writes": len(responses),
        "cascade_legs": sum(len(ids) for ids in groups.values()) * rounds,
        "simulated_seconds": elapsed,
        "wall_seconds": wall_seconds,
        "throughput": len(responses) / elapsed,
        "consensus_rounds": metrics["batches"]["consensus_rounds"],
        "delta_get_invocations": totals["delta_get_invocations"],
        "delta_put_invocations": totals["delta_put_invocations"],
        "full_put_invocations": totals["put_invocations"],
        "delta_fallbacks": totals["delta_fallbacks"],
        "shards": metrics["shards"],
    }


def run_parallel_cascade_comparison(patients: int = DEFAULT_PATIENTS,
                                    medications: int = DEFAULT_MEDICATIONS,
                                    shards: int = DEFAULT_SHARDS,
                                    rounds: int = FULL_ROUNDS) -> Dict[str, object]:
    """Parallel vs sequential cascades and delta vs full recompute over the
    identical fan-out workload; returns a JSON-able result."""
    parallel_system = _build(patients, medications, shards, parallel=True, delta=True)
    parallel = _run_workload(parallel_system, rounds)
    parallel_prints = _fingerprints(parallel_system)

    sequential_system = _build(patients, medications, shards, parallel=False, delta=True)
    sequential = _run_workload(sequential_system, rounds)
    sequential_prints = _fingerprints(sequential_system)
    assert parallel_prints == sequential_prints, (
        "parallel cascades diverged from the sequential oracle: "
        f"{[k for k in sequential_prints if sequential_prints[k] != parallel_prints.get(k)]}"
    )

    full_system = _build(patients, medications, shards, parallel=True, delta=False)
    full = _run_workload(full_system, rounds)
    assert _fingerprints(full_system) == parallel_prints, (
        "delta propagation diverged from the full-recompute oracle")

    groups = patients_by_medication(parallel_system)
    return {
        "experiment": "E17_parallel_cascade",
        "workload": (f"{patients} patients / {medications} medications x "
                     f"{rounds} round(s): per-medication hospital fan-out "
                     "batches + patient write-backs over join-backed views"),
        "patients": patients,
        "medications": {m: len(ids) for m, ids in groups.items()},
        "shards": shards,
        "rounds": rounds,
        "block_interval": BLOCK_INTERVAL,
        "parallel": parallel,
        "sequential": sequential,
        "full_recompute": full,
        "speedup": sequential["simulated_seconds"] / parallel["simulated_seconds"],
        "intervals_cut": (sequential["shards"]["lanes"]["intervals"]
                          - parallel["shards"]["lanes"]["intervals"]),
        "fingerprints_identical": True,
        "delta_fallbacks": parallel["delta_fallbacks"] + sequential["delta_fallbacks"],
    }


def test_parallel_cascade_speedup_and_fingerprints(emit, quick):
    """Parallel cascades must commit the fan-out workload ≥2× faster (in
    simulated seconds) than the sequential oracle with byte-identical
    post-state fingerprints on every peer, zero ``DeltaUnsupported``
    fallbacks in the keyed-join steady state, and the full-recompute run
    (delta off) must agree too."""
    rounds = QUICK_ROUNDS if quick else FULL_ROUNDS
    result = run_parallel_cascade_comparison(rounds=rounds)
    emit("E17_parallel_cascade", json.dumps(result, indent=2, sort_keys=True))
    assert result["fingerprints_identical"]
    assert result["speedup"] >= TARGET_SPEEDUP
    # The keyed-join steady state never falls back to full recomputation.
    assert result["delta_fallbacks"] == 0
    # The deltas did the propagation work in the delta runs ...
    assert result["parallel"]["delta_get_invocations"] > 0
    assert result["parallel"]["delta_put_invocations"] > 0
    # ... and the full-recompute run did none (it full-put every leg).
    assert result["full_recompute"]["delta_put_invocations"] == 0
    assert result["full_recompute"]["full_put_invocations"] > 0
    # Fewer mining intervals is *where* the simulated time went: the legs'
    # request/ack rounds collapsed into shared intervals across lanes.
    assert result["intervals_cut"] > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=DEFAULT_PATIENTS)
    parser.add_argument("--medications", type=int, default=DEFAULT_MEDICATIONS)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--rounds", type=int, default=FULL_ROUNDS)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced CI smoke round count")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON result (default)")
    args = parser.parse_args()
    rounds = QUICK_ROUNDS if args.quick else args.rounds
    result = run_parallel_cascade_comparison(
        patients=args.patients, medications=args.medications,
        shards=args.shards, rounds=rounds)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["speedup"] >= TARGET_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
