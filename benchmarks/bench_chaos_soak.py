"""E16 — chaos soak: fault-injection convergence and latency-aware shedding.

Two gates, both over the seeded deterministic fault machinery in
:mod:`repro.chaos`:

**Convergence.**  :func:`repro.cli.run_chaos_soak` drives the identical
multi-tenant update workload twice — once fault-free (the oracle), once under
the default soak plan (message drops, WAL append/fsync errors, slow and
failing consensus rounds, one patient-node crash/restart window) with
retries, circuit breakers and parked-message replay switched on.  The
faulted run must end with **byte-identical relational state fingerprints**
(:meth:`MedicalDataSharingSystem.state_fingerprints` — block timestamps
deliberately excluded, since retry backoffs legitimately stretch the faulted
clock), converged chain lengths, every admitted request terminal, and every
shared table consistent across its subscribers.

**Overload.**  A driver admits writes faster than batches clear them (one
commit per ``COMMIT_EVERY`` arrivals against batches of ``BATCH_SIZE``), so
backlog genuinely accumulates.  With queue-depth-only shedding the backlog
runs to capacity and committed-write p99 grows with the run; with a
commit-latency target the :class:`~repro.gateway.LatencyShedder` (windowed
p99 + predicted queueing delay) sheds at admission instead.  The gate: the
latency-driven run keeps committed-write p99 within ``P99_BOUND_FACTOR`` ×
target while the depth-only run blows through it.

Runnable two ways::

    python -m pytest benchmarks/bench_chaos_soak.py           # full gates
    python -m pytest benchmarks/bench_chaos_soak.py --quick   # CI smoke
    python benchmarks/bench_chaos_soak.py --json              # prints JSON
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, Optional

from repro.cli import run_chaos_soak
from repro.config import SystemConfig
from repro.gateway import SharingGateway, UpdateEntryRequest
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.updates import UpdateStreamGenerator

# Convergence gate sizes (soak rounds; one write per tenant per round).
FULL_ROUNDS = 12
QUICK_ROUNDS = 6
SOAK_TENANTS = 4
SOAK_SEED = 23

# Overload gate: arrivals paced ARRIVAL_GAP sim-seconds apart, one commit per
# COMMIT_EVERY arrivals against batches of BATCH_SIZE — each cycle adds
# (COMMIT_EVERY - BATCH_SIZE) writes of backlog, a sustained overload.
FULL_ARRIVALS = 480
QUICK_ARRIVALS = 240
OVERLOAD_TENANTS = 6
ARRIVAL_GAP = 0.2
COMMIT_EVERY = 16
BATCH_SIZE = 8
QUEUE_CAPACITY = 256
#: Commit-latency p99 target (simulated seconds) for the latency-driven run.
LATENCY_TARGET = 8.0
#: Acceptance gate: the latency-driven run's committed-write p99 stays within
#: this multiple of the target; the depth-only run must exceed it.
P99_BOUND_FACTOR = 3.0


def _max_committed_p99(metrics: Dict[str, Any]) -> float:
    """Worst per-tenant p99 over committed writes (the workload is
    write-only, so tenant latency collectors see no read samples)."""
    return max((stats["p99"] for stats in metrics["tenants"].values()
                if stats["count"]), default=0.0)


def _overload_run(latency_target: Optional[float], arrivals: int,
                  seed: int = SOAK_SEED) -> Dict[str, Any]:
    """One overload run; ``latency_target=None`` is the depth-only baseline.

    Arrival pacing uses relative ``clock.advance`` (not ``advance_to`` over a
    precomputed trace): batch mining advances the shared simulated clock, so
    absolute arrival times would collapse into the past and queueing delay
    would vanish from the measurement.
    """
    system = build_topology_system(
        TopologySpec(patients=OVERLOAD_TENANTS, researchers=0, seed=seed),
        SystemConfig.private_chain(1.0))
    gateway = SharingGateway(system, max_batch_size=BATCH_SIZE,
                             max_queue_depth=QUEUE_CAPACITY,
                             latency_target=latency_target)
    updates = UpdateStreamGenerator(system, seed=seed)
    names = sorted(peer.name for peer in system.peers if peer.role == "Patient")
    sessions = {name: gateway.open_session(name) for name in names}
    clock = system.simulator.clock
    for index in range(arrivals):
        clock.advance(ARRIVAL_GAP)
        name = names[index % len(names)]
        metadata_id = system.peer(name).agreement_ids[0]
        event = updates.event_for(metadata_id, peer=name)
        gateway.submit(sessions[name], UpdateEntryRequest(
            metadata_id=metadata_id, key=event.key, updates=event.updates))
        if (index + 1) % COMMIT_EVERY == 0:
            gateway.commit_once()
    gateway.drain()
    gateway.close()
    metrics = gateway.metrics()
    statuses = metrics["requests"]["by_status"]
    return {
        "latency_target": latency_target,
        "arrivals": arrivals,
        "committed_p99": _max_committed_p99(metrics),
        "writes_committed": metrics["batches"]["writes_committed"],
        "shed_by_reason": metrics["resilience"]["shed_by_reason"],
        "statuses": statuses,
        "all_terminal": statuses.get("queued", 0) == 0,
    }


def run_chaos_bench(rounds: int = FULL_ROUNDS, arrivals: int = FULL_ARRIVALS,
                    events_out: Optional[str] = None) -> Dict[str, Any]:
    """Both gates; returns a JSON-able result with an overall ``ok``."""
    oracle = run_chaos_soak(tenants=SOAK_TENANTS, rounds=rounds,
                            seed=SOAK_SEED, inject=False)
    faulted = run_chaos_soak(tenants=SOAK_TENANTS, rounds=rounds,
                             seed=SOAK_SEED, inject=True,
                             events_out=events_out)
    fingerprints_identical = (
        json.dumps(oracle["fingerprints"], sort_keys=True).encode()
        == json.dumps(faulted["fingerprints"], sort_keys=True).encode())
    chains_converged = (
        len(set(faulted["chain_lengths"].values())) == 1
        and faulted["chain_lengths"] == oracle["chain_lengths"])
    convergence = {
        "rounds": rounds,
        "fingerprints_identical": fingerprints_identical,
        "chains_converged": chains_converged,
        "all_terminal": oracle["all_terminal"] and faulted["all_terminal"],
        "shared_tables_consistent": faulted["shared_tables_consistent"],
        "fault_events": faulted["fault_events"],
        "events_by_kind": faulted["events_by_kind"],
        "messages_retransmitted": faulted["transport"]["retransmits"],
        "messages_lost": faulted["transport"]["lost"],
        "oracle_statuses": oracle["statuses"],
        "faulted_statuses": faulted["statuses"],
    }
    convergence["ok"] = (fingerprints_identical and chains_converged
                         and convergence["all_terminal"]
                         and convergence["shared_tables_consistent"]
                         and faulted["fault_events"] > 0)

    depth_only = _overload_run(None, arrivals)
    latency_aware = _overload_run(LATENCY_TARGET, arrivals)
    bound = P99_BOUND_FACTOR * LATENCY_TARGET
    overload = {
        "arrivals": arrivals,
        "latency_target": LATENCY_TARGET,
        "p99_bound": bound,
        "depth_only": depth_only,
        "latency_aware": latency_aware,
        "ok": (latency_aware["committed_p99"] <= bound
               and depth_only["committed_p99"] > bound
               and latency_aware["writes_committed"] > 0
               and depth_only["all_terminal"]
               and latency_aware["all_terminal"]),
    }
    result: Dict[str, Any] = {
        "experiment": "E16_chaos_soak",
        "convergence": convergence,
        "overload": overload,
        "ok": convergence["ok"] and overload["ok"],
    }
    if events_out is not None:
        result["events_path"] = str(events_out)
        result["events_written"] = faulted.get("events_written")
    return result


def test_chaos_soak_convergence_and_shedding(emit, quick):
    """Faulted soak must converge byte-identically to the fault-free oracle,
    and the latency-driven shedder must hold committed-write p99 within the
    bound under an overload that blows past it with depth-only shedding."""
    rounds = QUICK_ROUNDS if quick else FULL_ROUNDS
    arrivals = QUICK_ARRIVALS if quick else FULL_ARRIVALS
    result = run_chaos_bench(rounds=rounds, arrivals=arrivals)
    emit("E16_chaos_soak", json.dumps(result, indent=2, sort_keys=True))
    convergence = result["convergence"]
    assert convergence["fingerprints_identical"], (
        "faulted run's relational state diverged from the fault-free oracle")
    assert convergence["chains_converged"], "chain lengths diverged"
    assert convergence["all_terminal"], "a submitted request never turned terminal"
    assert convergence["shared_tables_consistent"]
    assert convergence["fault_events"] > 0, "no fault ever fired"
    assert convergence["messages_lost"] == 0, (
        "a dropped message was never retransmitted (silent loss)")
    overload = result["overload"]
    bound = overload["p99_bound"]
    assert overload["latency_aware"]["committed_p99"] <= bound, (
        f"latency-aware p99 {overload['latency_aware']['committed_p99']:.1f}s "
        f"exceeds the {bound:.0f}s bound")
    assert overload["depth_only"]["committed_p99"] > bound, (
        "depth-only shedding unexpectedly held the bound — the workload is "
        "not an overload; raise the arrival pressure")
    assert overload["latency_aware"]["writes_committed"] > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=FULL_ROUNDS)
    parser.add_argument("--arrivals", type=int, default=FULL_ARRIVALS)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced CI smoke workload")
    parser.add_argument("--events-out", default=None,
                        help="write the faulted run's fault events as JSONL")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON result (default)")
    args = parser.parse_args()
    rounds = QUICK_ROUNDS if args.quick else args.rounds
    arrivals = QUICK_ARRIVALS if args.quick else args.arrivals
    result = run_chaos_bench(rounds=rounds, arrivals=arrivals,
                             events_out=args.events_out)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
