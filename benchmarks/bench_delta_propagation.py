"""E12 — delta propagation: single-row edits against large shared tables.

The Fig. 5 propagation leg of the seed re-ran every BX ``get``/``put`` over
whole tables, so a one-row dosage update against a 10k-row shared table cost
O(rows) at every leg.  The delta engine (``repro.bx.delta``) pushes the
row-level ``TableDiff`` through every lens, index and cache instead, making
the leg O(changed rows).

This experiment drives the *same* cascading single-row updates (researcher →
STUDY → doctor's D3 → CARE → patient, the paper's Fig. 5 narrative) through

* the **full-recompute path** — ``SystemConfig.delta_propagation=False``,
  exactly the seed behaviour; and
* the **delta path** — the default configuration,

over a grid of base-table sizes, and reports wall-clock time per edit, the
speedup, and the correctness oracle: after each run, every table of every
peer must have a byte-identical ``Table.fingerprint()`` across the two
paths.  Runnable two ways::

    python -m pytest benchmarks/bench_delta_propagation.py            # asserts ≥5x at 10k rows
    python -m pytest benchmarks/bench_delta_propagation.py --quick    # reduced grid (CI smoke)
    python benchmarks/bench_delta_propagation.py --json               # prints JSON
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace
from typing import Dict, List

from repro.config import SystemConfig
from repro.core.scenario import STUDY_TABLE, build_extended_scenario
from repro.core.system import MedicalDataSharingSystem

FULL_SIZES = (1_000, 10_000)
QUICK_SIZES = (200, 1_000)
DEFAULT_EDITS = 5
BLOCK_INTERVAL = 2.0
#: The acceptance gate, asserted at the largest size of the *full* grid
#: (10k rows), where the measured margin is comfortable (>10x locally).
TARGET_SPEEDUP = 5.0
#: The --quick (CI smoke) grid tops out at 1k rows where the honest win is
#: ~5-7x — too close to 5.0 to gate on a noisy shared runner.  Quick mode
#: keeps the full correctness oracle (fingerprint equality) and only smoke-
#: checks that the delta path wins at all.
QUICK_TARGET_SPEEDUP = 1.5

MEDICATIONS = ("Ibuprofen", "Wellbutrin", "Aspirin", "Metformin")


def _records(rows: int) -> List[Dict[str, object]]:
    """``rows`` synthetic full records; the mechanism/mode of action stay
    functionally determined by the medication name (the D2 invariant)."""
    records = []
    for index in range(rows):
        medication = MEDICATIONS[index % len(MEDICATIONS)]
        records.append({
            "patient_id": 1_000 + index,
            "medication_name": medication,
            "clinical_data": f"CliD-{index}",
            "address": f"Addr-{index}",
            "dosage": f"{(index % 4) + 1} tablets daily",
            "mechanism_of_action": f"MeA-{medication}",
            "mode_of_action": f"MoA-{medication}",
        })
    return records


def _build(rows: int, delta: bool) -> MedicalDataSharingSystem:
    config = SystemConfig.private_chain(BLOCK_INTERVAL)
    if not delta:
        config = replace(config, delta_propagation=False)
    return build_extended_scenario(config, records=_records(rows))


def _run_edits(system: MedicalDataSharingSystem, edits: int) -> float:
    """Run ``edits`` cascading single-row dosage updates; returns seconds."""
    started = time.perf_counter()
    for edit in range(edits):
        patient_id = 1_000 + edit
        trace = system.coordinator.update_shared_entry(
            "researcher", STUDY_TABLE, (patient_id,),
            {"dosage": f"delta-bench dose r{edit}"})
        assert trace.succeeded
    return time.perf_counter() - started


def _fingerprints(system: MedicalDataSharingSystem) -> Dict[str, str]:
    return {
        f"{peer.name}:{table_name}": peer.database.table(table_name).fingerprint()
        for peer in system.peers
        for table_name in sorted(peer.database.table_names)
    }


def run_delta_propagation_comparison(sizes=FULL_SIZES,
                                     edits: int = DEFAULT_EDITS) -> Dict[str, object]:
    """Run both paths over the size grid; returns the JSON-able result."""
    grid = []
    for rows in sizes:
        full_system = _build(rows, delta=False)
        full_seconds = _run_edits(full_system, edits)

        delta_system = _build(rows, delta=True)
        delta_seconds = _run_edits(delta_system, edits)

        full_prints = _fingerprints(full_system)
        delta_prints = _fingerprints(delta_system)
        assert full_prints == delta_prints, (
            f"delta path diverged from full recompute at {rows} rows: "
            f"{[k for k in full_prints if full_prints[k] != delta_prints.get(k)]}"
        )

        researcher_stats = delta_system.server_app("researcher").manager.statistics
        doctor_stats = delta_system.server_app("doctor").manager.statistics
        grid.append({
            "rows": rows,
            "edits": edits,
            "full_seconds": full_seconds,
            "delta_seconds": delta_seconds,
            "full_ms_per_edit": 1_000 * full_seconds / edits,
            "delta_ms_per_edit": 1_000 * delta_seconds / edits,
            "speedup": full_seconds / delta_seconds,
            "fingerprints_identical": True,
            "delta_puts": researcher_stats["delta_put_invocations"]
                          + doctor_stats["delta_put_invocations"],
            "delta_fallbacks": researcher_stats["delta_fallbacks"]
                               + doctor_stats["delta_fallbacks"],
            "delta_verifications": researcher_stats["delta_verifications"]
                                   + doctor_stats["delta_verifications"],
        })
    return {
        "experiment": "E12_delta_propagation",
        "workload": "cascading single-row dosage updates (Fig. 5 narrative)",
        "sizes": list(sizes),
        "grid": grid,
        "largest": grid[-1],
    }


def test_delta_propagation_speedup_and_fingerprints(emit, quick):
    """The delta path must be ≥5× the full-recompute path for single-row
    edits at the largest grid size, with byte-identical table fingerprints
    across the whole grid (asserted inside the run)."""
    sizes = QUICK_SIZES if quick else FULL_SIZES
    result = run_delta_propagation_comparison(sizes=sizes)
    emit("E12_delta_propagation", json.dumps(result, indent=2, sort_keys=True))
    largest = result["largest"]
    assert all(point["fingerprints_identical"] for point in result["grid"])
    assert all(point["delta_puts"] > 0 for point in result["grid"])
    assert largest["speedup"] >= (QUICK_TARGET_SPEEDUP if quick else TARGET_SPEEDUP)
    if not quick:
        # The win grows with table size: the delta path is O(changed rows),
        # the full path O(rows).
        speedups = [point["speedup"] for point in result["grid"]]
        assert speedups[-1] > speedups[0]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=list(FULL_SIZES))
    parser.add_argument("--edits", type=int, default=DEFAULT_EDITS)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced CI smoke grid")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON result (default)")
    args = parser.parse_args()
    sizes = list(QUICK_SIZES) if args.quick else args.sizes
    result = run_delta_propagation_comparison(sizes=sizes, edits=args.edits)
    print(json.dumps(result, indent=2, sort_keys=True))
    target = QUICK_TARGET_SPEEDUP if args.quick else TARGET_SPEEDUP
    return 0 if result["largest"]["speedup"] >= target else 1


if __name__ == "__main__":
    raise SystemExit(main())
