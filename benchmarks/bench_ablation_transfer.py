"""E11 — Ablation: diff-based vs snapshot-based shared-data transfer.

The architecture (Fig. 2) only says peers "send updated data"; this
reproduction transfers row-level diffs by default and falls back to full
snapshots.  The ablation quantifies the difference as the shared table grows:
diff transfer stays proportional to the change, snapshot transfer grows with
the table.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core.scenario import STUDY_TABLE, build_extended_scenario
from repro.metrics.reporting import format_table
from repro.workloads.generator import MedicalRecordGenerator

BLOCK_INTERVAL = 2.0


def _run_update(records, mode: str):
    """Run one dosage update transferring either a diff or a full snapshot."""
    system = build_extended_scenario(SystemConfig.private_chain(BLOCK_INTERVAL),
                                     records=records)
    if mode == "snapshot":
        # Force the fallback: drop the recorded outgoing diff before serving.
        researcher_app = system.server_app("researcher")
        original = researcher_app.serve_shared_data

        def serve_snapshot(metadata_id, requester, mode="diff"):
            researcher_app.outgoing_diffs.pop(metadata_id, None)
            return original(metadata_id, requester, mode=mode)

        researcher_app.serve_shared_data = serve_snapshot
    trace = system.coordinator.update_shared_entry(
        "researcher", STUDY_TABLE, (records[0]["patient_id"],),
        {"dosage": "two tablets every 12h"})
    transferred = sum(c.bytes_transferred() for c in system.simulator.channels.channels)
    return trace, transferred


@pytest.mark.parametrize("record_count", [10, 100, 400])
def test_transfer_mode_ablation(benchmark, emit, record_count):
    records = MedicalRecordGenerator(seed=51, first_patient_id=188).records(
        record_count, distinct_medications=12)

    diff_trace, diff_bytes = benchmark(lambda: _run_update(records, "diff"))
    snapshot_trace, snapshot_bytes = _run_update(records, "snapshot")
    emit(f"E11_transfer_{record_count}", format_table(
        ("transfer mode", "channel bytes", "simulated latency (s)"),
        [("row-level diff (default)", diff_bytes, round(diff_trace.elapsed, 2)),
         ("full snapshot (fallback)", snapshot_bytes, round(snapshot_trace.elapsed, 2)),
         ("snapshot / diff ratio", round(snapshot_bytes / max(diff_bytes, 1), 2), "")],
        title=f"Diff vs snapshot transfer with {record_count} shared rows"))
    assert diff_trace.succeeded and snapshot_trace.succeeded
    if record_count >= 100:
        assert snapshot_bytes > 3 * diff_bytes


def test_transfer_mode_series(benchmark, emit):
    """The growth series: diff bytes stay flat, snapshot bytes grow linearly."""
    rows = []
    benchmark.pedantic(
        lambda: _run_update(MedicalRecordGenerator(seed=52, first_patient_id=188).records(10),
                            "diff"),
        rounds=1, iterations=1)
    for record_count in (10, 100, 400):
        records = MedicalRecordGenerator(seed=52, first_patient_id=188).records(
            record_count, distinct_medications=12)
        _, diff_bytes = _run_update(records, "diff")
        _, snapshot_bytes = _run_update(records, "snapshot")
        rows.append((record_count, diff_bytes, snapshot_bytes,
                     round(snapshot_bytes / max(diff_bytes, 1), 2)))
    emit("E11_transfer_series", format_table(
        ("shared rows", "diff bytes", "snapshot bytes", "ratio"),
        rows, title="Ablation: transferred bytes per update vs shared-table size"))
    diff_growth = rows[-1][1] / rows[0][1]
    snapshot_growth = rows[-1][2] / rows[0][2]
    assert snapshot_growth > 3 * diff_growth
