"""E9 — Ablation of the §III-B serialisation rule.

The paper requires that a block contains at most one update transaction per
shared table, and that further operations wait until every sharing peer holds
the newest data.  This ablation disables the miner-side rule and counts how
many conflicting updates would land in the same block — i.e. how many
consistency hazards the rule prevents — and shows the latency cost it adds.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, build_paper_scenario
from repro.metrics.reporting import format_table

BLOCK_INTERVAL = 2.0


def _submit_conflicting_requests(system, count: int):
    """Submit ``count`` raw update requests on the same shared table without
    waiting for acknowledgements, then mine everything."""
    researcher_app = system.server_app("researcher")
    doctor_app = system.server_app("doctor")
    apps = [researcher_app, doctor_app]
    hashes = []
    for index in range(count):
        app = apps[index % 2]
        attribute = "mechanism_of_action" if app is researcher_app else "medication_name"
        tx = app.build_contract_call(
            "request_update",
            {"metadata_id": DOCTOR_RESEARCHER_TABLE,
             "changed_attributes": [attribute], "diff_hash": f"h{index}"})
        system.simulator.submit_transaction(app.node.name, tx)
        hashes.append(tx.tx_hash)
    blocks = system.simulator.mine()
    return hashes, blocks


def _conflict_stats(system, hashes, blocks):
    node = system.server_app("doctor").node
    per_block_counts = {}
    for block in blocks:
        updates_in_block = [tx for tx in block.transactions
                            if tx.method == "request_update"
                            and tx.args.get("metadata_id") == DOCTOR_RESEARCHER_TABLE]
        per_block_counts[block.number] = len(updates_in_block)
    accepted = sum(1 for h in hashes if node.chain.receipt(h).success)
    violations = sum(1 for count in per_block_counts.values() if count > 1)
    return accepted, violations, per_block_counts


@pytest.mark.parametrize("enforce", [True, False])
def test_serialization_rule_ablation(benchmark, emit, enforce):
    def run():
        system = build_paper_scenario(SystemConfig.private_chain(BLOCK_INTERVAL))
        if not enforce:
            for node in system.simulator.nodes:
                if node.miner is not None:
                    node.miner.enforce_serialization = False
        hashes, blocks = _submit_conflicting_requests(system, count=4)
        return system, hashes, blocks

    system, hashes, blocks = benchmark(run)
    accepted, violations, per_block = _conflict_stats(system, hashes, blocks)
    label = "enforced" if enforce else "disabled"
    emit(f"E9_serialization_{label}", format_table(
        ("metric", "value"),
        [("rule", label),
         ("conflicting requests submitted", len(hashes)),
         ("blocks produced", len(blocks)),
         ("requests accepted by the contract", accepted),
         ("blocks with >1 update on the same shared table", violations)],
        title=f"§III-B serialisation rule ({label})"))
    if enforce:
        assert violations == 0
        assert len(blocks) >= 4
    else:
        # Without the rule every request lands in one block; the contract's
        # acknowledgement check is the only remaining guard.
        assert len(blocks) == 1


def test_serialization_summary(benchmark, emit):
    """Side-by-side summary of the ablation."""
    rows = []
    benchmark.pedantic(
        lambda: build_paper_scenario(SystemConfig.private_chain(BLOCK_INTERVAL)),
        rounds=1, iterations=1)
    for enforce in (True, False):
        system = build_paper_scenario(SystemConfig.private_chain(BLOCK_INTERVAL))
        if not enforce:
            for node in system.simulator.nodes:
                if node.miner is not None:
                    node.miner.enforce_serialization = False
        start = system.simulator.clock.now()
        hashes, blocks = _submit_conflicting_requests(system, count=4)
        elapsed = system.simulator.clock.now() - start
        accepted, violations, _ = _conflict_stats(system, hashes, blocks)
        rows.append(("enforced" if enforce else "disabled", len(hashes), len(blocks),
                     accepted, violations, round(elapsed, 1)))
    emit("E9_serialization_summary", format_table(
        ("rule", "requests", "blocks", "accepted", "same-block conflicts", "simulated s"),
        rows, title="Ablation: one update per shared table per block"))
    enforced, disabled = rows
    assert enforced[4] == 0          # no same-block conflicts with the rule
    assert disabled[2] < enforced[2]  # fewer blocks (lower latency) without it
