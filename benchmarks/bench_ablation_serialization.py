"""E9 — Ablation of the §III-B serialisation rule, plus the wire-codec A/B.

The paper requires that a block contains at most one update transaction per
shared table, and that further operations wait until every sharing peer holds
the newest data.  This ablation disables the miner-side rule and counts how
many conflicting updates would land in the same block — i.e. how many
consistency hazards the rule prevents — and shows the latency cost it adds.

The second ablation (E9b) A/Bs the runtime boundary's two wire codecs over
real system payloads — every block and transaction a paper-scenario run
gossips, plus the WAL entries a durable database writes — and gates that the
deterministic binary TLV encoding is strictly smaller than canonical JSON
(wire and on-disk WAL) at a bounded round-trip time overhead, with decoded
values exactly matching the canonical-JSON value model.
"""

from __future__ import annotations

import json
import tempfile
import time

import pytest

from repro.config import SystemConfig
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, build_paper_scenario
from repro.crypto.hashing import canonical_json
from repro.metrics.reporting import format_table
from repro.relational.durability import JsonlWalBackend
from repro.relational.wal import WalEntry
from repro.runtime import get_codec

BLOCK_INTERVAL = 2.0

#: E9b gates: binary must be strictly smaller on the wire and in the WAL,
#: and its encode+decode round trip must stay within this factor of the
#: C-accelerated json module's.
MAX_ROUNDTRIP_OVERHEAD = 5.0


def _submit_conflicting_requests(system, count: int):
    """Submit ``count`` raw update requests on the same shared table without
    waiting for acknowledgements, then mine everything."""
    researcher_app = system.server_app("researcher")
    doctor_app = system.server_app("doctor")
    apps = [researcher_app, doctor_app]
    hashes = []
    for index in range(count):
        app = apps[index % 2]
        attribute = "mechanism_of_action" if app is researcher_app else "medication_name"
        tx = app.build_contract_call(
            "request_update",
            {"metadata_id": DOCTOR_RESEARCHER_TABLE,
             "changed_attributes": [attribute], "diff_hash": f"h{index}"})
        system.simulator.submit_transaction(app.node.name, tx)
        hashes.append(tx.tx_hash)
    blocks = system.simulator.mine()
    return hashes, blocks


def _conflict_stats(system, hashes, blocks):
    node = system.server_app("doctor").node
    per_block_counts = {}
    for block in blocks:
        updates_in_block = [tx for tx in block.transactions
                            if tx.method == "request_update"
                            and tx.args.get("metadata_id") == DOCTOR_RESEARCHER_TABLE]
        per_block_counts[block.number] = len(updates_in_block)
    accepted = sum(1 for h in hashes if node.chain.receipt(h).success)
    violations = sum(1 for count in per_block_counts.values() if count > 1)
    return accepted, violations, per_block_counts


@pytest.mark.parametrize("enforce", [True, False])
def test_serialization_rule_ablation(benchmark, emit, enforce):
    def run():
        system = build_paper_scenario(SystemConfig.private_chain(BLOCK_INTERVAL))
        if not enforce:
            for node in system.simulator.nodes:
                if node.miner is not None:
                    node.miner.enforce_serialization = False
        hashes, blocks = _submit_conflicting_requests(system, count=4)
        return system, hashes, blocks

    system, hashes, blocks = benchmark(run)
    accepted, violations, per_block = _conflict_stats(system, hashes, blocks)
    label = "enforced" if enforce else "disabled"
    emit(f"E9_serialization_{label}", format_table(
        ("metric", "value"),
        [("rule", label),
         ("conflicting requests submitted", len(hashes)),
         ("blocks produced", len(blocks)),
         ("requests accepted by the contract", accepted),
         ("blocks with >1 update on the same shared table", violations)],
        title=f"§III-B serialisation rule ({label})"))
    if enforce:
        assert violations == 0
        assert len(blocks) >= 4
    else:
        # Without the rule every request lands in one block; the contract's
        # acknowledgement check is the only remaining guard.
        assert len(blocks) == 1


def test_serialization_summary(benchmark, emit):
    """Side-by-side summary of the ablation."""
    rows = []
    benchmark.pedantic(
        lambda: build_paper_scenario(SystemConfig.private_chain(BLOCK_INTERVAL)),
        rounds=1, iterations=1)
    for enforce in (True, False):
        system = build_paper_scenario(SystemConfig.private_chain(BLOCK_INTERVAL))
        if not enforce:
            for node in system.simulator.nodes:
                if node.miner is not None:
                    node.miner.enforce_serialization = False
        start = system.simulator.clock.now()
        hashes, blocks = _submit_conflicting_requests(system, count=4)
        elapsed = system.simulator.clock.now() - start
        accepted, violations, _ = _conflict_stats(system, hashes, blocks)
        rows.append(("enforced" if enforce else "disabled", len(hashes), len(blocks),
                     accepted, violations, round(elapsed, 1)))
    emit("E9_serialization_summary", format_table(
        ("rule", "requests", "blocks", "accepted", "same-block conflicts", "simulated s"),
        rows, title="Ablation: one update per shared table per block"))
    enforced, disabled = rows
    assert enforced[4] == 0          # no same-block conflicts with the rule
    assert disabled[2] < enforced[2]  # fewer blocks (lower latency) without it


# --------------------------------------------------------------------------
# E9b — JSON vs binary wire codec over real system payloads


def _wire_corpus() -> list:
    """Every block and transaction a paper-scenario run actually gossips."""
    system = build_paper_scenario(SystemConfig.private_chain(BLOCK_INTERVAL))
    chain = system.server_app("doctor").node.chain
    corpus = [tx.to_dict() for block in chain.blocks for tx in block.transactions]
    corpus += [block.to_dict() for block in chain.blocks]
    # Normalise into the codecs' shared value model (tuples → lists, …) so
    # the fidelity check compares like with like.
    return json.loads(canonical_json(corpus))


def _wal_entries(corpus: list) -> list:
    return [WalEntry(sequence=index + 1, operation="response",
                     table="responses", payload=payload)
            for index, payload in enumerate(corpus)
            if isinstance(payload, dict)]


def _time_roundtrip(codec, corpus: list, repeats: int) -> float:
    blobs = [codec.encode(payload) for payload in corpus]
    start = time.perf_counter()
    for _ in range(repeats):
        for payload in corpus:
            codec.encode(payload)
        for blob in blobs:
            codec.decode(blob)
    return time.perf_counter() - start


def _wal_bytes(entries: list, codec_name: str) -> int:
    with tempfile.TemporaryDirectory(prefix=f"e9b-{codec_name}-") as wal_dir:
        backend = JsonlWalBackend(wal_dir, codec=codec_name)
        for entry in entries:
            backend.append(entry)
        backend.sync()
        total = sum(path.stat().st_size for path in backend.segment_paths())
        backend.close()
        return total


def test_wire_codec_ablation(emit, quick):
    """The binary codec must beat canonical JSON on size — wire payloads and
    WAL segments — at a bounded round-trip overhead, decoding every payload
    back to exactly the canonical value model."""
    corpus = _wire_corpus()
    assert corpus, "paper scenario produced no gossiped payloads"
    json_codec = get_codec("canonical-json")
    binary_codec = get_codec("binary")

    fidelity_ok = all(
        binary_codec.decode(binary_codec.encode(payload)) == payload
        and json_codec.decode(json_codec.encode(payload)) == payload
        for payload in corpus)

    json_bytes = sum(len(json_codec.encode(payload)) for payload in corpus)
    binary_bytes = sum(len(binary_codec.encode(payload)) for payload in corpus)
    size_ratio = binary_bytes / json_bytes

    repeats = 20 if quick else 100
    json_seconds = _time_roundtrip(json_codec, corpus, repeats)
    binary_seconds = _time_roundtrip(binary_codec, corpus, repeats)
    roundtrip_overhead = binary_seconds / json_seconds

    entries = _wal_entries(corpus)
    wal_json = _wal_bytes(entries, "canonical-json")
    wal_binary = _wal_bytes(entries, "binary")

    emit("E9b_wire_codec", format_table(
        ("metric", "canonical-json", "binary"),
        [("wire bytes (corpus)", json_bytes, binary_bytes),
         ("size ratio (binary/json)", "", f"{size_ratio:.3f}"),
         ("round-trip seconds", f"{json_seconds:.4f}", f"{binary_seconds:.4f}"),
         ("round-trip overhead", "1.00x", f"{roundtrip_overhead:.2f}x"),
         ("WAL bytes (same entries)", wal_json, wal_binary),
         ("payloads", len(corpus), len(corpus)),
         ("round-trip fidelity", fidelity_ok, fidelity_ok)],
        title="Wire codec A/B over gossiped blocks + transactions"))

    assert fidelity_ok, "a codec round trip changed a payload"
    assert binary_bytes < json_bytes, (
        f"binary wire encoding is not smaller: {binary_bytes} >= {json_bytes}")
    assert wal_binary < wal_json, (
        f"binary WAL segments are not smaller: {wal_binary} >= {wal_json}")
    assert roundtrip_overhead <= MAX_ROUNDTRIP_OVERHEAD, (
        f"binary round trip is {roundtrip_overhead:.2f}x canonical JSON "
        f"(> {MAX_ROUNDTRIP_OVERHEAD}x): the pure-Python codec drifted")
