"""E1 — Fig. 1: data distribution and view derivation.

Reproduces the paper's data layout (full record split into D1/D2/D3 and the
shared views D13=D31, D23=D32) and measures how expensive building that
distribution is as the number of full records grows.
"""

from __future__ import annotations

import pytest

from repro.core.scenario import (
    DOCTOR_RESEARCHER_TABLE,
    PATIENT_DOCTOR_TABLE,
    PAPER_RECORDS,
    build_paper_scenario,
    build_scaled_scenario,
)
from repro.metrics.reporting import format_table
from repro.workloads.generator import MedicalRecordGenerator


def _fig1_rows(system):
    rows = []
    layout = (
        ("Full medical records", "doctor+patient+researcher", 7, len(PAPER_RECORDS)),
    )
    d1 = system.peer("patient").local_table("D1")
    d2 = system.peer("researcher").local_table("D2")
    d3 = system.peer("doctor").local_table("D3")
    d13 = system.peer("patient").shared_table(PATIENT_DOCTOR_TABLE)
    d31 = system.peer("doctor").shared_table(PATIENT_DOCTOR_TABLE)
    d23 = system.peer("researcher").shared_table(DOCTOR_RESEARCHER_TABLE)
    d32 = system.peer("doctor").shared_table(DOCTOR_RESEARCHER_TABLE)
    for label, owner, table in (
        ("D1", "Patient", d1), ("D2", "Researcher", d2), ("D3", "Doctor", d3),
        ("D13", "Patient", d13), ("D31", "Doctor", d31),
        ("D23", "Researcher", d23), ("D32", "Doctor", d32),
    ):
        rows.append((label, owner, len(table.schema), len(table)))
    return list(layout) + rows


def test_fig1_paper_tables(benchmark, emit):
    """Build the exact Fig. 1 scenario and report every table's shape."""
    system = benchmark(build_paper_scenario)
    rows = _fig1_rows(system)
    emit("E1_fig1_data_distribution", format_table(
        ("table", "resides on", "attributes", "rows"), rows,
        title="Fig. 1 data distribution (paper scenario)"))
    # The shared tables must be identical across their two owners.
    assert system.all_shared_tables_consistent()
    assert system.views_consistent_with_sources()


@pytest.mark.parametrize("record_count", [2, 20, 100])
def test_fig1_scaling_with_record_count(benchmark, emit, record_count):
    """View derivation cost as the number of full records grows."""
    generator = MedicalRecordGenerator(seed=1, first_patient_id=188)
    records = generator.records(record_count, distinct_medications=10)

    system = benchmark(lambda: build_scaled_scenario(records=records))
    doctor = system.peer("doctor")
    emit(f"E1_fig1_scale_{record_count}", format_table(
        ("metric", "value"),
        [
            ("full records", record_count),
            ("doctor D3 rows", len(doctor.local_table("D3"))),
            ("researcher D2 rows", len(system.peer("researcher").local_table("D2"))),
            ("shared D23/D32 rows", len(doctor.shared_table(DOCTOR_RESEARCHER_TABLE))),
            ("doctor storage bytes", doctor.storage_bytes()),
        ],
        title=f"Fig. 1 layout scaled to {record_count} records"))
    assert system.all_shared_tables_consistent()
