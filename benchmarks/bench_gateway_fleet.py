"""E19 — multi-process gateway fleet: parallel commits behind the runtime boundary.

The scaling question behind the process-ready node boundary: once worker
slices talk to the coordinator through :mod:`repro.runtime` envelopes
instead of an in-process call graph, does placing them in separate OS
processes actually buy parallel commit throughput — without changing what
any slice computes?  The experiment partitions one tenant population into
worker slices and runs the same specs under both placements, gating:

* **process scaling** — aggregate committed-writes throughput (total
  committed writes over coordinator wall-clock) improves ≥2× from 1 to 4
  worker processes;
* **loopback parity** — a one-worker loopback fleet produces state
  fingerprints byte-identical to calling the single-process engine
  directly: the message boundary is a placement change, not a semantic
  one;
* **placement parity** — the 4-worker loopback and 4-worker multiprocess
  fleets (same specs) produce byte-identical per-worker fingerprints and
  identical committed-write counts;
* **clock merge** — the coordinator's merged simulated clock equals the
  max of the workers' reported clocks under both placements;
* **framing accounting** — every multiprocess worker link reports the
  expected envelope counts (run+shutdown out, clock+result in) and
  non-zero wire bytes both ways.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cli import run_gateway_fleet, run_gateway_loadtest  # noqa: E402
from repro.crypto.hashing import canonical_json  # noqa: E402

TENANTS = 8
FULL_DURATION = 20.0
QUICK_DURATION = 8.0
RATE = 1.0
INTERVAL = 1.0
BATCH_SIZE = 8
SEED = 23
MIN_SPEEDUP = 2.0
WIRE_CODEC = "binary"


def _fleet(processes: int, duration: float, mode: str,
           include_fingerprints: bool = False) -> dict:
    return run_gateway_fleet(
        processes=processes, tenants=TENANTS, duration=duration, rate=RATE,
        interval=INTERVAL, batch_size=BATCH_SIZE, seed=SEED, mode=mode,
        wire_codec=WIRE_CODEC, include_fingerprints=include_fingerprints)


def _worker_fingerprints(fleet_result: dict) -> dict:
    return {name: worker.get("fingerprints")
            for name, worker in sorted(fleet_result["workers"].items())}


def run_fleet_scaling(duration: float) -> dict:
    # Scaling pair: same tenant population, 1 vs 4 forked worker processes.
    single = _fleet(1, duration, "multiprocess")
    fleet = _fleet(4, duration, "multiprocess", include_fingerprints=True)
    speedup = (fleet["aggregate_throughput"] / single["aggregate_throughput"]
               if single["aggregate_throughput"] else 0.0)

    # Parity trio: the direct single-process engine, the same slice behind a
    # loopback fleet, and the 4-slice specs under both placements.
    direct = run_gateway_loadtest(
        tenants=TENANTS, duration=duration, rate=RATE, interval=INTERVAL,
        batch_size=BATCH_SIZE, seed=SEED, include_fingerprints=True)
    direct_fingerprints = json.loads(canonical_json(direct["fingerprints"]))
    loop_single = _fleet(1, duration, "loopback", include_fingerprints=True)
    loop_fleet = _fleet(4, duration, "loopback", include_fingerprints=True)

    loopback_matches_direct = (
        loop_single["workers"]["worker-0"]["fingerprints"]
        == direct_fingerprints)
    placements_match = (
        _worker_fingerprints(loop_fleet) == _worker_fingerprints(fleet)
        and loop_fleet["committed_writes"] == fleet["committed_writes"])

    clock_merge_exact = all(
        abs(run["clock"]["merged_now"]
            - max(run["clock"]["reports"].values())) < 1e-9
        for run in (single, fleet, loop_single, loop_fleet))
    framing_ok = all(
        stats["sent"] == 2 and stats["received"] == 2
        and stats["wire_bytes_out"] > 0 and stats["wire_bytes_in"] > 0
        for run in (single, fleet)
        for stats in run["transport"].values())

    def _summary(run: dict) -> dict:
        return {
            "mode": run["mode"],
            "processes": run["processes"],
            "wall_seconds": run["wall_seconds"],
            "committed_writes": run["committed_writes"],
            "aggregate_throughput": run["aggregate_throughput"],
            "merged_clock": run["clock"]["merged_now"],
            "per_worker_writes": {
                name: worker["metrics"]["batches"]["writes_committed"]
                for name, worker in sorted(run["workers"].items())},
        }

    return {
        "experiment": "E19_gateway_fleet",
        "workload": (f"{TENANTS} tenants × {duration}s sim @ rate {RATE}, "
                     f"interval {INTERVAL}s, wire codec {WIRE_CODEC}"),
        "single_process": _summary(single),
        "fleet_4": _summary(fleet),
        "loopback_1": _summary(loop_single),
        "loopback_4": _summary(loop_fleet),
        "speedup": speedup,
        "loopback_matches_direct": loopback_matches_direct,
        "placements_match": placements_match,
        "clock_merge_exact": clock_merge_exact,
        "framing_ok": framing_ok,
        "gates": {"min_speedup": MIN_SPEEDUP},
    }


def _gates_pass(result: dict) -> bool:
    return (result["speedup"] >= MIN_SPEEDUP
            and result["loopback_matches_direct"]
            and result["placements_match"]
            and result["clock_merge_exact"]
            and result["framing_ok"])


def test_gateway_fleet(emit, quick):
    """4 worker processes must commit ≥2× the aggregate write throughput of
    1, with loopback fingerprints byte-identical to the direct engine, both
    placements byte-identical to each other, exact clock merges, and sane
    frame accounting on every worker link."""
    duration = QUICK_DURATION if quick else FULL_DURATION
    result = run_fleet_scaling(duration)
    emit("E19_gateway_fleet", json.dumps(result, indent=2, sort_keys=True))
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"4-process fleet committed only {result['speedup']:.2f}x the "
        f"single-process throughput (< {MIN_SPEEDUP}x)")
    assert result["loopback_matches_direct"], (
        "loopback worker fingerprints diverged from the direct "
        "single-process run")
    assert result["placements_match"], (
        "loopback and multiprocess placements of the same specs diverged")
    assert result["clock_merge_exact"]
    assert result["framing_ok"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=FULL_DURATION,
                        help="simulated seconds of traffic per worker slice")
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced CI smoke workload")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON result (default)")
    args = parser.parse_args()
    duration = QUICK_DURATION if args.quick else args.duration
    result = run_fleet_scaling(duration)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if _gates_pass(result) else 1


if __name__ == "__main__":
    raise SystemExit(main())
