"""E10 — Ablation of the consensus choice (§IV.3): private PoA vs public PoW.

The paper argues a private blockchain fits the medical-sharing setting better
than public Ethereum.  This ablation runs the same Fig. 5 update on a PoA
chain with a short block interval and on a PoW chain with the ~12 s public
interval, comparing end-to-end latency, sealing work and chain size.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, build_paper_scenario
from repro.metrics.reporting import format_table

CONFIGURATIONS = {
    "private PoA, 2s blocks": SystemConfig.private_chain(block_interval=2.0),
    "public-like PoW, 12s blocks": SystemConfig.public_chain(block_interval=12.0,
                                                             difficulty=2),
}


def _run_update(config: SystemConfig):
    system = build_paper_scenario(config)
    trace = system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"})
    return system, trace


@pytest.mark.parametrize("label", sorted(CONFIGURATIONS))
def test_consensus_ablation(benchmark, emit, label):
    config = CONFIGURATIONS[label]
    system, trace = benchmark(lambda: _run_update(config))
    node = system.simulator.nodes[0]
    emit(f"E10_consensus_{config.ledger.consensus.kind}", format_table(
        ("metric", "value"),
        [("configuration", label),
         ("update latency (simulated s)", round(trace.elapsed, 2)),
         ("blocks created by the update", trace.blocks_created),
         ("average block interval (s)", round(node.chain.average_block_interval(), 2)),
         ("sealing work of last block (hash attempts)", node.chain.consensus.sealing_work()),
         ("chain bytes", node.chain.storage_bytes())],
        title=f"§IV.3 consensus ablation — {label}"))
    assert trace.succeeded


def test_consensus_summary(benchmark, emit):
    """Side-by-side: the private chain completes the same update much faster."""
    rows = []
    latencies = {}
    benchmark.pedantic(
        lambda: _run_update(CONFIGURATIONS["private PoA, 2s blocks"]),
        rounds=1, iterations=1)
    for label, config in CONFIGURATIONS.items():
        system, trace = _run_update(config)
        latencies[label] = trace.elapsed
        rows.append((label, round(trace.elapsed, 2), trace.blocks_created,
                     round(system.simulator.nodes[0].chain.average_block_interval(), 2)))
    emit("E10_consensus_summary", format_table(
        ("configuration", "update latency (s)", "blocks", "avg block interval (s)"),
        rows, title="§IV.3: private PoA vs public-like PoW for the same update"))
    assert latencies["private PoA, 2s blocks"] < latencies["public-like PoW, 12s blocks"]
