"""E2 — Fig. 3: the metadata collection in the smart contract.

Measures registration of sharing agreements (one Fig. 3 row each), permission
look-ups, and permission changes, and reports the on-chain metadata footprint
per agreement — the quantity the paper's §V storage argument depends on.
"""

from __future__ import annotations

import pytest

from repro.core.scenario import PATIENT_DOCTOR_TABLE, build_paper_scenario
from repro.metrics.reporting import format_table
from repro.workloads.topology import TopologySpec, build_topology_system


def test_fig3_registration_and_lookup(benchmark, emit):
    """Register the paper's two agreements and probe the metadata they store."""
    system = benchmark(build_paper_scenario)
    app = system.server_app("patient")
    metadata = app.query_contract("get_metadata", metadata_id=PATIENT_DOCTOR_TABLE)
    rows = [
        (PATIENT_DOCTOR_TABLE,
         ", ".join(sorted(metadata["sharing_peers"].values())),
         "; ".join(f"{attr}:{'/'.join(roles)}"
                   for attr, roles in sorted(metadata["write_permission"].items())),
         metadata["authority_role"]),
    ]
    emit("E2_fig3_metadata_entry", format_table(
        ("metadata id", "sharing peers", "write permission", "authority"), rows,
        title="Fig. 3 metadata entry as stored on-chain"))
    assert metadata["write_permission"]["dosage"] == ["Doctor"]


@pytest.mark.parametrize("patients", [2, 8, 24])
def test_fig3_metadata_scales_with_agreements(benchmark, emit, patients):
    """On-chain state growth as the number of sharing agreements grows."""
    def build():
        return build_topology_system(TopologySpec(patients=patients, researchers=2, seed=7))

    system = benchmark(build)
    node = system.server_app("doctor").node
    agreements = len(system.agreement_ids)
    state_bytes = node.chain.state.storage_bytes()
    chain_bytes = node.chain.storage_bytes()
    emit(f"E2_fig3_metadata_scale_{patients}", format_table(
        ("metric", "value"),
        [
            ("sharing agreements (Fig. 3 rows)", agreements),
            ("contract state bytes", state_bytes),
            ("chain bytes", chain_bytes),
            ("state bytes per agreement", state_bytes // max(agreements, 1)),
            ("blocks", node.chain.height),
        ],
        title=f"Metadata footprint with {agreements} agreements"))
    assert system.all_shared_tables_consistent()


def test_fig3_permission_check_latency(benchmark, emit):
    """Read-only permission probes (can_peer_write) against a node replica."""
    system = build_paper_scenario()
    app = system.server_app("patient")

    def probe():
        allowed = app.can_write(PATIENT_DOCTOR_TABLE, "clinical_data")
        denied = app.can_write(PATIENT_DOCTOR_TABLE, "dosage")
        return allowed, denied

    allowed, denied = benchmark(probe)
    emit("E2_fig3_permission_probe", format_table(
        ("probe", "result"),
        [("Patient may write clinical_data", allowed),
         ("Patient may write dosage", denied)],
        title="Per-attribute permission checks (Fig. 3 semantics)"))
    assert allowed and not denied


def test_fig3_permission_change_by_authority(benchmark, emit):
    """The paper's example: Doctor grants the Patient write access to Dosage."""
    def change():
        system = build_paper_scenario()
        return system.coordinator.change_permission(
            "doctor", PATIENT_DOCTOR_TABLE, "dosage", ["Doctor", "Patient"])

    result = benchmark(change)
    emit("E2_fig3_permission_change", format_table(
        ("attribute", "previous writers", "new writers", "changed by role"),
        [(result["attribute"], "/".join(result["previous"]), "/".join(result["new"]),
          result["changed_by_role"])],
        title="Authority-driven permission change"))
    assert result["new"] == ["Doctor", "Patient"]
