"""E15 — durability: fsync-policy overhead and crash-free recovery fidelity.

The durable WAL backend (:mod:`repro.relational.durability`) mirrors every
database mutation to append-only JSONL segments.  What does that durability
cost?  This experiment seeds a table (untimed) and then drives an identical
keyed-update stream — the gateway's hot path — through four configurations:

* **memory** — the seed in-memory WAL (no disk at all), the baseline;
* **never** — JSONL appends flushed to the OS, no explicit fsync;
* **batch** — one fsync per simulated commit batch (the gateway's default:
  ``sync()`` at commit boundaries);
* **always** — fsync per appended entry (maximal durability).

and reports ops/s plus the overhead ratio over the in-memory baseline.  Each
durable run then proves itself: ``recover(state_dir)`` must rebuild a
database whose table fingerprints are byte-identical to the live one, once
from the raw WAL and once after a mid-workload ``Database.checkpoint``.

Acceptance gate: the **batch** policy's overhead is ≤2× the in-memory
baseline (the ISSUE's bound for making durability the default posture).

Runnable two ways::

    python -m pytest benchmarks/bench_durability.py           # asserts ≤2×
    python -m pytest benchmarks/bench_durability.py --quick   # CI smoke
    python benchmarks/bench_durability.py --json              # prints JSON
"""

from __future__ import annotations

import argparse
import gc
import json
import shutil
import tempfile
import time
from typing import Any, Dict, Optional

from repro.relational import Column, DataType, Database, Schema
from repro.relational.durability import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_NEVER,
    open_durable_database,
    recover,
)

FULL_OPS = 6_000
QUICK_OPS = 1_500
#: Rows seeded (untimed) before the measured update stream.
TABLE_ROWS = 2_000
#: The batched policy's commit boundary: one fsync per this many operations
#: (the gateway syncs once per committed *batch*; under sustained open-loop
#: load a batch carries the whole arrival backlog, so boundaries are far
#: apart in operation count — the crash-recovery tests exercise tight
#: boundaries separately).
SYNC_INTERVAL = 1_000
#: Acceptance gate: batched-fsync durability costs at most 2× in-memory.
MAX_BATCH_OVERHEAD = 2.0

#: A representative medical-record schema (the paper's D3-style table: a
#: handful of clinical attributes per keyed row), not a toy 2-column one —
#: fsync-policy overhead is only meaningful against realistic row widths.
SCHEMA = Schema(
    [
        Column("patient_id", DataType.INTEGER),
        Column("name", DataType.STRING),
        Column("disease", DataType.STRING),
        Column("symptom", DataType.STRING),
        Column("drug_name", DataType.STRING),
        Column("dosage", DataType.STRING),
        Column("mechanism_of_action", DataType.STRING),
        Column("side_effects", DataType.STRING),
    ],
    primary_key=("patient_id",),
)


def _seed_row(i: int) -> dict:
    return {
        "patient_id": i,
        "name": f"patient-{i}",
        "disease": f"disease-{i % 23}",
        "symptom": f"symptom-{i % 31}",
        "drug_name": f"drug-{i % 47}",
        "dosage": f"{(i % 4) + 1} tablets every {6 + (i % 3) * 2}h",
        "mechanism_of_action": f"MeA-{i % 53}",
        "side_effects": f"effect-{i % 29}",
    }


def _run_workload(database: Database, operations: int, sync_interval: Optional[int],
                  checkpoint_dir: Optional[str] = None) -> float:
    """Seed a table, then time an ``operations``-long keyed-update stream.

    The timed region is the system's hot path — the shared-entry updates the
    gateway commits all day — not the one-off table seeding.  ``sync_interval``
    simulates commit boundaries for the batched policy.  ``checkpoint_dir``
    takes one checkpoint between seeding and the update stream so recovery
    also exercises the snapshot + WAL-tail path; the checkpoint itself is a
    background maintenance action and is excluded from the timing.
    """
    database.create_table("records", SCHEMA)
    for i in range(TABLE_ROWS):
        database.insert("records", _seed_row(i))
    database.wal.sync()
    if checkpoint_dir is not None:
        database.checkpoint(checkpoint_dir)
    # Collect leftovers of earlier runs (seeding, the previous policy's
    # recovery pass) and keep the collector out of the timed region — GC
    # pauses triggered by *prior* allocations would land on whichever
    # policy happens to run next.
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for i in range(operations):
            database.update_by_key(
                "records", (i % TABLE_ROWS,),
                {"dosage": f"{(i % 5) + 1} tablets every {4 + (i % 5) * 2}h"})
            if sync_interval and (i + 1) % sync_interval == 0:
                database.wal.sync()
        database.wal.sync()
        return time.perf_counter() - started
    finally:
        gc.enable()


def _policy_run_once(policy: Optional[str], operations: int,
                     with_checkpoint: bool) -> Dict[str, Any]:
    state_dir = None
    try:
        if policy is None:
            database = Database("bench")
        else:
            state_dir = tempfile.mkdtemp(prefix="bench-durability-")
            database = open_durable_database("bench", state_dir, fsync_policy=policy)
        sync_interval = SYNC_INTERVAL if policy == FSYNC_BATCH else None
        elapsed = _run_workload(
            database, operations, sync_interval,
            checkpoint_dir=state_dir if with_checkpoint else None)
        result: Dict[str, Any] = {
            "policy": policy or "memory",
            "operations": operations,
            "seconds": elapsed,
            "ops_per_second": operations / elapsed if elapsed else 0.0,
        }
        if state_dir is not None:
            backend = database.wal.backend
            result["wal_bytes"] = backend.wal_bytes()
            result["wal_segments"] = backend.statistics()["segments"]
            result["fsyncs"] = backend.statistics()["syncs"]
            database.wal.close()
            recovered = recover(state_dir)
            result["recovery_seconds"] = recovered.recovery_seconds
            result["entries_replayed"] = recovered.entries_replayed
            result["checkpoint_sequence"] = recovered.checkpoint_sequence
            result["fingerprint_identical"] = (
                recovered.database.table("records").fingerprint()
                == database.table("records").fingerprint())
        return result
    finally:
        if state_dir is not None:
            shutil.rmtree(state_dir, ignore_errors=True)


def run_durability_comparison(operations: int = FULL_OPS,
                              rounds: int = 3) -> Dict[str, Any]:
    """All four policies over the identical workload; returns JSON-able rows.

    The gated policies are timed in ``rounds`` *interleaved* best-of-N
    rounds: wall-clock on a shared runner has slow windows (CPU steal,
    storage-latency spikes), and interleaving makes a bad window hit every
    policy rather than just one, while the per-policy minimum discards it.
    The ungated ``always`` run is timed once.
    """
    gated = (("memory", None, False),
             # Durable runs alternate raw-WAL replay and checkpoint + tail
             # recovery.
             ("never", FSYNC_NEVER, False),
             ("batch", FSYNC_BATCH, True))
    policies: Dict[str, Dict[str, Any]] = {}
    ratios: Dict[str, list] = {"never": [], "batch": []}
    for _ in range(max(1, rounds)):
        round_seconds: Dict[str, float] = {}
        for name, policy, with_checkpoint in gated:
            run = _policy_run_once(policy, operations, with_checkpoint)
            round_seconds[name] = run["seconds"]
            if name not in policies or run["seconds"] < policies[name]["seconds"]:
                policies[name] = run
        # Overhead is judged per round, against the baseline timed adjacent
        # to it: machine-speed drift (CPU steal on shared runners) hits both
        # sides of a pair, so the paired ratio measures the policy, not the
        # weather.  The minimum across rounds discards spiked pairs.
        for name in ratios:
            ratios[name].append(round_seconds[name] / round_seconds["memory"]
                                if round_seconds["memory"] else 0.0)
    policies["always"] = _policy_run_once(FSYNC_ALWAYS, operations,
                                          with_checkpoint=False)
    memory = policies["memory"]
    never, batch, always = policies["never"], policies["batch"], policies["always"]
    never["overhead_vs_memory"] = min(ratios["never"])
    batch["overhead_vs_memory"] = min(ratios["batch"])
    always["overhead_vs_memory"] = (always["seconds"] / memory["seconds"]
                                    if memory["seconds"] else 0.0)
    return {
        "experiment": "E15_durability",
        "workload": (f"{operations} keyed updates over a {TABLE_ROWS}-row table "
                     f"(seeding untimed), sync every {SYNC_INTERVAL} ops "
                     f"under 'batch'"),
        "operations": operations,
        "policies": policies,
        "batch_overhead": batch["overhead_vs_memory"],
        "recovery_identical": all(
            policies[name]["fingerprint_identical"]
            for name in ("never", "batch", "always")),
    }


def test_durability_overhead_and_recovery(emit, quick):
    """The batched fsync policy must stay within 2× of the in-memory WAL,
    and every durable run must recover byte-identical table fingerprints
    (including the checkpoint + WAL-tail path)."""
    operations = QUICK_OPS if quick else FULL_OPS
    result = run_durability_comparison(operations)
    emit("E15_durability", json.dumps(result, indent=2, sort_keys=True))
    assert result["recovery_identical"], "recovered fingerprints diverged"
    assert result["batch_overhead"] <= MAX_BATCH_OVERHEAD, (
        f"batched fsync overhead {result['batch_overhead']:.2f}x exceeds "
        f"{MAX_BATCH_OVERHEAD}x")
    # The checkpointed run replays only the WAL tail past the checkpoint
    # (the update stream), not the seeded table.
    batch = result["policies"]["batch"]
    assert batch["checkpoint_sequence"] >= TABLE_ROWS
    assert batch["entries_replayed"] <= result["operations"]
    # The raw-WAL runs replay everything from empty.
    assert result["policies"]["never"]["entries_replayed"] > result["operations"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--operations", type=int, default=FULL_OPS)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced CI smoke workload")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON result (default)")
    args = parser.parse_args()
    operations = QUICK_OPS if args.quick else args.operations
    result = run_durability_comparison(operations)
    print(json.dumps(result, indent=2, sort_keys=True))
    ok = (result["recovery_identical"]
          and result["batch_overhead"] <= MAX_BATCH_OVERHEAD)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
