"""E13 — sharded consensus lanes: parallel block production + batch folding.

The seed serialises every shared-data commit through one chain: one mempool,
one block-size budget, one consensus round at a time, so *independent* shared
tables contend even though nothing in the protocol couples them.  The sharded
pipeline (``LedgerConfig.consensus_shards``) routes each table to a lane by a
stable hash of its metadata id; every lane has its own mempool shard and
block budget, and all lanes with pending work seal blocks in the **same**
simulated block interval.

This experiment drives the identical multi-tenant write workload (8 patient
tenants, each committing to its own shared table through the gateway, with a
per-block budget of 2 transactions so block space is the bottleneck) through

* the **1-shard baseline** — exactly the seed pipeline; and
* the **5-shard lanes** — the same workload, tables spread over the 4 data
  lanes (lane 0 is reserved for control traffic),

and reports commit throughput in writes per simulated second.  Correctness
oracles: every peer's every table must have a byte-identical
``Table.fingerprint()`` across the two runs, and the explicit 1-shard
configuration must reproduce the default (unsharded) configuration's block
hash sequence exactly.

A second section measures **cross-peer batch folding** on the paper's CARE
table: doctor (dosage) and patient (clinical_data) writes on disjoint
attribute sets commit through one ``request_folded_update`` round pair
instead of one pair per peer.

Runnable two ways::

    python -m pytest benchmarks/bench_sharded_consensus.py           # asserts ≥2×
    python -m pytest benchmarks/bench_sharded_consensus.py --quick   # CI smoke
    python benchmarks/bench_sharded_consensus.py --json              # prints JSON
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List

from repro.config import ConsensusConfig, LedgerConfig, NetworkConfig, SystemConfig
from repro.core.scenario import CARE_TABLE, build_extended_scenario
from repro.core.system import MedicalDataSharingSystem
from repro.gateway import SharingGateway, UpdateEntryRequest
from repro.workloads.topology import TopologySpec, build_topology_system

DEFAULT_TENANTS = 8
#: 5 shards = 4 *data* lanes + the reserved control lane 0.
DEFAULT_SHARDS = 5
FULL_ROUNDS = 3
QUICK_ROUNDS = 1
BLOCK_INTERVAL = 2.0
#: Two transactions per block: block space is the bottleneck the lanes
#: parallelise (the paper's single-chain budget).
MAX_TXS_PER_BLOCK = 2
#: Patient-id base whose 8 sequential metadata ids spread 2/2/2/2 over the
#: 4 data lanes of the 5-shard hash (a representative, not adversarial,
#: table placement).
FIRST_PATIENT_ID = 1_008
#: The acceptance gate: ≥2× commit throughput at 4 data lanes / 8 tenants.
TARGET_SPEEDUP = 2.0


def _config(shards: int) -> SystemConfig:
    return SystemConfig(
        ledger=LedgerConfig(
            consensus=ConsensusConfig(kind="poa", block_interval=BLOCK_INTERVAL),
            max_transactions_per_block=MAX_TXS_PER_BLOCK,
            consensus_shards=shards,
        ),
        # Near-zero transport latency isolates the consensus pipeline: the
        # simulated clock then measures block intervals, not gossip hops.
        network=NetworkConfig(base_latency=0.002, latency_jitter=0.001),
    )


def _build(shards: int, tenants: int) -> MedicalDataSharingSystem:
    return build_topology_system(
        TopologySpec(patients=tenants, researchers=0,
                     first_patient_id=FIRST_PATIENT_ID),
        _config(shards),
    )


def _fingerprints(system: MedicalDataSharingSystem) -> Dict[str, str]:
    return {
        f"{peer.name}:{table_name}": peer.database.table(table_name).fingerprint()
        for peer in system.peers
        for table_name in sorted(peer.database.table_names)
    }


def _run_workload(system: MedicalDataSharingSystem, rounds: int) -> Dict[str, object]:
    """Per-tenant updates through the gateway, drained once per round."""
    gateway = SharingGateway(system, max_batch_size=DEFAULT_TENANTS)
    tables = {f"patient-{mid.split(':')[1]}": mid for mid in system.agreement_ids}
    sessions = {peer: gateway.open_session(peer) for peer in tables}
    responses = []
    start = system.simulator.clock.now()
    for round_index in range(rounds):
        for peer, metadata_id in sorted(tables.items()):
            patient_id = int(metadata_id.split(":")[1])
            responses.append(gateway.submit(
                sessions[peer],
                UpdateEntryRequest(metadata_id=metadata_id, key=(patient_id,),
                                   updates={"clinical_data":
                                            f"CliD-{patient_id}-r{round_index}"})))
        gateway.drain()
    elapsed = system.simulator.clock.now() - start
    assert all(response.ok for response in responses)
    assert system.all_shared_tables_consistent()
    metrics = gateway.metrics()
    return {
        "writes": len(responses),
        "simulated_seconds": elapsed,
        "throughput": len(responses) / elapsed,
        "consensus_rounds": metrics["batches"]["consensus_rounds"],
        "shards": metrics["shards"],
    }


def _block_hashes(system: MedicalDataSharingSystem) -> List[str]:
    return [block.block_hash for block in system.simulator.nodes[0].chain.blocks]


def _run_fold_comparison(rounds: int) -> Dict[str, object]:
    """Cross-peer folding on the CARE table: fold on vs off, same writes."""

    def drive(fold: bool) -> Dict[str, object]:
        system = build_extended_scenario(SystemConfig.private_chain(BLOCK_INTERVAL))
        gateway = SharingGateway(system, fold_cross_peer=fold)
        doctor = gateway.open_session("doctor")
        patient = gateway.open_session("patient")
        responses = []
        for round_index in range(rounds):
            responses.append(gateway.submit(doctor, UpdateEntryRequest(
                CARE_TABLE, (188,), {"dosage": f"dose-r{round_index}"})))
            responses.append(gateway.submit(patient, UpdateEntryRequest(
                CARE_TABLE, (189,), {"clinical_data": f"note-r{round_index}"})))
            gateway.drain()
        assert all(response.ok for response in responses)
        assert system.all_shared_tables_consistent()
        assert system.check_contract_specification().passed
        metrics = gateway.metrics()
        return {
            "writes": len(responses),
            "consensus_rounds": metrics["batches"]["consensus_rounds"],
            "folded_writes": metrics["batches"]["folded_writes"],
            "fold_rounds_saved": metrics["batches"]["fold_rounds_saved"],
            "fingerprints": _fingerprints(system),
        }

    folded = drive(True)
    serialised = drive(False)
    assert folded["fingerprints"] == serialised["fingerprints"], (
        "cross-peer folding changed the post-state tables")
    result = {
        "rounds": rounds,
        "folded": {k: v for k, v in folded.items() if k != "fingerprints"},
        "serialised": {k: v for k, v in serialised.items() if k != "fingerprints"},
        "rounds_cut": serialised["consensus_rounds"] - folded["consensus_rounds"],
        "fingerprints_identical": True,
    }
    return result


def run_sharded_consensus_comparison(tenants: int = DEFAULT_TENANTS,
                                     shards: int = DEFAULT_SHARDS,
                                     rounds: int = FULL_ROUNDS) -> Dict[str, object]:
    """Run 1-shard vs N-shard over the same workload; returns JSON-able result."""
    # --- seed-equivalence oracle: the explicit 1-shard configuration must
    # reproduce the default configuration's block sequence exactly.
    default_system = build_topology_system(
        TopologySpec(patients=tenants, researchers=0,
                     first_patient_id=FIRST_PATIENT_ID),
        SystemConfig(
            ledger=LedgerConfig(
                consensus=ConsensusConfig(kind="poa", block_interval=BLOCK_INTERVAL),
                max_transactions_per_block=MAX_TXS_PER_BLOCK,
            ),
            network=NetworkConfig(base_latency=0.002, latency_jitter=0.001),
        ))
    default_result = _run_workload(default_system, rounds)

    baseline_system = _build(1, tenants)
    baseline = _run_workload(baseline_system, rounds)
    baseline_prints = _fingerprints(baseline_system)
    assert _block_hashes(baseline_system) == _block_hashes(default_system), (
        "consensus_shards=1 diverged from the default (unsharded) pipeline")

    sharded_system = _build(shards, tenants)
    sharded = _run_workload(sharded_system, rounds)
    sharded_prints = _fingerprints(sharded_system)
    assert baseline_prints == sharded_prints, (
        "sharded pipeline diverged from the 1-shard baseline: "
        f"{[k for k in baseline_prints if baseline_prints[k] != sharded_prints.get(k)]}"
    )

    gossip = sharded_system.simulator.gossip
    return {
        "experiment": "E13_sharded_consensus",
        "workload": (f"{tenants} tenants x {rounds} round(s) of single-row updates, "
                     f"{MAX_TXS_PER_BLOCK} txs/block budget"),
        "tenants": tenants,
        "shards": shards,
        "rounds": rounds,
        "block_interval": BLOCK_INTERVAL,
        "baseline_1_shard": baseline,
        "sharded": sharded,
        "speedup": sharded["throughput"] / baseline["throughput"],
        "fingerprints_identical": True,
        "single_shard_block_sequence_identical": True,
        "tx_batch_topics": dict(sorted(gossip.topic_messages.items())),
        "cross_peer_folding": _run_fold_comparison(rounds),
    }


def test_sharded_consensus_throughput_and_fingerprints(emit, quick):
    """4 data lanes must give ≥2× commit throughput over the 1-shard
    baseline at 8 tenants, with identical post-state fingerprints on every
    peer and an unchanged 1-shard block sequence; cross-peer folding must cut
    consensus rounds without changing the post-state."""
    rounds = QUICK_ROUNDS if quick else FULL_ROUNDS
    result = run_sharded_consensus_comparison(rounds=rounds)
    emit("E13_sharded_consensus", json.dumps(result, indent=2, sort_keys=True))
    assert result["fingerprints_identical"]
    assert result["single_shard_block_sequence_identical"]
    assert result["speedup"] >= TARGET_SPEEDUP
    # Lanes actually ran in parallel: several lanes produced blocks ...
    lanes = result["sharded"]["shards"]["lanes"]
    assert sum(1 for count in lanes["blocks_per_lane"] if count) >= 2
    # ... inside fewer intervals than blocks.
    assert lanes["intervals"] < sum(lanes["blocks_per_lane"])
    # The tx-batch gossip ran on per-shard topics.
    assert any(topic.startswith("tx-batch/shard-")
               for topic in result["tx_batch_topics"])
    # Folding cut the cross-peer hot path's rounds (2 per folded batch).
    fold = result["cross_peer_folding"]
    assert fold["fingerprints_identical"]
    assert fold["rounds_cut"] >= 2 * rounds
    assert fold["folded"]["folded_writes"] == rounds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=DEFAULT_TENANTS)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--rounds", type=int, default=FULL_ROUNDS)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced CI smoke round count")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON result (default)")
    args = parser.parse_args()
    rounds = QUICK_ROUNDS if args.quick else args.rounds
    result = run_sharded_consensus_comparison(
        tenants=args.tenants, shards=args.shards, rounds=rounds)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["speedup"] >= TARGET_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
