"""E3 — Fig. 4: CRUD operations on shared data.

Measures each operation of the Fig. 4 table — Create, Read, Update, Delete —
through the full protocol (local attempt, contract permission check, peer
notification, data fetch, BX put, acknowledgement), reporting both wall-clock
cost of the simulation and the *simulated* end-to-end latency and block count
of each operation.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core.scenario import (
    CARE_TABLE,
    DOCTOR_RESEARCHER_TABLE,
    PATIENT_DOCTOR_TABLE,
    STUDY_TABLE,
    build_extended_scenario,
    build_paper_scenario,
)
from repro.metrics.reporting import format_table

#: Block interval used throughout E3 (private PoA chain, §IV.3).
BLOCK_INTERVAL = 2.0


def _fresh_system():
    return build_paper_scenario(SystemConfig.private_chain(block_interval=BLOCK_INTERVAL))


def _extended_system():
    return build_extended_scenario(SystemConfig.private_chain(block_interval=BLOCK_INTERVAL))


def test_fig4_read_is_local(benchmark, emit):
    """Read = query the local database directly: no blocks, no network."""
    system = _fresh_system()
    height_before = system.simulator.nodes[0].chain.height

    table = benchmark(lambda: system.coordinator.read_shared_data(
        "patient", PATIENT_DOCTOR_TABLE))
    emit("E3_fig4_read", format_table(
        ("metric", "value"),
        [("rows returned", len(table)),
         ("blocks created", system.simulator.nodes[0].chain.height - height_before),
         ("simulated latency (s)", 0.0)],
        title="Fig. 4 Read: local query only"))
    assert system.simulator.nodes[0].chain.height == height_before


def test_fig4_update_entry_level(benchmark, emit):
    """Entry-level update by an authorised peer."""
    def run():
        system = _fresh_system()
        trace = system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-revised"})
        return trace

    trace = benchmark(run)
    emit("E3_fig4_update", format_table(
        ("metric", "value"),
        [("protocol steps", trace.step_count),
         ("blocks created", trace.blocks_created),
         ("simulated latency (s)", round(trace.elapsed, 3))],
        title="Fig. 4 Update (entry level) through the full protocol"))
    assert trace.succeeded


def test_fig4_create_entry_level(benchmark, emit):
    """Entry-level create by the doctor, propagating to patient and researcher.

    Inserting a new medication row into the paper's exact D23/D32 projection is
    not translatable (the doctor's D3 needs a patient id the view does not
    carry), so the create path is exercised on the extended CARE/STUDY
    scenario where every lens translates inserts cleanly.
    """
    def run():
        system = _extended_system()
        trace = system.coordinator.create_shared_entry(
            "doctor", CARE_TABLE,
            {"patient_id": 200, "medication_name": "Amoxicillin",
             "clinical_data": "CliD9", "dosage": "250 mg three times daily"})
        return trace, system

    (trace, system) = benchmark(run)
    emit("E3_fig4_create", format_table(
        ("metric", "value"),
        [("protocol steps", trace.step_count),
         ("blocks created", trace.blocks_created),
         ("simulated latency (s)", round(trace.elapsed, 3)),
         ("patient D1 rows after", len(system.peer("patient").local_table("D1"))),
         ("researcher DS rows after", len(system.peer("researcher").local_table("DS")))],
        title="Fig. 4 Create (entry level) through the full protocol"))
    assert trace.succeeded


def test_fig4_delete_entry_level(benchmark, emit):
    """Entry-level delete by the doctor on the patient-doctor shared table."""
    def run():
        system = _fresh_system()
        trace = system.coordinator.delete_shared_entry(
            "doctor", PATIENT_DOCTOR_TABLE, (188,))
        return trace, system

    (trace, system) = benchmark(run)
    emit("E3_fig4_delete", format_table(
        ("metric", "value"),
        [("protocol steps", trace.step_count),
         ("blocks created", trace.blocks_created),
         ("simulated latency (s)", round(trace.elapsed, 3)),
         ("patient D1 rows after", len(system.peer("patient").local_table("D1")))],
        title="Fig. 4 Delete (entry level) through the full protocol"))
    assert trace.succeeded


def test_fig4_permission_denied_cost(benchmark, emit):
    """A denied request still costs a block (it is recorded) but changes nothing."""
    from repro.errors import UpdateRejected

    def run():
        system = _fresh_system()
        try:
            system.coordinator.update_shared_entry(
                "patient", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "not allowed"})
        except UpdateRejected as exc:
            return exc.trace
        raise AssertionError("the update should have been rejected")

    trace = benchmark(run)
    emit("E3_fig4_denied", format_table(
        ("metric", "value"),
        [("protocol steps", trace.step_count),
         ("blocks created", trace.blocks_created),
         ("simulated latency (s)", round(trace.elapsed, 3)),
         ("succeeded", trace.succeeded)],
        title="Fig. 4 Update rejected by the permission check"))
    assert not trace.succeeded


def test_fig4_summary_table(benchmark, emit):
    """The Fig. 4 operation table, one row per operation, over one system."""
    system = benchmark.pedantic(_extended_system, rounds=1, iterations=1)
    rows = []

    read_table = system.coordinator.read_shared_data("patient", CARE_TABLE)
    rows.append(("Read", "Patient", 0, 0.0, "local query"))

    update = system.coordinator.update_shared_entry(
        "researcher", STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"})
    rows.append(("Update", "Researcher", update.blocks_created, round(update.elapsed, 2),
                 f"{update.step_count} steps, cascades to patient"))

    create = system.coordinator.create_shared_entry(
        "doctor", CARE_TABLE,
        {"patient_id": 200, "medication_name": "Amoxicillin",
         "clinical_data": "CliD9", "dosage": "250 mg three times daily"})
    rows.append(("Create", "Doctor", create.blocks_created, round(create.elapsed, 2),
                 f"{create.step_count} steps"))

    delete = system.coordinator.delete_shared_entry("doctor", CARE_TABLE, (189,))
    rows.append(("Delete", "Doctor", delete.blocks_created, round(delete.elapsed, 2),
                 f"{delete.step_count} steps"))

    emit("E3_fig4_summary", format_table(
        ("operation", "initiator", "blocks", "simulated latency (s)", "notes"), rows,
        title="Fig. 4 CRUD operations on shared data"))
    assert len(read_table) == 2
    assert update.succeeded and create.succeeded and delete.succeeded
