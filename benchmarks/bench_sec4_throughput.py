"""E5 — §IV.1: update throughput vs block interval and batching.

The paper argues the ~12 s public-Ethereum block interval is acceptable
because peers can batch updates before contacting the contract.  This
experiment measures accepted updates per simulated second as a function of
(a) the block interval (1 s .. 15 s) and (b) the batch size (how many local
edits are folded into one shared-data update request).
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, build_paper_scenario
from repro.metrics.collectors import measure_throughput
from repro.metrics.reporting import format_table
from repro.workloads.updates import UpdateStreamGenerator

UPDATES_PER_RUN = 6


def _throughput_for_interval(block_interval: float):
    system = build_paper_scenario(SystemConfig.private_chain(block_interval))
    generator = UpdateStreamGenerator(system, seed=41)
    events = generator.stream(UPDATES_PER_RUN)
    return measure_throughput(system, events)


@pytest.mark.parametrize("block_interval", [1.0, 2.0, 6.0, 12.0, 15.0])
def test_sec4_throughput_vs_block_interval(benchmark, emit, block_interval):
    """Throughput falls roughly as 1/interval: every update needs ~2 blocks."""
    result = benchmark(lambda: _throughput_for_interval(block_interval))
    emit(f"E5_sec4_interval_{int(block_interval)}", format_table(
        ("metric", "value"),
        [("block interval (s)", block_interval),
         ("updates accepted", result.updates_accepted),
         ("simulated seconds", round(result.simulated_seconds, 2)),
         ("throughput (updates/s)", round(result.throughput, 4)),
         ("blocks created", result.blocks_created)],
        title=f"§IV.1 throughput at a {block_interval}s block interval"))
    assert result.updates_accepted == UPDATES_PER_RUN


def test_sec4_throughput_series(benchmark, emit):
    """The full series the §IV.1 discussion implies (one row per interval)."""
    rows = []
    baseline = None
    for interval in (1.0, 2.0, 6.0, 12.0, 15.0):
        if interval == 1.0:
            result = benchmark.pedantic(lambda: _throughput_for_interval(interval),
                                        rounds=1, iterations=1)
        else:
            result = _throughput_for_interval(interval)
        if baseline is None:
            baseline = result.throughput
        rows.append((interval, result.updates_accepted,
                     round(result.simulated_seconds, 1),
                     round(result.throughput, 4),
                     round(result.throughput / baseline, 3) if baseline else 0.0))
    emit("E5_sec4_throughput_series", format_table(
        ("block interval (s)", "updates", "simulated s", "updates/s", "relative to 1s"),
        rows, title="§IV.1: update throughput vs block interval"))
    # Throughput must decrease monotonically as the interval grows.
    throughputs = [row[3] for row in rows]
    assert all(earlier >= later for earlier, later in zip(throughputs, throughputs[1:]))
    # And the 12s public-Ethereum point should be several times slower than 1s.
    assert throughputs[0] / throughputs[3] > 4


def test_sec4_batching_recovers_throughput(benchmark, emit):
    """§IV.1's mitigation: batch many local edits into one on-chain request.

    A batch of k field edits on the same shared table is propagated as one
    request/one diff, so the number of *local edits applied per simulated
    second* grows with the batch size even at a 12 s block interval.
    """
    rows = []
    benchmark.pedantic(lambda: build_paper_scenario(SystemConfig.private_chain(12.0)),
                       rounds=1, iterations=1)
    for batch_size in (1, 2, 4, 8):
        system = build_paper_scenario(SystemConfig.private_chain(12.0))
        start = system.simulator.clock.now()
        edits_applied = 0
        for round_index in range(2):
            # The researcher folds `batch_size` local edits into one propagation.
            for edit_index in range(batch_size):
                system.peer("researcher").database.update_by_key(
                    "D2", ("Ibuprofen",),
                    {"mechanism_of_action": f"MeA1-r{round_index}-e{edit_index}"})
                edits_applied += 1
            trace = system.coordinator.propagate_local_change(
                "researcher", DOCTOR_RESEARCHER_TABLE)
            assert trace.succeeded
        elapsed = system.simulator.clock.now() - start
        rows.append((batch_size, edits_applied, round(elapsed, 1),
                     round(edits_applied / elapsed, 4)))
    emit("E5_sec4_batching", format_table(
        ("batch size", "local edits applied", "simulated s", "edits/s"),
        rows, title="§IV.1: batching local edits before requesting the contract (12s blocks)"))
    # Larger batches => more edits per simulated second.
    rates = [row[3] for row in rows]
    assert rates[-1] > rates[0]
