"""E4 — Fig. 5: the 11-step update-propagation workflow.

Runs the paper's exact narrative (a researcher updates a medicine mechanism
and the doctor absorbs it) and the steps-6-11 variant where the absorbed
change overlaps another shared table and must be re-shared with the patient.
Reports the per-step trace, the end-to-end simulated latency, and how that
latency splits between consensus (block intervals) and data/BX work.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core.scenario import (
    CARE_TABLE,
    DOCTOR_RESEARCHER_TABLE,
    STUDY_TABLE,
    build_extended_scenario,
    build_paper_scenario,
)
from repro.metrics.reporting import format_table

BLOCK_INTERVAL = 2.0


def test_fig5_researcher_update_trace(benchmark, emit):
    """Steps 1-5 of Fig. 5: researcher → contract → doctor → BX put."""
    def run():
        system = build_paper_scenario(SystemConfig.private_chain(BLOCK_INTERVAL))
        trace = system.coordinator.update_shared_entry(
            "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
            {"mechanism_of_action": "MeA1-revised"})
        return system, trace

    system, trace = benchmark(run)
    rows = [(step.index, step.actor, step.action,
             round(step.simulated_time, 2),
             step.block_number if step.block_number is not None else "")
            for step in trace.steps]
    emit("E4_fig5_trace", format_table(
        ("step", "actor", "action", "simulated t (s)", "block"), rows,
        title="Fig. 5 workflow trace (researcher updates the mechanism of action)"))
    assert trace.succeeded
    assert system.peer("doctor").local_table("D3").get(188)[
        "mechanism_of_action"] == "MeA1-revised"


def test_fig5_cascade_to_patient_trace(benchmark, emit):
    """Steps 1-11 including the re-share with the patient (steps 6-11)."""
    def run():
        system = build_extended_scenario(SystemConfig.private_chain(BLOCK_INTERVAL))
        trace = system.coordinator.update_shared_entry(
            "researcher", STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"})
        return system, trace

    system, trace = benchmark(run)
    rows = [(step.index, step.actor, step.action,
             round(step.simulated_time, 2),
             step.block_number if step.block_number is not None else "")
            for step in trace.steps]
    emit("E4_fig5_cascade_trace", format_table(
        ("step", "actor", "action", "simulated t (s)", "block"), rows,
        title="Fig. 5 workflow with steps 6-11 (dosage re-shared with the patient)"))
    assert trace.succeeded
    assert CARE_TABLE in trace.cascaded_metadata_ids
    assert system.peer("patient").local_table("D1").get(188)[
        "dosage"] == "two tablets every 12h"


def test_fig5_latency_breakdown(benchmark, emit):
    """Where the end-to-end latency goes: consensus vs data transfer vs BX."""
    benchmark.pedantic(lambda: build_paper_scenario(
        SystemConfig.private_chain(BLOCK_INTERVAL)), rounds=1, iterations=1)
    results = []
    for label, builder, metadata_id, key, updates in (
        ("single hop (steps 1-5)",
         lambda: build_paper_scenario(SystemConfig.private_chain(BLOCK_INTERVAL)),
         DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
         {"mechanism_of_action": "MeA1-revised"}),
        ("with cascade (steps 1-11)",
         lambda: build_extended_scenario(SystemConfig.private_chain(BLOCK_INTERVAL)),
         STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"}),
    ):
        system = builder()
        trace = system.coordinator.update_shared_entry("researcher", metadata_id, key, updates)
        consensus_time = trace.blocks_created * BLOCK_INTERVAL
        results.append((label, trace.step_count, trace.blocks_created,
                        round(trace.elapsed, 2), round(consensus_time, 2),
                        round(trace.elapsed - consensus_time, 2)))
    emit("E4_fig5_latency_breakdown", format_table(
        ("scenario", "steps", "blocks", "total latency (s)",
         "consensus share (s)", "network+BX share (s)"),
        results,
        title="End-to-end latency breakdown of the Fig. 5 workflow"))
    # The cascading run must be strictly more expensive than the single hop.
    assert results[1][3] > results[0][3]
    assert results[1][2] > results[0][2]


@pytest.mark.parametrize("record_count", [2, 50, 200])
def test_fig5_workflow_scales_with_record_count(benchmark, emit, record_count):
    """The workflow's cost as the shared tables grow (diff-based transfer keeps
    the propagated payload proportional to the change, not the table size)."""
    from repro.workloads.generator import MedicalRecordGenerator

    records = MedicalRecordGenerator(seed=2, first_patient_id=188).records(
        record_count, distinct_medications=12)

    def run():
        system = build_extended_scenario(SystemConfig.private_chain(BLOCK_INTERVAL),
                                         records=records)
        trace = system.coordinator.update_shared_entry(
            "researcher", STUDY_TABLE, (records[0]["patient_id"],),
            {"dosage": "two tablets every 12h"})
        return system, trace

    system, trace = benchmark(run)
    transferred = sum(c.bytes_transferred() for c in system.simulator.channels.channels)
    emit(f"E4_fig5_scale_{record_count}", format_table(
        ("metric", "value"),
        [("records", record_count),
         ("simulated latency (s)", round(trace.elapsed, 2)),
         ("blocks created", trace.blocks_created),
         ("channel bytes transferred", transferred)],
        title=f"Fig. 5 workflow with {record_count} records"))
    assert trace.succeeded
