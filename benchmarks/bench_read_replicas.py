"""E18 — WAL-shipping read replicas: read scaling at flat commit latency.

The serving question behind the ROADMAP's "millions of readers" item: does
fanning ``ReadViewRequest``\\ s across N WAL-replaying followers scale read
throughput while the writer's commit path stays untouched?  The experiment
runs the *same* deterministic write-plus-read-burst workload against fleets
of 1 and 4 replicas and gates:

* **read scaling** — simulated read throughput (burst size over burst
  makespan on the replicas' deterministic service lanes) improves ≥2× from
  1 to 4 replicas;
* **flat primary** — the writers' mean committed latency (simulated
  seconds) moves less than ±10% between the two fleets: replication work
  rides the commit boundary, it never sits on the commit path;
* **bounded measured staleness** — every replica-served answer carries a
  staleness that matches the simulated-time oracle
  ``(primary's last commit time − replica's replayed-through time)`` and
  never exceeds the configured bound;
* **byte-identical convergence** — at quiesce (drain force-ships the tail)
  every replica's per-peer table fingerprints equal the primary's;
* **pre-warm** — after the first commit ships, replica caches never take a
  read-through miss for the tables the commits touch, and a replica-less
  control gateway serves post-commit reads for both agreement peers
  entirely from pre-warmed entries (zero misses).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.config import (  # noqa: E402
    ConsensusConfig,
    DurabilityConfig,
    LedgerConfig,
    ReplicationConfig,
    SystemConfig,
)
from repro.gateway import ReadViewRequest, SharingGateway, UpdateEntryRequest  # noqa: E402
from repro.workloads.topology import TopologySpec, build_topology_system  # noqa: E402

FULL_ROUNDS = 40
QUICK_ROUNDS = 8
READS_PER_ROUND = 24
PATIENTS = 4
BLOCK_INTERVAL = 1.0
SHIP_INTERVAL = 2.0
MAX_LAG = 30.0
READ_SERVICE_TIME = 0.002
MIN_READ_SCALING = 2.0
MAX_COMMIT_DRIFT = 0.10


def _build(state_dir: str, replicas: int) -> SharingGateway:
    config = SystemConfig(
        ledger=LedgerConfig(
            consensus=ConsensusConfig(kind="poa",
                                      block_interval=BLOCK_INTERVAL)),
        durability=DurabilityConfig(state_dir=state_dir),
        replication=ReplicationConfig(replicas=replicas,
                                      ship_interval=SHIP_INTERVAL,
                                      max_lag=MAX_LAG,
                                      read_service_time=READ_SERVICE_TIME),
    )
    system = build_topology_system(
        TopologySpec(patients=PATIENTS, researchers=0), config)
    return SharingGateway(system)


def _run_fleet(replicas: int, rounds: int) -> dict:
    """One deterministic write+read workload against a fleet of ``replicas``."""
    with tempfile.TemporaryDirectory(prefix=f"e18-{replicas}r-") as state_dir:
        gateway = _build(state_dir, replicas)
        system = gateway.system
        clock = system.simulator.clock
        patients = sorted(n for n in system.peer_names
                          if n.startswith("patient"))
        sessions = {name: gateway.open_session(name) for name in patients}
        doctor = gateway.open_session("doctor")
        mids = {name: system.peer(name).agreement_ids[0] for name in patients}

        staleness_violations = 0
        oracle_mismatches = 0
        replica_answers = 0
        burst_makespans: list = []
        total_reads = 0
        last_commit_at = 0.0

        for round_number in range(rounds):
            for name in patients:
                metadata_id = mids[name]
                patient_id = int(metadata_id.split(":")[1])
                gateway.submit(sessions[name], UpdateEntryRequest(
                    metadata_id=metadata_id, key=(patient_id,),
                    updates={"clinical_data": f"r{round_number}-{name}"}))
            gateway.commit_once()
            last_commit_at = clock.now()  # the staleness oracle's reference

            burst_start = clock.now()
            burst_done = burst_start
            for read_number in range(READS_PER_ROUND):
                name = patients[read_number % len(patients)]
                session = doctor if read_number % 2 else sessions[name]
                response = gateway.submit(
                    session, ReadViewRequest(metadata_id=mids[name]))
                assert response.status == "ok", response.error
                total_reads += 1
                if "replica" in response.payload:
                    replica_answers += 1
                    staleness = response.payload["staleness"]
                    if staleness > MAX_LAG:
                        staleness_violations += 1
                    serving = next(r for r in gateway.shipper.replicas
                                   if r.name == response.payload["replica"])
                    expected = max(0.0,
                                   last_commit_at - serving.replayed_through)
                    if abs(staleness - expected) > 1e-9:
                        oracle_mismatches += 1
                    # The service-lane latency is queue wait + service time
                    # measured from the burst's issue instant, so the burst
                    # completes when the last lane frees up.
                    burst_done = max(burst_done,
                                     burst_start + response.payload["latency"])
            if burst_done > burst_start:
                burst_makespans.append(burst_done - burst_start)

        gateway.drain()  # quiesce: force-ship so the fleet converges
        primary_fp = system.state_fingerprints()
        fingerprints_identical = all(
            replica.fingerprints() == primary_fp
            for replica in gateway.shipper.replicas)
        replica_cache_misses = sum(replica.cache.misses
                                   for replica in gateway.shipper.replicas)
        replica_cache_hits = sum(replica.cache.hits
                                 for replica in gateway.shipper.replicas)

        metrics = gateway.metrics()
        tenants = metrics["tenants"]
        commit_latencies = [stats["mean"] for tenant, stats
                            in sorted(tenants.items()) if tenant in patients]
        mean_commit_latency = (sum(commit_latencies) / len(commit_latencies)
                               if commit_latencies else 0.0)
        read_throughput = (total_reads / sum(burst_makespans)
                           if burst_makespans and sum(burst_makespans) > 0
                           else 0.0)
        return {
            "replicas": replicas,
            "rounds": rounds,
            "reads": total_reads,
            "replica_answers": replica_answers,
            "primary_fallbacks": metrics["replication"]["primary_fallbacks"],
            "read_throughput_per_sim_second": read_throughput,
            "mean_commit_latency": mean_commit_latency,
            "staleness_violations": staleness_violations,
            "oracle_mismatches": oracle_mismatches,
            "max_replica_lag_at_quiesce": max(
                (replica.lag(last_commit_at)
                 for replica in gateway.shipper.replicas), default=0.0),
            "fingerprints_identical": fingerprints_identical,
            "replica_cache_misses": replica_cache_misses,
            "replica_cache_hits": replica_cache_hits,
            "shipments": gateway.shipper.shipments,
            "entries_shipped": gateway.shipper.entries_shipped,
        }


def _run_prewarm_control(rounds: int) -> dict:
    """Replica-less control: the primary cache alone must serve post-commit
    reads for both peers of every touched agreement with zero misses."""
    with tempfile.TemporaryDirectory(prefix="e18-prewarm-") as state_dir:
        gateway = _build(state_dir, replicas=0)
        system = gateway.system
        patients = sorted(n for n in system.peer_names
                          if n.startswith("patient"))
        sessions = {name: gateway.open_session(name) for name in patients}
        doctor = gateway.open_session("doctor")
        mids = {name: system.peer(name).agreement_ids[0] for name in patients}
        for round_number in range(max(2, rounds // 4)):
            for name in patients:
                metadata_id = mids[name]
                patient_id = int(metadata_id.split(":")[1])
                gateway.submit(sessions[name], UpdateEntryRequest(
                    metadata_id=metadata_id, key=(patient_id,),
                    updates={"clinical_data": f"p{round_number}-{name}"}))
            gateway.drain()
            misses_before = gateway.cache.misses
            for name in patients:  # both peers of every touched agreement
                gateway.submit(sessions[name],
                               ReadViewRequest(metadata_id=mids[name]))
                gateway.submit(doctor,
                               ReadViewRequest(metadata_id=mids[name]))
            read_through_misses = gateway.cache.misses - misses_before
        return {
            "prewarms": gateway.cache.prewarms,
            "post_commit_read_through_misses": read_through_misses,
            "hits": gateway.cache.hits,
        }


def run_replica_scaling(rounds: int) -> dict:
    single = _run_fleet(1, rounds)
    fleet = _run_fleet(4, rounds)
    prewarm = _run_prewarm_control(rounds)
    scaling = (fleet["read_throughput_per_sim_second"]
               / single["read_throughput_per_sim_second"]
               if single["read_throughput_per_sim_second"] else 0.0)
    drift = (abs(fleet["mean_commit_latency"] - single["mean_commit_latency"])
             / single["mean_commit_latency"]
             if single["mean_commit_latency"] else 0.0)
    return {
        "experiment": "E18_read_replicas",
        "workload": (f"{rounds} rounds × {PATIENTS} writes + "
                     f"{READS_PER_ROUND} reads, ship every {SHIP_INTERVAL}s, "
                     f"service {READ_SERVICE_TIME}s/read"),
        "single": single,
        "fleet": fleet,
        "prewarm_control": prewarm,
        "read_scaling": scaling,
        "commit_latency_drift": drift,
        "gates": {
            "read_scaling_min": MIN_READ_SCALING,
            "commit_latency_drift_max": MAX_COMMIT_DRIFT,
        },
    }


def _gates_pass(result: dict) -> bool:
    single, fleet = result["single"], result["fleet"]
    return (result["read_scaling"] >= MIN_READ_SCALING
            and result["commit_latency_drift"] <= MAX_COMMIT_DRIFT
            and single["staleness_violations"] == 0
            and fleet["staleness_violations"] == 0
            and single["oracle_mismatches"] == 0
            and fleet["oracle_mismatches"] == 0
            and single["fingerprints_identical"]
            and fleet["fingerprints_identical"]
            and fleet["replica_cache_misses"] == 0
            and result["prewarm_control"]["post_commit_read_through_misses"] == 0)


def test_read_replicas(emit, quick):
    """Read throughput must scale ≥2× from 1 to 4 replicas with the primary
    commit latency flat (±10%), every replica answer's measured staleness
    within the bound (sim-time oracle), replica fingerprints byte-identical
    at quiesce, and pre-warm eliminating read-through misses."""
    rounds = QUICK_ROUNDS if quick else FULL_ROUNDS
    result = run_replica_scaling(rounds)
    emit("E18_read_replicas", json.dumps(result, indent=2, sort_keys=True))
    assert result["read_scaling"] >= MIN_READ_SCALING, (
        f"read throughput scaled {result['read_scaling']:.2f}x < "
        f"{MIN_READ_SCALING}x from 1 to 4 replicas")
    assert result["commit_latency_drift"] <= MAX_COMMIT_DRIFT, (
        f"primary commit latency drifted "
        f"{result['commit_latency_drift'] * 100:.1f}% > "
        f"{MAX_COMMIT_DRIFT * 100:.0f}%")
    for label in ("single", "fleet"):
        run = result[label]
        assert run["staleness_violations"] == 0, label
        assert run["oracle_mismatches"] == 0, label
        assert run["fingerprints_identical"], label
        assert run["replica_answers"] > 0, label
    assert result["fleet"]["replica_cache_misses"] == 0, (
        "replica caches took read-through misses despite pre-warm")
    assert result["prewarm_control"]["post_commit_read_through_misses"] == 0, (
        "primary cache took read-through misses for freshly committed tables")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=FULL_ROUNDS)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced CI smoke workload")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON result (default)")
    args = parser.parse_args()
    rounds = QUICK_ROUNDS if args.quick else args.rounds
    result = run_replica_scaling(rounds)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if _gates_pass(result) else 1


if __name__ == "__main__":
    raise SystemExit(main())
