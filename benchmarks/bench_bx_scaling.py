"""E8 — §II-B: cost of the bidirectional transformations themselves.

Measures the `get` and `put` directions and the GetPut/PutGet law checks as
the source table and the view width grow — the machinery every update in the
system relies on.
"""

from __future__ import annotations

import pytest

from repro.bx.compose import ComposeLens
from repro.bx.laws import check_well_behaved
from repro.bx.projection import ProjectionLens
from repro.bx.selection import SelectionLens
from repro.core.records import full_record_schema
from repro.metrics.reporting import format_table
from repro.relational.predicates import Ge
from repro.relational.table import Table
from repro.workloads.generator import MedicalRecordGenerator


def _source(rows: int) -> Table:
    records = MedicalRecordGenerator(seed=8, first_patient_id=1000).records(
        rows, distinct_medications=15)
    return Table("full", full_record_schema(), records)


NARROW = ProjectionLens(("patient_id", "dosage"), view_name="narrow")
WIDE = ProjectionLens(("patient_id", "medication_name", "clinical_data", "address",
                       "dosage", "mechanism_of_action"), view_name="wide")
FUNCTIONAL = ProjectionLens(("medication_name", "mechanism_of_action"),
                            view_key=("medication_name",), view_name="functional")
COMPOSED = ComposeLens(SelectionLens(Ge("patient_id", 1000)),
                       ProjectionLens(("patient_id", "dosage")), view_name="composed")

LENSES = {
    "projection (2 cols, keyed)": NARROW,
    "projection (6 cols, keyed)": WIDE,
    "projection (functional key)": FUNCTIONAL,
    "selection ; projection": COMPOSED,
}


@pytest.mark.parametrize("rows", [10, 100, 1000])
def test_bx_get_scaling(benchmark, emit, rows):
    source = _source(rows)
    view = benchmark(lambda: NARROW.get(source))
    emit(f"E8_bx_get_{rows}", format_table(
        ("metric", "value"),
        [("source rows", rows), ("view rows", len(view))],
        title=f"get() over a {rows}-row source"))
    assert len(view) == rows


@pytest.mark.parametrize("rows", [10, 100, 1000])
def test_bx_put_scaling(benchmark, emit, rows):
    source = _source(rows)
    view = NARROW.get(source)
    key = view.rows[0]["patient_id"]
    view.update_by_key((key,), {"dosage": "updated"})

    new_source = benchmark(lambda: NARROW.put(source, view))
    emit(f"E8_bx_put_{rows}", format_table(
        ("metric", "value"),
        [("source rows", rows),
         ("rows changed", 1),
         ("dosage after put", new_source.get(key)["dosage"])],
        title=f"put() over a {rows}-row source"))
    assert new_source.get(key)["dosage"] == "updated"


@pytest.mark.parametrize("lens_name", sorted(LENSES))
def test_bx_law_check_cost(benchmark, emit, lens_name):
    """Cost of verifying well-behavedness on concrete data (200-row source)."""
    source = _source(200)
    lens = LENSES[lens_name]

    report = benchmark(lambda: check_well_behaved(lens, source))
    emit(f"E8_bx_laws_{lens_name.split()[0]}_{len(LENSES)}", format_table(
        ("lens", "GetPut", "PutGet"),
        [(lens_name, report.get_put_holds, report.put_get_holds)],
        title="Law checking on a 200-row source"))
    assert report.well_behaved


def test_bx_summary_series(benchmark, emit):
    """One table: get/put row counts for every lens shape and source size."""
    rows = []
    benchmark.pedantic(lambda: _source(1000), rounds=1, iterations=1)
    for size in (10, 100, 1000):
        source = _source(size)
        for name, lens in LENSES.items():
            view = lens.get(source)
            rows.append((size, name, len(view), len(view.schema)))
    emit("E8_bx_summary", format_table(
        ("source rows", "lens", "view rows", "view columns"), rows,
        title="View sizes produced by each lens shape"))
    assert rows
