"""E14 — async gateway transport: open-loop interleaving vs sync worker pool.

The synchronous gateway front end couples admission to commit progress: a
driver (or worker-pool thread) that calls ``commit_once`` holds the serving
path, so open-loop traffic drains between arrivals and every queued write is
committed nearly as soon as it lands — one two-round consensus pair per
arrival burst, with the consensus pipeline idle while the driver admits the
next arrival.  The asyncio transport (:mod:`repro.gateway.aio`) decouples
the two: arrivals are admitted while a commit round is in flight and a
commit pump seals batches on queue-depth/deadline triggers, so each
consensus round pair carries a whole batch of interleaved writes.

This experiment replays the *identical* open-loop multi-tenant arrival trace
(8 patient tenants, Poisson arrivals, mixed reads and writes) through

* the **sync worker-pool baseline** — the eager-drain semantics of
  :class:`~repro.gateway.worker.GatewayWorkerPool` (commit as soon as any
  write is queued), interleaved deterministically with the arrival replay so
  the simulated-time gate is runner-noise-free; and
* the **async transport** — the same gateway facade behind
  :class:`~repro.gateway.aio.AsyncSharingGateway` with a real event loop,
  commit pump and executor-threaded commits,

and reports committed writes per simulated second for both.  Correctness
oracles: the two transports must leave **byte-identical**
``Table.fingerprint()``s on every table of every peer, the async run must
actually interleave (requests admitted while a commit was in flight), and
every response must be terminal.

A third, threaded run drives the real ``GatewayWorkerPool`` under the same
trace — its wall-clock batching is scheduling-dependent so it is reported,
fingerprint-checked, but not gated.

Runnable two ways::

    python -m pytest benchmarks/bench_async_gateway.py           # asserts ≥2×
    python -m pytest benchmarks/bench_async_gateway.py --quick   # CI smoke
    python benchmarks/bench_async_gateway.py --json              # prints JSON
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import Dict, List, Sequence

from repro.config import SystemConfig
from repro.core.system import MedicalDataSharingSystem
from repro.gateway import AsyncSharingGateway, GatewayWorkerPool, SharingGateway
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.traffic import (TimedRequest, TrafficGenerator,
                                     default_tenant_profiles, replay_open_loop)

DEFAULT_TENANTS = 8
FULL_DURATION = 12.0
QUICK_DURATION = 6.0
BLOCK_INTERVAL = 2.0
REQUEST_RATE = 1.0
READ_FRACTION = 0.25
BATCH_SIZE = 16
SEED = 23
#: Async pump deadline: seal once the oldest queued write waited one block
#: interval — the natural batching horizon of the chain.
MAX_DELAY = BLOCK_INTERVAL
#: The acceptance gate: ≥2× committed-write throughput for the async
#: transport over the sync worker-pool baseline at 8 tenants.
TARGET_SPEEDUP = 2.0


def _build(tenants: int, interval: float) -> MedicalDataSharingSystem:
    return build_topology_system(TopologySpec(patients=tenants, researchers=0, seed=SEED),
                                 SystemConfig.private_chain(interval))


def _fingerprints(system: MedicalDataSharingSystem) -> Dict[str, str]:
    return {
        f"{peer.name}:{table_name}": peer.database.table(table_name).fingerprint()
        for peer in system.peers
        for table_name in sorted(peer.database.table_names)
    }


def _trace(system: MedicalDataSharingSystem, duration: float) -> List[TimedRequest]:
    profiles = default_tenant_profiles(system, request_rate=REQUEST_RATE,
                                       read_fraction=READ_FRACTION)
    return TrafficGenerator(system, seed=SEED).open_loop(
        profiles, duration=duration, start_time=system.simulator.clock.now())


def _summarise(system: MedicalDataSharingSystem, gateway: SharingGateway,
               responses: Sequence[object], elapsed: float) -> Dict[str, object]:
    assert all(response.terminal for response in responses), (
        "a response was left in a non-terminal state")
    assert system.all_shared_tables_consistent()
    metrics = gateway.metrics()
    writes = metrics["batches"]["writes_committed"]
    assert metrics["batches"]["writes_rejected"] == 0
    return {
        "arrivals": len(responses),
        "writes_committed": writes,
        "simulated_seconds": elapsed,
        "throughput": writes / elapsed if elapsed else 0.0,
        "consensus_rounds": metrics["batches"]["consensus_rounds"],
        "batches": metrics["batches"]["committed"],
        "mean_batch_size": metrics["batches"]["mean_size"],
        "admitted_during_commit": metrics["transport"]["admitted_during_commit"],
        "cache_hit_rate": metrics["cache"]["hit_rate"],
    }


def _run_sync_baseline(tenants: int, duration: float,
                       interval: float) -> Dict[str, object]:
    """The worker pool's eager-drain semantics, deterministically interleaved.

    A pool worker with a free slot commits the moment the queue is non-empty;
    replaying that behaviour inline (submit an arrival, then drain whatever
    is queued) reproduces its simulated-time cost exactly while keeping the
    result machine-independent — which the thread-scheduled pool itself is
    not (see the ``threaded`` section for the real pool).
    """
    system = _build(tenants, interval)
    gateway = SharingGateway(system, max_batch_size=BATCH_SIZE)
    arrivals = _trace(system, duration)
    sessions = {profile: gateway.open_session(profile)
                for profile in {timed.tenant for timed in arrivals}}
    clock = system.simulator.clock
    start = clock.now()
    responses = []
    for timed in arrivals:
        clock.advance_to(timed.arrival_time)
        responses.append(gateway.submit(sessions[timed.tenant], timed.request))
        while gateway.queue_depth > 0:
            gateway.commit_once()
    gateway.drain()
    elapsed = clock.now() - start
    result = _summarise(system, gateway, responses, elapsed)
    result["fingerprints"] = _fingerprints(system)
    return result


def _run_threaded_pool(tenants: int, duration: float,
                       interval: float, workers: int = 2) -> Dict[str, object]:
    """The real threaded worker pool under the same trace (not gated)."""
    system = _build(tenants, interval)
    gateway = SharingGateway(system, max_batch_size=BATCH_SIZE)
    arrivals = _trace(system, duration)
    sessions = {profile: gateway.open_session(profile)
                for profile in {timed.tenant for timed in arrivals}}
    clock = system.simulator.clock
    start = clock.now()
    responses = []
    with GatewayWorkerPool(gateway, workers=workers) as pool:
        for timed in arrivals:
            clock.advance_to(timed.arrival_time)
            responses.append(gateway.submit(sessions[timed.tenant], timed.request))
        assert pool.join_idle(timeout=60.0), "worker pool did not drain"
        assert not pool.errors, pool.errors
    elapsed = clock.now() - start
    result = _summarise(system, gateway, responses, elapsed)
    result["fingerprints"] = _fingerprints(system)
    return result


def _run_async(tenants: int, duration: float, interval: float) -> Dict[str, object]:
    system = _build(tenants, interval)
    gateway = SharingGateway(system, max_batch_size=BATCH_SIZE)
    arrivals = _trace(system, duration)
    sessions = {profile: gateway.open_session(profile)
                for profile in {timed.tenant for timed in arrivals}}
    clock = system.simulator.clock

    async def drive():
        start = clock.now()
        async with AsyncSharingGateway(gateway, seal_depth=tenants,
                                       max_delay=MAX_DELAY) as front:
            futures = await replay_open_loop(
                arrivals,
                lambda timed: front.submit_nowait(sessions[timed.tenant], timed.request),
                clock)
            await front.drain()
            responses = await asyncio.gather(*futures)
            return responses, clock.now() - start, front.statistics()

    responses, elapsed, transport_stats = asyncio.run(drive())
    result = _summarise(system, gateway, responses, elapsed)
    result["transport"] = transport_stats
    result["fingerprints"] = _fingerprints(system)
    return result


def run_async_gateway_comparison(tenants: int = DEFAULT_TENANTS,
                                 duration: float = FULL_DURATION,
                                 interval: float = BLOCK_INTERVAL) -> Dict[str, object]:
    """Run all three transports over one trace; returns the JSON-able result."""
    sync_result = _run_sync_baseline(tenants, duration, interval)
    async_result = _run_async(tenants, duration, interval)
    threaded_result = _run_threaded_pool(tenants, duration, interval)

    assert sync_result["fingerprints"] == async_result["fingerprints"], (
        "async transport diverged from the sync baseline: " + str(
            [key for key, print_ in sync_result["fingerprints"].items()
             if async_result["fingerprints"].get(key) != print_]))
    assert sync_result["fingerprints"] == threaded_result["fingerprints"], (
        "threaded worker pool diverged from the sync baseline")

    result = {
        "experiment": "E14_async_gateway",
        "workload": (f"{tenants} tenants, Poisson open loop at "
                     f"{REQUEST_RATE}/s/tenant for {duration}s, "
                     f"{int(READ_FRACTION * 100)}% reads"),
        "tenants": tenants,
        "duration": duration,
        "block_interval": interval,
        "sync_worker_pool": {k: v for k, v in sync_result.items()
                             if k != "fingerprints"},
        "async": {k: v for k, v in async_result.items() if k != "fingerprints"},
        "threaded_pool": {k: v for k, v in threaded_result.items()
                          if k != "fingerprints"},
        "speedup": async_result["throughput"] / sync_result["throughput"],
        "rounds_cut": (sync_result["consensus_rounds"]
                       - async_result["consensus_rounds"]),
        "fingerprints_identical": True,
    }
    return result


def test_async_transport_throughput_and_fingerprints(emit, quick):
    """The async transport must commit ≥2× the sync worker-pool baseline's
    writes per simulated second at 8 tenants, leave byte-identical tables on
    every peer, and demonstrably admit arrivals while commits are in flight."""
    duration = QUICK_DURATION if quick else FULL_DURATION
    result = run_async_gateway_comparison(duration=duration)
    emit("E14_async_gateway", json.dumps(result, indent=2, sort_keys=True))
    assert result["fingerprints_identical"]
    assert result["speedup"] >= TARGET_SPEEDUP
    # Open-loop interleaving actually happened: arrivals were admitted while
    # a commit round was mining, and batches carried more than one write.
    assert result["async"]["admitted_during_commit"] > 0
    assert result["async"]["mean_batch_size"] > 1.0
    # The pump sealed on its triggers, not only on the final flush.
    sealed = result["async"]["transport"]["sealed_by"]
    assert sealed["depth"] + sealed["deadline"] + sealed["idle"] > 0
    # The batch amortisation is where the speedup comes from.
    assert result["rounds_cut"] > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=DEFAULT_TENANTS)
    parser.add_argument("--duration", type=float, default=FULL_DURATION)
    parser.add_argument("--interval", type=float, default=BLOCK_INTERVAL)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced CI smoke duration")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON result (default)")
    args = parser.parse_args()
    duration = QUICK_DURATION if args.quick else args.duration
    result = run_async_gateway_comparison(tenants=args.tenants, duration=duration,
                                          interval=args.interval)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["speedup"] >= TARGET_SPEEDUP else 1


if __name__ == "__main__":
    raise SystemExit(main())
