"""E7 — §V exposure claim: fine-grained views vs MedRec-style full records.

The introduction and §V argue that sharing whole records exposes parties to
"additional but unnecessary information" (and proprietary data such as
treatment details), whereas fine-grained views expose only what each peer
needs.  This experiment counts, per role, the attributes visible under the
two designs and the attributes exposed without need, and audits third-party
leakage over the data channels.
"""

from __future__ import annotations

import pytest

from repro.baselines.full_record import FullRecordSharingBaseline
from repro.core.records import FULL_RECORD_COLUMNS
from repro.core.scenario import (
    DOCTOR_RESEARCHER_TABLE,
    PATIENT_DOCTOR_TABLE,
    build_paper_scenario,
)
from repro.metrics.collectors import exposure_report
from repro.metrics.reporting import format_table


def _fine_grained_exposure(system):
    """Attributes each consumer role receives through the paper's shared views."""
    return {
        "Patient": system.agreement(PATIENT_DOCTOR_TABLE).shared_columns,
        "Researcher": system.agreement(DOCTOR_RESEARCHER_TABLE).shared_columns,
    }


def _full_record_exposure(system):
    """Attributes each role would receive if the doctor shared D3 wholesale."""
    baseline = FullRecordSharingBaseline()
    baseline.register_provider_table("doctor", system.peer("doctor").local_table("D3"))
    baseline.grant_access("doctor", "Patient", "D3")
    baseline.grant_access("doctor", "Researcher", "D3")
    return baseline.exposure_matrix(), baseline


def test_sec5_exposure_counts(benchmark, emit):
    system = build_paper_scenario()
    fine = _fine_grained_exposure(system)
    full, _baseline = benchmark(lambda: _full_record_exposure(system))
    report = exposure_report(fine, full)
    counts = report.exposure_counts()
    rows = [
        (role,
         counts[role]["fine_grained"],
         counts[role]["full_record"],
         counts[role]["unnecessary"],
         ", ".join(report.unnecessary_attributes()[role]))
        for role in sorted(counts)
    ]
    emit("E7_sec5_exposure", format_table(
        ("role", "attrs (fine-grained)", "attrs (full record)", "unnecessary",
         "unnecessary attributes"),
        rows, title="§V: attribute exposure per role — fine-grained views vs MedRec-style"))
    # Fine-grained sharing must expose strictly fewer attributes to each role.
    for role in counts:
        assert counts[role]["fine_grained"] < counts[role]["full_record"]
        assert counts[role]["unnecessary"] >= 1


def test_sec5_researcher_never_sees_identifiers(benchmark, emit):
    """Under fine-grained views the researcher sees no patient identifiers or
    addresses; under full-record sharing it would."""
    system = benchmark.pedantic(build_paper_scenario, rounds=1, iterations=1)
    fine = _fine_grained_exposure(system)
    assert "patient_id" not in fine["Researcher"]
    assert "address" not in fine["Researcher"]
    full, _ = _full_record_exposure(system)
    assert "patient_id" in full["Researcher"]
    emit("E7_sec5_identifier_exposure", format_table(
        ("design", "researcher sees patient_id", "researcher sees clinical_data"),
        [("fine-grained views (ours)", "patient_id" in fine["Researcher"],
          "clinical_data" in fine["Researcher"]),
         ("full record (MedRec-style)", "patient_id" in full["Researcher"],
          "clinical_data" in full["Researcher"])],
        title="§V: identifier exposure to the researcher"))


def test_sec5_third_party_leakage_over_channels(benchmark, emit):
    """Updates on data shared by two peers are never disclosed to the third
    party: audit every channel transfer after a full day of updates."""
    system = benchmark.pedantic(build_paper_scenario, rounds=1, iterations=1)
    system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"})
    system.coordinator.update_shared_entry(
        "doctor", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "two tablets every 6h"})
    exposure = system.simulator.channels.exposure_report()
    rows = [(peer, ", ".join(tables)) for peer, tables in sorted(exposure.items())]
    emit("E7_sec5_channel_exposure", format_table(
        ("peer", "shared tables received over channels"), rows,
        title="§V: third-party isolation of shared-data transfers"))
    # The patient never receives researcher-doctor data and vice versa.
    assert all(not table.startswith("D2") and not table.startswith("D32")
               for table in exposure.get("patient", ()))
    assert all(not table.startswith("D1") and not table.startswith("D31")
               for table in exposure.get("researcher", ()))


def test_sec5_full_attribute_matrix(benchmark, emit):
    """The full role × attribute visibility matrix under both designs."""
    system = benchmark.pedantic(build_paper_scenario, rounds=1, iterations=1)
    fine = _fine_grained_exposure(system)
    full, _ = _full_record_exposure(system)
    rows = []
    for attribute in FULL_RECORD_COLUMNS:
        rows.append((
            attribute,
            "yes" if attribute in fine.get("Patient", ()) else "",
            "yes" if attribute in fine.get("Researcher", ()) else "",
            "yes" if attribute in full.get("Patient", ()) else "",
            "yes" if attribute in full.get("Researcher", ()) else "",
        ))
    emit("E7_sec5_attribute_matrix", format_table(
        ("attribute", "patient (ours)", "researcher (ours)",
         "patient (full)", "researcher (full)"),
        rows, title="§V: attribute visibility matrix"))
    assert any(row[3] == "yes" and row[1] == "" for row in rows)
