"""Quickstart: build the paper's scenario and run the Fig. 5 update.

Run with::

    python examples/quickstart.py

The script builds the exact Fig. 1 data distribution (Patient, Doctor,
Researcher with their local tables and the two shared tables), then replays
the paper's running example: the researcher updates the mechanism of action
of Ibuprofen, the smart contract authorises it, the doctor is notified,
fetches the updated shared data and reflects it into its full table with a
BX ``put``.  Finally the on-chain audit trail is printed.
"""

from __future__ import annotations

from repro import build_paper_scenario
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, PATIENT_DOCTOR_TABLE


def main() -> None:
    print("Building the Fig. 1 scenario (3 peers, 2 shared tables)...\n")
    system = build_paper_scenario()

    print(system.peer("doctor").local_table("D3").pretty(), "\n")
    print(system.peer("researcher").local_table("D2").pretty(), "\n")
    print(system.peer("researcher").shared_table(DOCTOR_RESEARCHER_TABLE).pretty(), "\n")

    print("Researcher updates the mechanism of action of Ibuprofen...\n")
    trace = system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"},
    )
    print(trace.pretty(), "\n")

    print("Doctor's full table after the update (the change was reflected by put):\n")
    print(system.peer("doctor").local_table("D3").pretty(), "\n")

    print("Both copies of every shared table are still identical:",
          system.all_shared_tables_consistent())
    print("Every stored shared table equals get(source):",
          system.views_consistent_with_sources(), "\n")

    print("The paper's permission-change example: the Doctor lets the Patient "
          "update the dosage, then the Patient does so.\n")
    system.coordinator.change_permission(
        "doctor", PATIENT_DOCTOR_TABLE, "dosage", ["Doctor", "Patient"])
    patient_trace = system.coordinator.update_shared_entry(
        "patient", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "one tablet every 8h"})
    print(patient_trace.pretty(), "\n")

    print(system.audit_trail().pretty())
    print("\nContract specification check (§IV.2 substitute):",
          "PASSED" if system.check_contract_specification().passed else "FAILED")


if __name__ == "__main__":
    main()
