"""Auditing and tamper evidence of shared-data updates.

Run with::

    python examples/audit_trail.py

The example performs a handful of shared-data operations (updates, a
permission change, a rejected request), then demonstrates the blockchain-side
guarantees the paper relies on:

* every operation can be reviewed from *any* node's replica, in order, with
  the requesting role, the touched attributes, and the block that carried it;
* a replica that tampers with its history is detected (hash linkage, Merkle
  roots and consensus seals stop validating);
* the executable contract-specification checks (§IV.2 substitute) pass on the
  real history.
"""

from __future__ import annotations

from repro import build_paper_scenario
from repro.core.scenario import DOCTOR_RESEARCHER_TABLE, PATIENT_DOCTOR_TABLE
from repro.errors import UpdateRejected


def main() -> None:
    system = build_paper_scenario()

    print("Performing a few shared-data operations...\n")
    system.coordinator.update_shared_entry(
        "researcher", DOCTOR_RESEARCHER_TABLE, ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"})
    system.coordinator.change_permission(
        "doctor", PATIENT_DOCTOR_TABLE, "dosage", ["Doctor", "Patient"])
    system.coordinator.update_shared_entry(
        "patient", PATIENT_DOCTOR_TABLE, (188,), {"dosage": "one tablet every 8h"})
    try:
        system.coordinator.update_shared_entry(
            "patient", PATIENT_DOCTOR_TABLE, (188,), {"medication_name": "not allowed"})
    except UpdateRejected as exc:
        print(f"(A forbidden update was rejected as expected: {exc})\n")

    print("Audit trail reconstructed from the patient's node:\n")
    trail = system.audit_trail(via_peer="patient")
    print(trail.pretty(), "\n")

    print("Permission changes on record:")
    for change in trail.permission_changes():
        print(f"  {change['attribute']}: {change['previous']} -> {change['new']} "
              f"(by {change['changed_by_role']}, block {change['block_number']})")
    print()

    print("Per-peer operation counts:", trail.updates_by_peer(), "\n")

    print("Executable contract specification check (§IV.2):",
          "PASSED" if system.check_contract_specification().passed else "FAILED", "\n")

    print("Now the patient's node tampers with its own replica...")
    block = trail.node.chain.block_by_number(trail.records()[0].block_number)
    block.header.merkle_root = "0" * 64
    print("  tampered replica integrity:", trail.verify_integrity())
    print("  tampered blocks:", trail.tampered_blocks())
    honest = system.audit_trail(via_peer="doctor")
    print("  honest replica integrity:  ", honest.verify_integrity())
    print("\nHonest nodes still hold the complete, verifiable history; the "
          "tampered replica is detectable immediately.")


if __name__ == "__main__":
    main()
