"""A research study over shared fine-grained data, with the Fig. 5 cascade.

Run with::

    python examples/research_study.py

The example uses the extended CARE/STUDY scenario (see
``repro.core.scenario.build_extended_scenario``): the researcher runs a
dosage-adjustment study, updating dosages through its shared study table.
Each accepted update is reflected into the doctor's full records and — because
the dosage also appears in the doctor-patient shared table — re-shared with
the patient (steps 6-11 of Fig. 5).  The example then contrasts what the
researcher can see under fine-grained sharing with what a MedRec-style
full-record grant would have exposed.
"""

from __future__ import annotations

from repro.baselines.full_record import FullRecordSharingBaseline
from repro.config import SystemConfig
from repro.core.scenario import CARE_TABLE, STUDY_TABLE, build_extended_scenario
from repro.metrics.collectors import exposure_report
from repro.metrics.reporting import format_table


def main() -> None:
    print("Building the extended CARE/STUDY scenario...\n")
    system = build_extended_scenario(SystemConfig.private_chain(block_interval=2.0))

    print(system.peer("researcher").shared_table(STUDY_TABLE).pretty(), "\n")

    print("The researcher adjusts the dosage of patient 188 (study protocol)...\n")
    trace = system.coordinator.update_shared_entry(
        "researcher", STUDY_TABLE, (188,), {"dosage": "two tablets every 12h"})
    print(trace.pretty(), "\n")

    print("The change cascaded to the patient through the CARE shared table:")
    print(system.peer("patient").shared_table(CARE_TABLE).pretty(), "\n")
    print(system.peer("patient").local_table("D1").pretty(), "\n")

    print("What does the researcher actually see?  Fine-grained views vs a "
          "full-record grant:\n")
    baseline = FullRecordSharingBaseline()
    baseline.register_provider_table("doctor", system.peer("doctor").local_table("D3"))
    baseline.grant_access("doctor", "Researcher", "D3")
    report = exposure_report(
        fine_grained={"Researcher": system.agreement(STUDY_TABLE).shared_columns},
        full_record=baseline.exposure_matrix(),
    )
    counts = report.exposure_counts()["Researcher"]
    print(format_table(
        ("design", "attributes visible to the researcher"),
        [("fine-grained STUDY view", counts["fine_grained"]),
         ("MedRec-style full record", counts["full_record"]),
         ("exposed without need", counts["unnecessary"])],
        title="Exposure comparison"), "\n")
    print("Unnecessary attributes a full-record grant would leak:",
          ", ".join(report.unnecessary_attributes()["Researcher"]), "\n")

    print(system.audit_trail().pretty())


if __name__ == "__main__":
    main()
