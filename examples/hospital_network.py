"""A larger hospital network: one doctor, many patients, several researchers.

Run with::

    python examples/hospital_network.py [patients] [researchers]

The example builds the hub topology the paper's introduction motivates (a
hospital sharing fine-grained pieces of many records with the patients they
belong to and with researchers), then pushes a random but permission-valid
stream of updates through the system, reporting throughput, block usage,
channel traffic and the per-peer storage footprint.
"""

from __future__ import annotations

import sys

from repro.config import SystemConfig
from repro.metrics.collectors import measure_throughput
from repro.metrics.reporting import format_table
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.updates import UpdateStreamGenerator


def main(patients: int = 6, researchers: int = 2, updates: int = 12) -> None:
    print(f"Building a hospital network with {patients} patients and "
          f"{researchers} researchers...\n")
    system = build_topology_system(
        TopologySpec(patients=patients, researchers=researchers, seed=20),
        config=SystemConfig.private_chain(block_interval=2.0),
    )
    print(format_table(
        ("metric", "value"),
        [("peers", len(system.peer_names)),
         ("sharing agreements", len(system.agreement_ids)),
         ("chain height after setup", system.simulator.nodes[0].chain.height)],
        title="Network after setup"), "\n")

    print(f"Applying {updates} permission-valid shared-data updates...\n")
    events = UpdateStreamGenerator(system, seed=21).stream(updates)
    result = measure_throughput(system, events)
    print(format_table(
        ("metric", "value"),
        [("updates attempted", result.updates_attempted),
         ("updates accepted", result.updates_accepted),
         ("simulated seconds", round(result.simulated_seconds, 1)),
         ("throughput (updates / simulated s)", round(result.throughput, 4)),
         ("blocks created", result.blocks_created)],
        title="Update stream"), "\n")

    stats = system.statistics()
    storage_rows = sorted(stats["peer_storage_bytes"].items())[:8]
    print(format_table(("peer", "local storage bytes"), storage_rows,
                       title="Per-peer local database footprint (first 8 peers)"), "\n")

    exposure = system.simulator.channels.exposure_report()
    print(format_table(
        ("peer", "shared tables received over pairwise channels"),
        [(peer, ", ".join(tables)) for peer, tables in sorted(exposure.items())[:8]],
        title="Channel exposure (data never crosses to third parties)"), "\n")

    print("All shared tables pairwise consistent:", system.all_shared_tables_consistent())
    print("Audit trail integrity:", system.audit_trail().verify_integrity())
    print("Operations recorded on-chain:", len(system.audit_trail().records()))


if __name__ == "__main__":
    arguments = [int(value) for value in sys.argv[1:3]]
    main(*arguments) if arguments else main()
